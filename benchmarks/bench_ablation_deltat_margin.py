"""Ablation — sensitivity of the guardbanding gain to the delta_T margin.

Algorithm 1 compensates its convergence error with a small delta_T margin
(the paper uses the same threshold for convergence and compensation).  This
ablation sweeps delta_T and shows the gain it costs: too large a margin
gives back the very headroom thermal-aware timing recovered, while a tiny
margin risks optimism against the fixed-point residual.
"""

import numpy as np

from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.core.margins import guardband_gain, worst_case_frequency
from repro.reporting.tables import format_table

DELTA_TS = (0.5, 1.0, 2.0, 4.0, 8.0)
BENCH = "sha"


def test_ablation_delta_t(benchmark, suite_flows, fabric25):
    flow = suite_flows[BENCH]
    f_wc = worst_case_frequency(flow, fabric25)

    def sweep():
        rows = []
        for delta_t in DELTA_TS:
            result = thermal_aware_guardband(
                flow, fabric25, 25.0, config=GuardbandConfig(delta_t=delta_t)
            )
            rows.append(
                (
                    delta_t,
                    result.frequency_hz,
                    guardband_gain(result.frequency_hz, f_wc),
                    result.iterations,
                )
            )
        return rows

    rows = benchmark(sweep)
    print()
    print(
        format_table(
            ["delta_T (C)", "freq (MHz)", "gain (%)", "iterations"],
            [
                (dt, f"{f / 1e6:.1f}", f"{g * 100:.1f}", iters)
                for dt, f, g, iters in rows
            ],
            title=f"Ablation — delta_T margin on '{BENCH}' at Tamb=25C",
        )
    )
    gains = [g for _, _, g, _ in rows]
    # Monotone: more margin, less gain; but even 8 C of margin must keep a
    # large advantage over the worst-case baseline.
    assert all(a >= b - 1e-12 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > 0.15
    # The paper's 2 C default sits in the flat region: within 3 points of
    # the aggressive 0.5 C setting.
    assert gains[0] - gains[2] < 0.03
