"""Ablation — Eq. 1 expected delay and grade selection over field ranges.

Sweeps candidate design corners against several foreknown field-temperature
ranges (paper Sec. III-C) and prints the Eq. 1 expected-delay matrix plus
the winning grade per range — the quantitative basis of the paper's
proposed temperature grades (e.g. a hot grade for datacenter accelerators).
"""

from repro.core.architecture import expected_delay, select_design_corner
from repro.coffe.fabric import build_fabric
from repro.reporting.tables import format_table

CANDIDATES = (0.0, 25.0, 70.0, 100.0)
FIELD_RANGES = (
    ("chilled facility", 0.0, 30.0),
    ("office/edge", 15.0, 55.0),
    ("full industrial", 0.0, 100.0),
    ("datacenter accel", 60.0, 100.0),
)


def test_ablation_expected_delay_matrix(benchmark, arch):
    def matrix():
        fabrics = {c: build_fabric(c, arch) for c in CANDIDATES}
        rows = []
        winners = {}
        for label, t_min, t_max in FIELD_RANGES:
            expected = {
                c: expected_delay(fabrics[c], t_min, t_max) for c in CANDIDATES
            }
            winner = min(expected, key=lambda c: expected[c])
            winners[label] = winner
            rows.append((label, t_min, t_max, expected, winner))
        return rows, winners

    rows, winners = benchmark(matrix)
    print()
    table_rows = []
    for label, t_min, t_max, expected, winner in rows:
        table_rows.append(
            (
                f"{label} [{t_min:g},{t_max:g}]C",
                *[f"{expected[c] * 1e12:.2f}" for c in CANDIDATES],
                f"D{winner:g}",
            )
        )
    print(
        format_table(
            ["field range", *[f"E[d] D{c:g} (ps)" for c in CANDIDATES],
             "grade"],
            table_rows,
            title="Ablation — Eq. 1 expected CP delay per candidate corner",
        )
    )

    # Shape: cold ranges pick cold grades, the datacenter range picks a hot
    # grade, and no single corner wins everywhere (paper Sec. III-C: "a
    # single device cannot provide all-embracing superiority").
    assert winners["chilled facility"] <= 25.0
    assert winners["datacenter accel"] >= 70.0
    assert len(set(winners.values())) > 1


def test_ablation_selection_api(benchmark, arch):
    choice = benchmark(
        select_design_corner, 60.0, 100.0, CANDIDATES, "cp", arch
    )
    print(
        f"\nselect_design_corner(60, 100) -> D{choice.corner_celsius:g}, "
        f"advantage over D25: "
        f"{choice.advantage_over(25.0) * 100:.2f}%"
    )
    assert choice.corner_celsius >= 70.0
    assert choice.advantage_over(25.0) > 0.0
