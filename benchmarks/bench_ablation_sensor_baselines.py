"""Ablation — Algorithm 1 vs. the related-work baselines (paper Sec. II).

Positions the paper's offline per-tile guardbanding between:

- the conventional worst-case margin (lower bound it beats),
- single-sensor online scaling ([10]/[12]) whose safety depends on where
  the sensor happens to sit relative to the hotspot,
- the zero-margin oracle (unreachable upper bound costing only delta_t).
"""

from repro.core.baselines import (
    coldest_tile,
    hottest_tile,
    oracle_frequency,
    sensor_uniform_baseline,
)
from repro.core.guardband import thermal_aware_guardband
from repro.core.margins import worst_case_frequency
from repro.reporting.tables import format_table

BENCH = "stereovision1"
T_AMBIENT = 25.0


def test_ablation_baseline_ladder(benchmark, suite_flows, fabric25):
    flow = suite_flows[BENCH]

    def ladder():
        result = thermal_aware_guardband(flow, fabric25, T_AMBIENT)
        return {
            "worst_case": worst_case_frequency(flow, fabric25),
            "algorithm1": result.frequency_hz,
            "oracle": oracle_frequency(flow, fabric25, result),
            "result": result,
        }

    data = benchmark(ladder)
    result = data["result"]
    print()
    print(
        format_table(
            ["policy", "frequency (MHz)"],
            [
                ("worst-case Tworst=100C", f"{data['worst_case'] / 1e6:.1f}"),
                ("Algorithm 1 (delta_t=2C)", f"{data['algorithm1'] / 1e6:.1f}"),
                ("oracle (zero margin)", f"{data['oracle'] / 1e6:.1f}"),
            ],
            title=f"Guardbanding ladder on '{BENCH}' at Tamb={T_AMBIENT:g}C",
        )
    )
    # Strict ordering: worst-case < Algorithm 1 <= oracle, and the delta_t
    # cost is small.
    assert data["worst_case"] < data["algorithm1"] <= data["oracle"] * (1 + 1e-12)
    assert data["algorithm1"] / data["oracle"] > 0.95

    # Single-sensor scaling: safe only if the sensor sees the hotspot.
    cold = sensor_uniform_baseline(
        flow, fabric25, result, sensor_tile=coldest_tile(result)
    )
    hot = sensor_uniform_baseline(
        flow, fabric25, result, sensor_tile=hottest_tile(result)
    )
    print(
        format_table(
            ["sensor placement", "reading (C)", "clock (MHz)", "safe?"],
            [
                ("coolest tile", f"{cold.sensor_celsius:.2f}",
                 f"{cold.frequency_hz / 1e6:.1f}", cold.is_safe),
                ("hottest tile", f"{hot.sensor_celsius:.2f}",
                 f"{hot.frequency_hz / 1e6:.1f}", hot.is_safe),
            ],
            title="Single-sensor online scaling (related work [10]/[12])",
        )
    )
    assert hot.is_safe
    # A hotspot-aware sensor must clock no faster than the oracle.
    assert hot.frequency_hz <= data["oracle"] * (1 + 1e-12)
