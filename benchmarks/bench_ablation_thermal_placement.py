"""Ablation — thermal-aware vs. timing-only placement.

The tentpole claim of thermal-aware placement (DiffChip-style: put a
thermal term *inside* the placement objective) is that flattening the
power-density map at placement time shows up downstream as a lower peak
converged temperature and a higher guardbanded frequency than what
guardbanding alone recovers.  This ablation runs Algorithm 1 on both
placements of each benchmark at several ambients and gates on that
claim: at least one benchmark/ambient cell must improve on *both* axes
simultaneously.

Environment knobs:

- ``PLACE_SMOKE=1`` — reduced CI grid (one benchmark, one ambient);
- ``PLACE_TRACE=path.jsonl`` — record the repro.observe trace (proxy
  calibration spans, recalibration counters, drift events) to a file.
"""

import contextlib
import os

import numpy as np

from repro import observe
from repro.activity.ace import estimate_activity
from repro.cad.flow import run_flow
from repro.cad.thermal_place import SHAPE_TOLERANCE, density_vector
from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark
from repro.reporting.heatmap import format_density_map, format_heatmap_pair
from repro.reporting.tables import format_table

SMOKE = os.environ.get("PLACE_SMOKE") == "1"

SUBSET = ("sha",) if SMOKE else ("sha", "blob_merge")
AMBIENTS = (70.0,) if SMOKE else (25.0, 70.0)

THERMAL_WEIGHT = 0.7
"""Empirically tuned blend: strong enough to flatten hotspots, weak
enough that the wirelength objective still dominates routability."""

_SPECS = {spec.name: spec for spec in VTR_BENCHMARKS}


def _trace_session():
    path = os.environ.get("PLACE_TRACE")
    if path:
        return observe.enabled(jsonl_path=path)
    return contextlib.nullcontext()


def test_ablation_thermal_placement(benchmark, arch, fabric25):
    def compare():
        cells = []
        flows = {}
        for name in SUBSET:
            netlist = vtr_benchmark(name)
            config = GuardbandConfig(
                base_activity=_SPECS[name].base_activity,
                thermal_weight=THERMAL_WEIGHT,
            )
            timing_only = run_flow(netlist, arch)
            thermal = run_flow(
                netlist, arch, thermal_weight=THERMAL_WEIGHT
            )
            flows[name] = (timing_only, thermal)
            for t_ambient in AMBIENTS:
                row = {"benchmark": name, "t_ambient": t_ambient}
                for label, flow in (
                    ("timing", timing_only), ("thermal", thermal)
                ):
                    result = thermal_aware_guardband(
                        flow, fabric25, t_ambient, config=config
                    )
                    row[f"peak_{label}"] = float(
                        result.tile_temperatures.max()
                    )
                    row[f"freq_{label}"] = result.frequency_hz
                    row[f"temps_{label}"] = result.tile_temperatures
                cells.append(row)
        return cells, flows

    # One session around every benchmark round: the first (uncached)
    # round's placement spans — proxy calibrations, drift events,
    # recalibration counters — land in the trace file.
    with _trace_session():
        cells, flows = benchmark(compare)

    print()
    print(
        format_table(
            ["benchmark", "ambient (C)", "peak timing (C)",
             "peak thermal (C)", "f timing (MHz)", "f thermal (MHz)"],
            [
                (
                    row["benchmark"],
                    f"{row['t_ambient']:g}",
                    f"{row['peak_timing']:.3f}",
                    f"{row['peak_thermal']:.3f}",
                    f"{row['freq_timing'] / 1e6:.1f}",
                    f"{row['freq_thermal'] / 1e6:.1f}",
                )
                for row in cells
            ],
            title="Ablation — thermal-aware vs timing-only placement",
        )
    )

    # Side-by-side converged temperature maps plus the density rendering
    # for the hottest cell: *why* the peak moved is visible at a glance.
    hottest = max(cells, key=lambda row: row["peak_timing"])
    timing_only, thermal = flows[hottest["benchmark"]]
    layout = thermal.layout
    print()
    print(
        format_heatmap_pair(
            layout,
            hottest["temps_timing"],
            hottest["temps_thermal"],
            left_title=f"{hottest['benchmark']} timing-only",
            right_title="thermal-aware",
        )
    )
    spec = _SPECS[hottest["benchmark"]]
    activity = estimate_activity(
        thermal.netlist, spec.base_activity
    )
    print()
    print(
        format_density_map(
            layout,
            density_vector(
                thermal.packed, thermal.placement.location, layout, activity
            ),
            title=f"{hottest['benchmark']} thermal-aware power density",
        )
    )

    # The proxy-vs-solver drift check must have passed throughout every
    # thermal-aware anneal (a failing check raises ThermalPlaceError
    # inside place(), so reaching here with sane stats is the proof).
    for name, (_timing, thermal_flow) in flows.items():
        stats = thermal_flow.placement.thermal_stats
        assert stats is not None, name
        assert stats.thermal_weight == THERMAL_WEIGHT, name
        assert stats.n_calibrations > 0, name
        assert stats.final_shape_error <= SHAPE_TOLERANCE, (name, stats)
        assert np.isfinite(stats.max_drift), (name, stats)

    # The headline gate: thermal-aware placement beats timing-only on
    # BOTH axes — peak converged temperature and guardbanded frequency —
    # in at least one benchmark/ambient cell.
    wins = [
        row for row in cells
        if row["peak_thermal"] < row["peak_timing"]
        and row["freq_thermal"] > row["freq_timing"]
    ]
    assert wins, (
        "thermal-aware placement should improve peak temperature and "
        f"guardbanded frequency on at least one cell: {cells}"
    )
