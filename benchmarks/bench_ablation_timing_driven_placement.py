"""Ablation — timing-driven vs. wirelength-driven placement.

The guardbanding gains of Figs. 6-8 are ratios, so they are largely
placement-quality-agnostic; this ablation verifies that claim by re-running
Algorithm 1 on criticality-weighted placements and comparing both the
absolute frequency and the *gain* against the plain wirelength-driven flow.
"""

from repro.cad.flow import run_flow
from repro.core.guardband import thermal_aware_guardband
from repro.core.margins import guardband_gain, worst_case_frequency
from repro.netlists.vtr_suite import vtr_benchmark
from repro.reporting.tables import format_table

SUBSET = ("sha", "blob_merge", "or1200")
T_AMBIENT = 25.0


def test_ablation_timing_driven_placement(benchmark, arch, fabric25):
    def compare():
        rows = []
        for name in SUBSET:
            netlist = vtr_benchmark(name)
            plain = run_flow(netlist, arch)
            driven = run_flow(netlist, arch, timing_driven=True)
            gains = {}
            freqs = {}
            for label, flow in (("plain", plain), ("timing", driven)):
                result = thermal_aware_guardband(flow, fabric25, T_AMBIENT)
                freqs[label] = result.frequency_hz
                gains[label] = guardband_gain(
                    result.frequency_hz, worst_case_frequency(flow, fabric25)
                )
            rows.append((name, freqs, gains))
        return rows

    rows = benchmark(compare)
    print()
    print(
        format_table(
            ["benchmark", "plain (MHz)", "timing-driven (MHz)",
             "gain plain", "gain timing-driven"],
            [
                (
                    name,
                    f"{freqs['plain'] / 1e6:.1f}",
                    f"{freqs['timing'] / 1e6:.1f}",
                    f"{gains['plain'] * 100:.1f}%",
                    f"{gains['timing'] * 100:.1f}%",
                )
                for name, freqs, gains in rows
            ],
            title="Ablation — placement objective vs. guardbanding outcome",
        )
    )
    for name, freqs, gains in rows:
        # Timing-driven placement should not wreck absolute frequency...
        assert freqs["timing"] > 0.8 * freqs["plain"], name
        # ...and the *relative* guardbanding gain is robust to the
        # placement objective (within a few points).
        assert abs(gains["timing"] - gains["plain"]) < 0.06, name
