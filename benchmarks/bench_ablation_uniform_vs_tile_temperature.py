"""Ablation — per-tile temperatures vs. the uniform-die assumption.

The paper criticizes prior work ([12] Zhao et al.) for assuming "the same
temperature across the entire chip (and the entire CP) while the
temperature variation can reach above 20 C": a uniform-temperature flow
must price the whole die at the *hottest* tile to stay safe, giving part of
the margin back.

This ablation runs Algorithm 1 twice per benchmark: once with the real
per-tile profile (our flow) and once collapsing the profile to its maximum
(the safe uniform assumption), and reports the frequency the uniform
assumption forfeits.
"""

import numpy as np

from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.netlists.vtr_suite import VTR_BENCHMARKS
from repro.reporting.tables import format_table

T_AMBIENT = 25.0
SUBSET = ("sha", "diffeq1", "stereovision1", "LU8PEEng", "mkDelayWorker32B")


def test_ablation_uniform_assumption(benchmark, suite_flows, fabric25):
    def compare():
        rows = []
        for name in SUBSET:
            spec = next(s for s in VTR_BENCHMARKS if s.name == name)
            flow = suite_flows[name]
            result = thermal_aware_guardband(
                flow, fabric25, T_AMBIENT,
                config=GuardbandConfig(base_activity=spec.base_activity),
            )
            per_tile = result.frequency_hz
            # Uniform-die flow: everything at the hottest tile + margin.
            t_uniform = np.full(
                flow.n_tiles,
                float(result.tile_temperatures.max()) + result.delta_t,
            )
            uniform = flow.timing.critical_path(fabric25, t_uniform).frequency_hz
            rows.append(
                (
                    name,
                    per_tile,
                    uniform,
                    per_tile / uniform - 1.0,
                    float(result.max_gradient_celsius),
                )
            )
        return rows

    rows = benchmark(compare)
    print()
    print(
        format_table(
            ["benchmark", "per-tile (MHz)", "uniform-max (MHz)",
             "per-tile advantage", "on-chip gradient (C)"],
            [
                (n, f"{a / 1e6:.1f}", f"{b / 1e6:.1f}", f"{adv * 100:.2f}%",
                 f"{grad:.2f}")
                for n, a, b, adv, grad in rows
            ],
            title="Ablation — per-tile thermal profile vs. uniform worst tile",
        )
    )
    print(
        "\n(On full-size dies the paper cites >20C gradients; our 1:100-"
        "scaled designs develop proportionally smaller ones, so the"
        " advantage here is a lower bound on the full-scale effect.)"
    )
    # Per-tile analysis can never be slower than pricing the whole die at
    # the hottest tile, and must help wherever a gradient exists.
    for _, per_tile, uniform, adv, grad in rows:
        assert per_tile >= uniform * (1.0 - 1e-12)
        if grad > 0.5:
            assert adv > 0.0
