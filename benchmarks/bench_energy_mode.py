"""Energy mode — thermal margin converted into supply-voltage savings.

The energy objective's claim is the dual of guardbanding's: instead of
spending the thermal margin on a faster clock, hold the clock at the
conventional worst-case frequency and bisect the supply down until
timing *just* closes at the converged thermal profile.  This bench runs
both objectives on each benchmark/ambient cell and gates on the claim:
at iso-frequency, at least one cell must close strictly below nominal
VDD with a nonzero energy-per-cycle saving.

Environment knobs:

- ``ENERGY_SMOKE=1`` — reduced CI grid (one benchmark, two ambients);
- ``ENERGY_TRACE=path.jsonl`` — record the repro.observe trace (per-trial
  convergence spans, infeasibility counters) to a file.
"""

import contextlib
import os

from repro import observe
from repro.cad.flow import run_flow
from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.core.margins import worst_case_frequency
from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark
from repro.reporting.tables import format_table
from repro.technology.ptm22 import VDD_NOMINAL

SMOKE = os.environ.get("ENERGY_SMOKE") == "1"

SUBSET = ("sha",) if SMOKE else ("sha", "blob_merge", "or1200")
AMBIENTS = (25.0, 70.0) if SMOKE else (15.0, 25.0, 45.0, 70.0)

_SPECS = {spec.name: spec for spec in VTR_BENCHMARKS}


def _trace_session():
    path = os.environ.get("ENERGY_TRACE")
    if path:
        return observe.enabled(jsonl_path=path)
    return contextlib.nullcontext()


def test_energy_mode_savings(benchmark, arch, fabric25):
    def convert_margin():
        cells = []
        for name in SUBSET:
            flow = run_flow(vtr_benchmark(name), arch)
            # The iso-frequency target is the cell's own conventional
            # baseline: the clock a worst-case-margined design would
            # ship at.  It always closes at nominal supply, so every
            # cell is feasible and the whole margin is voltage headroom.
            f_wc = worst_case_frequency(flow, fabric25)
            config = GuardbandConfig(
                base_activity=_SPECS[name].base_activity,
                mode="energy",
                target_frequency_hz=f_wc,
            )
            for t_ambient in AMBIENTS:
                result = thermal_aware_guardband(
                    flow, fabric25, t_ambient, config=config
                )
                cells.append(
                    {
                        "benchmark": name,
                        "t_ambient": t_ambient,
                        "f_target_hz": f_wc,
                        "vdd_v": result.vdd_v,
                        "saving": result.energy.power_saving_fraction,
                        "e_cycle_j": result.energy.energy_per_cycle_j,
                        "e_nominal_j": (
                            result.energy.nominal_energy_per_cycle_j
                        ),
                    }
                )
        return cells

    with _trace_session():
        cells = benchmark(convert_margin)

    print()
    print(
        format_table(
            ["benchmark", "ambient (C)", "f target (MHz)", "VDD (V)",
             "E/cycle (pJ)", "nominal (pJ)", "saving"],
            [
                (
                    row["benchmark"],
                    f"{row['t_ambient']:g}",
                    f"{row['f_target_hz'] / 1e6:.1f}",
                    f"{row['vdd_v']:.3f}",
                    f"{row['e_cycle_j'] * 1e12:.2f}",
                    f"{row['e_nominal_j'] * 1e12:.2f}",
                    f"{row['saving'] * 100:.1f}%",
                )
                for row in cells
            ],
            title="Energy mode — iso-frequency supply scaling",
        )
    )

    # The headline gate: at least one benchmark/ambient cell converts
    # its thermal margin into a strictly sub-nominal closing supply with
    # a nonzero energy-per-cycle saving at iso-frequency.
    wins = [
        row for row in cells
        if row["vdd_v"] < VDD_NOMINAL and row["saving"] > 0.0
    ]
    assert wins, (
        "energy mode should close below nominal supply with nonzero "
        f"savings on at least one cell: {cells}"
    )
    # And every cell's accounting must be internally consistent: a
    # sub-nominal supply implies a saving, never a cost.
    for row in cells:
        assert row["vdd_v"] <= VDD_NOMINAL, row
        if row["vdd_v"] < VDD_NOMINAL:
            assert row["e_cycle_j"] < row["e_nominal_j"], row
