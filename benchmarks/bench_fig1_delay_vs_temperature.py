"""Paper Fig. 1 — impact of temperature on FPGA resource delay.

Regenerates the delay-increase-vs-temperature curves of the representative
critical path (CP), BRAM and DSP on the 25 C-corner device, 0..100 C.

Paper reference shape: DSP is the steepest (up to ~84 % at 100 C), BRAM in
between, CP (soft fabric, routing-dominated) lowest (~47 %); within the CP,
the LUT rises ~69 % and the SB ~39 %.
"""

import numpy as np

from repro.reporting.figures import format_series

PAPER_AT_100C = {"cp": 0.47, "bram": 0.75, "dsp": 0.84}


def fig1_series(fabric):
    temps = np.arange(0.0, 101.0, 10.0)
    series = {}
    for component in ("cp", "bram", "dsp"):
        series[component] = [
            float(fabric.delay_increase_fraction(component, t)) * 100.0
            for t in temps
        ]
    return temps, series


def test_fig1_delay_increase(benchmark, fabric25):
    temps, series = benchmark(fig1_series, fabric25)
    print()
    print(
        format_series(
            temps,
            [(name.upper(), values) for name, values in series.items()],
            title="Fig. 1 — delay increase vs. temperature (%, D25 device)",
            fmt="{:9.1f}",
        )
    )
    print("\nmeasured vs. paper at 100 C:")
    for name, values in series.items():
        print(
            f"  {name.upper():4s} {values[-1]:5.1f}%   "
            f"(paper ~{PAPER_AT_100C[name] * 100:.0f}%)"
        )
    # Shape assertions: ordering and magnitudes.
    assert series["dsp"][-1] > series["bram"][-1] > series["cp"][-1]
    assert 40.0 < series["cp"][-1] < 60.0
    assert 70.0 < series["dsp"][-1] < 90.0


def test_fig1_lut_vs_sb_sensitivity(benchmark, fabric25):
    def rises():
        lut = float(fabric25.delay_increase_fraction("lut", 100.0))
        sb = float(fabric25.delay_increase_fraction("sb_mux", 100.0))
        return lut, sb

    lut, sb = benchmark(rises)
    print(
        f"\nLUT rise {lut * 100:.1f}% (paper ~69-86%), "
        f"SB rise {sb * 100:.1f}% (paper ~39-40%)"
    )
    assert lut > 1.5 * sb
