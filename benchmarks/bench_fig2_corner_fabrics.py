"""Paper Fig. 2 — delay of differently optimized fabrics at different temps.

Builds devices sized at 0 C, 25 C and 100 C and compares CP/BRAM/DSP delay
at operating temperatures {0, 25, 100} C, each chunk normalized to its
fastest device.

Paper reference points: BRAM of D100 is 1.35x D0 at 0 C; BRAM of D0 is
1.19x D100 at 100 C; D25's BRAM only ~6 % off at 0 C and ~4 % at 100 C; CP
and DSP show the same trend with less intensity.
"""

from repro.core.design import fig2_normalized_delays
from repro.reporting.tables import format_table

CORNERS = (0.0, 25.0, 100.0)

PAPER_POINTS = [
    ("bram", 0.0, 100.0, 1.35),
    ("bram", 100.0, 0.0, 1.19),
]


def test_fig2_normalized_delays(benchmark, arch):
    fig2 = benchmark(fig2_normalized_delays, CORNERS, (0.0, 25.0, 100.0),
                     ("cp", "bram", "dsp"), arch)
    print()
    for component, per_point in fig2.items():
        rows = [
            (f"T={t:g}C",) + tuple(f"{per_point[t][c]:.3f}" for c in CORNERS)
            for t in sorted(per_point)
        ]
        print(
            format_table(
                ["operating", *[f"D{c:g}" for c in CORNERS]],
                rows,
                title=f"Fig. 2 ({component.upper()}) — normalized delay",
            )
        )
        print()
    print("paper reference: BRAM D100@0C = 1.35x, BRAM D0@100C = 1.19x")
    for component, t_op, ref_corner, paper in PAPER_POINTS:
        slow_corner = 100.0 if t_op == 0.0 else 0.0
        measured = fig2[component][t_op][slow_corner]
        print(
            f"  {component} D{slow_corner:g} at {t_op:g}C: {measured:.3f}x "
            f"(paper {paper:.2f}x)"
        )

    # Shape: every chunk's own-corner device is fastest (within ties) and
    # the BRAM effect dominates the DSP one.
    for component, per_point in fig2.items():
        for t_op in (0.0, 100.0):
            assert per_point[t_op][t_op] < 1.01
    assert max(fig2["bram"][0.0].values()) > max(fig2["dsp"][0.0].values())
    assert max(fig2["bram"][0.0].values()) > 1.05
