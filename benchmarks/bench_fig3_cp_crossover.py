"""Paper Fig. 3 — temperature-delay curves of D0/D25/D100 fabrics.

Regenerates the representative-critical-path delay of the three corner
devices across the whole junction range and locates the crossovers.

Paper reference: D0 is 6.3 % faster than D100 at 0 C; D100 is 9.0 % faster
at 100 C; D25 is optimal for T in ~[20, 65] C; absolute delays run ~120 ps
(cold) to ~185 ps (hot).
"""

import numpy as np

from repro.core.design import corner_delay_curves
from repro.reporting.figures import format_series

CORNERS = (0.0, 25.0, 100.0)


def test_fig3_cp_crossover(benchmark, arch):
    curves = benchmark(corner_delay_curves, CORNERS, "cp", arch)
    sample = np.arange(0.0, 101.0, 10.0)
    print()
    print(
        format_series(
            sample,
            [
                (f"D{c:g}",
                 [float(np.interp(t, curves.t_grid_celsius,
                                  curves.curves[c])) * 1e12 for t in sample])
                for c in CORNERS
            ],
            title="Fig. 3 — representative CP delay (ps)",
            fmt="{:9.2f}",
        )
    )
    d100_penalty_cold = curves.crossover_ratio(100.0, 0.0, 0.0) - 1.0
    d0_penalty_hot = curves.crossover_ratio(0.0, 100.0, 100.0) - 1.0
    print(
        f"\nD100 penalty at 0C:  {d100_penalty_cold * 100:.1f}% (paper 6.3%)"
        f"\nD0 penalty at 100C:  {d0_penalty_hot * 100:.1f}% (paper 9.0%)"
    )
    mid_winners = {curves.best_corner_at(t) for t in (30.0, 40.0, 50.0)}
    print(f"mid-band winner (30-50C): D25={mid_winners == {25.0}} "
          "(paper: D25 optimal in [20, 65]C)")

    assert curves.best_corner_at(0.0) == 0.0
    assert curves.best_corner_at(100.0) == 100.0
    assert 0.02 < d100_penalty_cold < 0.15
    assert 0.02 < d0_penalty_hot < 0.15
    assert mid_winners == {25.0}
