"""Paper Fig. 6 — per-benchmark guardbanding gain at Tamb = 25 C.

Runs Algorithm 1 on every VTR-19 benchmark at a 25 C ambient and reports
the frequency gain over the conventional Tworst = 100 C baseline.

Paper reference: up to ~50 % for DSP-heavy designs, ~36.5 % on average.
"""

import numpy as np

from benchmarks.conftest import suite_gains
from repro.core.guardband import thermal_aware_guardband
from repro.netlists.vtr_suite import benchmark_names
from repro.reporting.figures import format_bar_chart

PAPER_AVERAGE = 0.365
T_AMBIENT = 25.0


def test_fig6_guardband_gains_25c(benchmark, suite_flows, fabric25):
    gains = suite_gains(suite_flows, fabric25, T_AMBIENT)
    names = list(benchmark_names())
    values = [gains[n] * 100 for n in names]
    average = float(np.mean(values))
    print()
    print(
        format_bar_chart(
            names + ["average"],
            values + [average],
            title=f"Fig. 6 — thermal-aware guardbanding gain at Tamb={T_AMBIENT:.0f}C",
        )
    )
    print(f"\naverage {average:.1f}%  (paper: 36.5%)")

    # Shape: all positive, meaningful average, reasonable spread.
    assert all(v > 10.0 for v in values)
    assert 25.0 < average < 48.0
    assert max(values) - min(values) > 3.0

    # Time the Algorithm 1 kernel itself on a mid-size benchmark.
    flow = suite_flows["sha"]
    benchmark(thermal_aware_guardband, flow, fabric25, T_AMBIENT)


def test_fig6_convergence_behaviour(benchmark, suite_flows, fabric25):
    """Paper Sec. III-A/IV-B: < 10 iterations, ~2 C converged rise."""
    def converged_profiles():
        stats = []
        for name in ("sha", "blob_merge", "raygentop"):
            result = thermal_aware_guardband(
                suite_flows[name], fabric25, T_AMBIENT
            )
            stats.append((name, result.iterations, result.mean_rise_celsius))
        return stats

    stats = benchmark(converged_profiles)
    print()
    for name, iterations, rise in stats:
        print(f"  {name:12s} iterations={iterations}  mean rise={rise:.2f}C")
    assert all(i < 10 for _, i, _ in stats)
    assert all(0.5 < rise < 8.0 for _, _, rise in stats)
