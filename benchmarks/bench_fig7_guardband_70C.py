"""Paper Fig. 7 — per-benchmark guardbanding gain at Tamb = 70 C.

Same experiment as Fig. 6 at a hot ambient: less headroom to Tworst, so
the gains shrink.

Paper reference: ~14 % average frequency increase.
"""

import numpy as np

from benchmarks.conftest import suite_gains
from repro.core.guardband import thermal_aware_guardband
from repro.netlists.vtr_suite import benchmark_names
from repro.reporting.figures import format_bar_chart

PAPER_AVERAGE = 0.14
T_AMBIENT = 70.0


def test_fig7_guardband_gains_70c(benchmark, suite_flows, fabric25):
    gains = suite_gains(suite_flows, fabric25, T_AMBIENT)
    names = list(benchmark_names())
    values = [gains[n] * 100 for n in names]
    average = float(np.mean(values))
    print()
    print(
        format_bar_chart(
            names + ["average"],
            values + [average],
            title=f"Fig. 7 — thermal-aware guardbanding gain at Tamb={T_AMBIENT:.0f}C",
        )
    )
    print(f"\naverage {average:.1f}%  (paper: 14%)")

    assert all(v > 2.0 for v in values)
    assert 6.0 < average < 22.0

    benchmark(
        thermal_aware_guardband, suite_flows["sha"], fabric25, T_AMBIENT
    )


def test_fig7_less_headroom_than_fig6(benchmark, suite_flows, fabric25):
    """The 70 C gains must be uniformly below the 25 C gains."""
    gains25 = suite_gains(suite_flows, fabric25, 25.0)
    gains70 = suite_gains(suite_flows, fabric25, 70.0)
    worse = [n for n in gains70 if gains70[n] >= gains25[n]]
    print(f"\nbenchmarks where 70C gain >= 25C gain: {worse}")
    assert not worse

    # Timed kernel: one hot-ambient guardband run.
    benchmark(
        thermal_aware_guardband, suite_flows["raygentop"], fabric25, T_AMBIENT
    )
