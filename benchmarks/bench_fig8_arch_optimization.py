"""Paper Fig. 8 — thermal-aware architecture optimization at Tamb = 70 C.

Compares each benchmark mapped on the 70 C-optimized device against the
typical device (synthesized for 25 C @ 0.8 V), with *both* devices using
thermal-aware guardbanding.  The gain isolates the architecture effect.

Paper reference: 6.7 % average improvement; the spread across benchmarks
follows the resources forming the critical path (BRAM and some soft-fabric
resources are most sensitive to the sizing corner).
"""

import numpy as np

from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.netlists.vtr_suite import VTR_BENCHMARKS, benchmark_names
from repro.reporting.figures import format_bar_chart

PAPER_AVERAGE = 0.067
T_AMBIENT = 70.0


def fig8_gains(suite_flows, fabric25, fabric70):
    gains = {}
    for spec in VTR_BENCHMARKS:
        flow = suite_flows[spec.name]
        config = GuardbandConfig(base_activity=spec.base_activity)
        typical = thermal_aware_guardband(flow, fabric25, T_AMBIENT, config=config)
        graded = thermal_aware_guardband(flow, fabric70, T_AMBIENT, config=config)
        gains[spec.name] = graded.frequency_hz / typical.frequency_hz - 1.0
    return gains


def test_fig8_architecture_gain(benchmark, suite_flows, fabric25, fabric70):
    gains = fig8_gains(suite_flows, fabric25, fabric70)
    names = list(benchmark_names())
    values = [gains[n] * 100 for n in names]
    average = float(np.mean(values))
    print()
    print(
        format_bar_chart(
            names + ["average"],
            values + [average],
            title=(
                "Fig. 8 — 70C-optimized device vs. typical device, both "
                "guardbanded at Tamb=70C"
            ),
        )
    )
    print(f"\naverage {average:.1f}%  (paper: 6.7%)")

    # Shape: the hot-grade device helps on (nearly) every benchmark, with a
    # single-digit-percent average.
    assert average > 0.5
    assert average < 12.0
    assert sum(1 for v in values if v > 0.0) >= len(values) - 2

    # Timed kernel: one guardband run on the graded device.
    benchmark(
        thermal_aware_guardband, suite_flows["sha"], fabric70, T_AMBIENT
    )
