"""Batched Algorithm 1 benchmark — joint fixed point vs per-cell loop.

Runs an ambient sweep (20 same-flow cells) on one placed VTR netlist
twice — once through the looped single-cell path and once through
:func:`thermal_aware_guardband_batch`, which stacks the cells into
``(n_cells, n_tiles)`` arrays and amortises the thermal factorization,
STA delay interpolation and power model across the batch — and asserts
the batched wall time beats the loop by the acceptance floor while every
cell's frequency stays within its ``delta_t`` compensation margin
(DESIGN.md §12).

Smoke mode for CI: set ``BATCH_SMOKE=1`` to run one netlist once and
only assert completion + equivalence (no speedup threshold — CI machines
are noisy).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cad.flow import run_flow
from repro.core.guardband import (
    thermal_aware_guardband,
    thermal_aware_guardband_batch,
)
from repro.netlists.vtr_suite import vtr_benchmark
from repro.reporting.tables import format_table

SMOKE = os.environ.get("BATCH_SMOKE", "") == "1"
NETLISTS = ("sha",) if SMOKE else ("sha", "or1200")
N_CELLS = 20
"""Cells per batch: one ambient sweep over the same placed flow."""
AMBIENTS = tuple(float(t) for t in np.linspace(5.0, 80.0, N_CELLS))
REPEATS = 1 if SMOKE else 3
SPEEDUP_FLOOR = 3.0
"""Acceptance floor: the batched sweep must beat the loop >= 3x."""


def _best_of(fn, repeats):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_guardband_batch_speedup(arch, fabric25):
    rows = []
    loop_total = batch_total = 0.0
    for name in NETLISTS:
        flow = run_flow(vtr_benchmark(name), arch)
        # Warm the per-flow memos so both paths time pure solver work.
        thermal_aware_guardband(flow, fabric25, AMBIENTS[0])
        thermal_aware_guardband_batch(flow, fabric25, AMBIENTS[:2])

        loop_s, looped = _best_of(
            lambda: [
                thermal_aware_guardband(flow, fabric25, t) for t in AMBIENTS
            ],
            REPEATS,
        )
        batch_s, batched = _best_of(
            lambda: thermal_aware_guardband_batch(flow, fabric25, AMBIENTS),
            REPEATS,
        )

        # Equivalence gate: per-cell agreement within the delta_t
        # compensation margin, identical iteration trajectories.
        assert len(batched) == N_CELLS
        for reference, outcome in zip(looped, batched):
            margin = abs(
                reference.history[-1].frequency_hz - reference.frequency_hz
            )
            drift = abs(outcome.frequency_hz - reference.frequency_hz)
            assert drift <= max(margin, 1e-9), name
            assert outcome.iterations == reference.iterations, name

        loop_total += loop_s
        batch_total += batch_s
        rows.append(
            (
                name,
                N_CELLS,
                f"{loop_s * 1e3:.1f}",
                f"{batch_s * 1e3:.1f}",
                f"{loop_s / batch_s:.2f}x",
            )
        )

    speedup = loop_total / batch_total
    print()
    print(
        format_table(
            ["netlist", "cells", "looped ms", "batched ms", "speedup"],
            rows,
            title=f"Batched Algorithm 1 — {N_CELLS}-cell ambient sweep",
        )
    )
    print(
        f"\ntotal: looped {loop_total * 1e3:.1f} ms, "
        f"batched {batch_total * 1e3:.1f} ms -> {speedup:.2f}x speedup"
    )

    assert loop_total > 0.0 and batch_total > 0.0
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched sweep speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x acceptance floor on {N_CELLS} cells"
        )
