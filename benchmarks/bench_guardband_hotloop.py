"""Algorithm 1 hot-loop benchmark — per-iteration wall time, fast vs seed.

Runs :func:`thermal_aware_guardband` on the VTR-suite netlists twice per
design — on the vectorized fast path (flattened STA element arrays,
pre-factorized thermal solve, matrix-product power model) and on the seed
reference implementation (:mod:`repro.core.reference`) — and reports the
mean per-iteration wall time of the hot loop (STA + power + thermal
phases, measured with :mod:`repro.observe` spans) and iterations/sec for
each.  Both runs must converge to identical guardband frequencies.

Smoke mode for CI: set ``HOTLOOP_SMOKE=1`` to run a single netlist and
only assert completion + equivalence (no speedup threshold — CI machines
are noisy).
"""

from __future__ import annotations

import os

import numpy as np

from repro import observe
from repro.cad.flow import run_flow
from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.core.reference import seed_implementation
from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark
from repro.reporting.tables import format_table

SMOKE = os.environ.get("HOTLOOP_SMOKE", "") == "1"
SMOKE_NETLISTS = ("sha",)
T_AMBIENT = 25.0
SPEEDUP_FLOOR = 3.0
"""Acceptance floor: mean per-iteration wall time must improve >= 3x."""


def _hotloop_seconds(flow, fabric, base_activity, repeats=3):
    """Best-of-``repeats`` (total hot-loop seconds, iterations, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        with observe.enabled():
            result = thermal_aware_guardband(
                flow, fabric, T_AMBIENT,
                config=GuardbandConfig(base_activity=base_activity),
            )
        total = sum(
            sum(it.phase_seconds.values()) for it in result.history
        )
        best = min(best, total)
    return best, result.iterations, result


def test_guardband_hotloop_speedup(arch, fabric25):
    specs = [
        s for s in VTR_BENCHMARKS if not SMOKE or s.name in SMOKE_NETLISTS
    ]
    rows = []
    fast_total = seed_total = 0.0
    total_iterations = 0
    for spec in specs:
        flow = run_flow(vtr_benchmark(spec.name), arch)
        fast_s, fast_iters, fast_res = _hotloop_seconds(
            flow, fabric25, spec.base_activity
        )
        with seed_implementation():
            seed_s, seed_iters, seed_res = _hotloop_seconds(
                flow, fabric25, spec.base_activity, repeats=2
            )
        # Equivalence gate: the fast path must be a pure optimization.
        assert fast_iters == seed_iters, spec.name
        np.testing.assert_allclose(
            fast_res.frequency_hz, seed_res.frequency_hz, rtol=1e-9
        )
        np.testing.assert_allclose(
            fast_res.tile_temperatures, seed_res.tile_temperatures, rtol=1e-9
        )
        fast_total += fast_s
        seed_total += seed_s
        total_iterations += fast_iters
        rows.append(
            (
                spec.name,
                fast_iters,
                f"{fast_s / fast_iters * 1e3:.3f}",
                f"{seed_s / seed_iters * 1e3:.3f}",
                f"{fast_iters / fast_s:.0f}",
                f"{seed_s / fast_s:.2f}x",
            )
        )

    fast_mean = fast_total / total_iterations
    seed_mean = seed_total / total_iterations
    speedup = seed_mean / fast_mean
    print()
    print(
        format_table(
            ["netlist", "iters", "fast ms/iter", "seed ms/iter",
             "fast iter/s", "speedup"],
            rows,
            title="Algorithm 1 hot loop — per-iteration wall time",
        )
    )
    print(
        f"\nmean per-iteration: fast {fast_mean * 1e3:.3f} ms "
        f"({1.0 / fast_mean:.0f} iterations/sec), "
        f"seed {seed_mean * 1e3:.3f} ms ({1.0 / seed_mean:.0f} iterations/sec) "
        f"-> {speedup:.2f}x speedup"
    )

    assert fast_total > 0.0 and total_iterations > 0
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"hot-loop speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x acceptance floor"
        )
