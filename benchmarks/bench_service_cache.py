"""Sweep service benchmark — repeat queries at store-hit latency.

Acceptance gates over :mod:`repro.service` (the ISSUE 7 contract):

1. **Store-served repeats**: submitting the *identical* grid twice to
   one scheduler must execute Algorithm 1 exactly once per cell — the
   second submission reports ``n_store_hits == n_cells`` and adds zero
   ``sweep.cell`` execution spans to the trace (every cell is a
   ``store.hit`` + ``sweep.cell_skipped`` pair instead).
2. **Cache-hit latency**: the repeat submission must be strictly faster
   than the computed one (in practice orders of magnitude — it is pure
   store reads), and terminal the moment ``submit`` returns.
3. **In-flight dedup**: a third, overlapping grid submitted while cells
   are mid-computation joins them instead of recomputing (measured by
   ``n_deduped`` and the unchanged span count).

Smoke mode for CI: set ``SERVICE_SMOKE=1`` to shrink the grid.  All
gates always apply — they are correctness properties of the service,
not machine-dependent performance floors.
"""

from __future__ import annotations

import asyncio
import os
import tempfile

from repro import observe
from repro.api import ExperimentSpec
from repro.observe.clock import monotonic
from repro.observe.sinks import FanoutSink, InMemorySink
from repro.reporting.tables import format_table
from repro.service import SweepScheduler
from repro.service.events import ObserveBridge
from repro.store import open_store

SMOKE = os.environ.get("SERVICE_SMOKE", "") == "1"

BENCHMARKS = ("mkPktMerge",) if SMOKE else ("sha", "mkPktMerge")
AMBIENTS = (25.0, 45.0) if SMOKE else (15.0, 35.0, 55.0, 75.0)


def _cell_spans(sink: InMemorySink) -> int:
    return sum(1 for r in sink.spans() if r.get("name") == "sweep.cell")


def _store_hits(sink: InMemorySink) -> int:
    return sum(1 for r in sink.events() if r.get("name") == "store.hit")


def test_repeat_query_served_from_store_at_cache_latency():
    spec = ExperimentSpec(benchmarks=BENCHMARKS, ambients=AMBIENTS)
    overlap = ExperimentSpec(
        benchmarks=BENCHMARKS[:1], ambients=AMBIENTS[:1]
    )
    sink = InMemorySink()

    async def drive(scheduler: SweepScheduler):
        scheduler.start()
        try:
            t0 = monotonic()
            first = await scheduler.submit(spec)
            # Submitted before yielding: every overlap cell is still
            # in flight, so this exercises the dedup join path.
            third = await scheduler.submit(overlap)
            while scheduler.jobs[first].status == "running":
                await asyncio.sleep(0.02)
            computed_s = monotonic() - t0
            while scheduler.jobs[third].status == "running":
                await asyncio.sleep(0.02)
            executed = _cell_spans(sink)
            hits_before = _store_hits(sink)

            t0 = monotonic()
            second = await scheduler.submit(spec)
            repeat_s = monotonic() - t0
            return first, second, third, computed_s, repeat_s, executed, \
                hits_before
        finally:
            await scheduler.close()

    with tempfile.TemporaryDirectory() as root:
        scheduler = SweepScheduler(
            open_store(os.path.join(root, "store")), workers=2
        )
        bridge = ObserveBridge(scheduler.broker)
        with observe.enabled(sink=FanoutSink([sink, bridge])):
            (first, second, third, computed_s, repeat_s, executed,
             hits_before) = asyncio.run(drive(scheduler))
            jobs = dict(scheduler.jobs)

    n_cells = spec.n_jobs

    # Gate 1: the repeat ran nothing — all store, no new spans.
    assert jobs[second].status == "done"
    assert jobs[second].n_store_hits == n_cells
    assert _cell_spans(sink) == executed
    assert _store_hits(sink) - hits_before == n_cells

    # Gate 2: terminal at submit-return, and strictly faster than the
    # computed pass.
    assert repeat_s < computed_s
    assert executed == n_cells  # the overlap grid added zero executions

    # Gate 3: the concurrent overlapping grid joined in-flight cells.
    assert jobs[third].status == "done"
    assert jobs[third].n_deduped == overlap.n_jobs

    print()
    print(format_table(
        ("submission", "cells", "executed", "store hits", "deduped",
         "wall s"),
        [
            (first, n_cells, executed, 0, 0, f"{computed_s:.2f}"),
            (third, overlap.n_jobs, 0, 0, jobs[third].n_deduped, "-"),
            (second, n_cells, 0, jobs[second].n_store_hits,
             0, f"{repeat_s:.4f}"),
        ],
        title="sweep service: computed vs store-served vs deduped",
    ))
    speedup = computed_s / repeat_s if repeat_s > 0 else float("inf")
    print(f"repeat-query speedup: {speedup:.0f}x")
