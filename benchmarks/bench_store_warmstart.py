"""Result store benchmark — warm-started fixed points and sweep resume.

Two acceptance gates over :mod:`repro.store` and the engine's
checkpoint/resume path:

1. **Warm start**: the same ambient sweep runs twice — cold
   (``warm_start_policy="off"``) and warm (``"nearest"`` with a result
   store), serially so the warm chain actually sees its neighbours.  The
   warm sweep must spend *strictly fewer* mean Algorithm 1 iterations,
   and every converged frequency must agree with the cold one within the
   cell's own delta_t compensation margin (the frequency shift of the
   final re-time at ``T + delta_t`` — any two fixed points within the
   convergence tolerance sit inside it; see DESIGN.md §11).

2. **Resume**: a recorded sweep is truncated to its first ``k`` cells
   and resumed.  The engine must re-execute exactly ``total - k`` cells
   (measured by ``sweep.cell`` execution spans in an observe trace) and
   re-emit the ``k`` reloaded ones as ``sweep.cell_skipped`` events; a
   resume from the *complete* record must execute zero.

Smoke mode for CI: set ``STORE_SMOKE=1`` to shrink the grid.  Both gates
always apply — they are correctness properties, not machine-dependent
performance floors.
"""

from __future__ import annotations

import os
import tempfile

from repro.api import (
    ExperimentSpec,
    GuardbandConfig,
    build_fabric,
    run_flow,
    run_sweep,
    thermal_aware_guardband,
    vtr_benchmark,
)
from repro.netlists.vtr_suite import VTR_BENCHMARKS
from repro.observe.sinks import InMemorySink
from repro import observe
from repro.reporting.tables import format_table

SMOKE = os.environ.get("STORE_SMOKE", "") == "1"

BENCHMARKS = ("sha", "mkDelayWorker32B")
AMBIENTS = (15.0, 25.0, 35.0, 45.0, 55.0, 65.0)
SMOKE_BENCHMARKS = ("mkPktMerge",)
SMOKE_AMBIENTS = (25.0, 35.0, 45.0)

_BY_NAME = {s.name: s for s in VTR_BENCHMARKS}


def _grid():
    return (
        SMOKE_BENCHMARKS if SMOKE else BENCHMARKS,
        SMOKE_AMBIENTS if SMOKE else AMBIENTS,
    )


def _delta_t_margin(benchmark: str, t_ambient: float,
                    config: GuardbandConfig) -> float:
    """The cell's delta_t compensation margin, in Hz.

    Algorithm 1's last step re-times the design at ``T_vec + delta_t``;
    the gap between the last iteration's frequency (timed at ``T_vec``)
    and the final one is therefore exactly the frequency sensitivity to
    a delta_t-sized temperature error — the bound within which any two
    converged fixed points must agree.
    """
    flow = run_flow(vtr_benchmark(benchmark))
    fabric = build_fabric(25.0)
    result = thermal_aware_guardband(flow, fabric, t_ambient, config=config)
    return abs(result.history[-1].frequency_hz - result.frequency_hz)


def test_warm_start_fewer_iterations_same_frequencies():
    benches, ambients = _grid()
    cold_config = GuardbandConfig(warm_start_policy="off")
    warm_config = GuardbandConfig(warm_start_policy="nearest")

    cold = run_sweep(
        ExperimentSpec(benchmarks=benches, ambients=ambients,
                       config=cold_config),
        workers=1,
    )
    assert cold.ok, cold.failures

    with tempfile.TemporaryDirectory() as tmp:
        warm = run_sweep(
            ExperimentSpec(benchmarks=benches, ambients=ambients,
                           config=warm_config),
            workers=1,
            store=os.path.join(tmp, "store"),
        )
    assert warm.ok, warm.failures

    cold_by_cell = {r.cell: r for r in cold.results}
    warm_by_cell = {r.cell: r for r in warm.results}
    assert cold_by_cell.keys() == warm_by_cell.keys()

    rows = []
    for cell in sorted(cold_by_cell):
        c, w = cold_by_cell[cell], warm_by_cell[cell]
        margin = _delta_t_margin(cell[0], cell[1], cold_config)
        drift = abs(w.frequency_hz - c.frequency_hz)
        assert drift <= margin, (
            f"{c.job_id}: warm frequency drifted {drift:.3e} Hz from cold, "
            f"beyond the {margin:.3e} Hz delta_t compensation margin"
        )
        rows.append(
            (c.job_id, c.iterations, w.iterations,
             "yes" if w.warm_started else "no",
             f"{drift / 1e3:.2f}", f"{margin / 1e3:.2f}")
        )

    assert any(w.warm_started for w in warm.results), (
        "no cell was warm-started; the nearest-neighbour policy never fired"
    )
    mean_cold = sum(r.iterations for r in cold.results) / len(cold.results)
    mean_warm = sum(r.iterations for r in warm.results) / len(warm.results)

    print()
    print(
        format_table(
            ["cell", "cold iters", "warm iters", "warm?",
             "drift (kHz)", "margin (kHz)"],
            rows,
            title="Warm-started Algorithm 1 vs. cold per cell",
        )
    )
    print(f"\nmean iterations: cold {mean_cold:.2f} -> warm {mean_warm:.2f}")

    assert mean_warm < mean_cold, (
        f"warm-started sweep averaged {mean_warm:.2f} iterations, not "
        f"strictly fewer than the cold {mean_cold:.2f}"
    )


def _executed_and_skipped(sink: InMemorySink):
    executed = [r for r in sink.spans() if r.get("name") == "sweep.cell"]
    skipped = [
        r for r in sink.events() if r.get("name") == "sweep.cell_skipped"
    ]
    return executed, skipped


def test_resume_reexecutes_only_the_remainder():
    benches, ambients = _grid()
    spec = ExperimentSpec(benchmarks=benches, ambients=ambients)
    total = spec.n_jobs

    with tempfile.TemporaryDirectory() as tmp:
        jsonl = os.path.join(tmp, "sweep.jsonl")
        first = run_sweep(spec, workers=1, jsonl_path=jsonl)
        assert first.ok and first.n_jobs == total

        # Simulate a kill after k cells: keep only the first k records.
        k = total // 2
        with open(jsonl, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == total
        truncated = os.path.join(tmp, "truncated.jsonl")
        with open(truncated, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:k])

        sink = InMemorySink()
        with observe.enabled(sink=sink):
            partial = run_sweep(
                spec, workers=1,
                jsonl_path=os.path.join(tmp, "resumed.jsonl"),
                resume_from=truncated,
            )
        executed, skipped = _executed_and_skipped(sink)
        print(
            f"\nresume after {k}/{total} cells: {len(executed)} executed, "
            f"{len(skipped)} skipped"
        )
        assert partial.ok and partial.n_resumed == k
        assert len(executed) == total - k, (
            f"resume re-executed {len(executed)} cells, expected {total - k}"
        )
        assert len(skipped) == k
        assert partial.frequencies() == first.frequencies()

        # Resume from the complete record: zero re-execution.
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            full = run_sweep(spec, workers=1, resume_from=jsonl)
        executed, skipped = _executed_and_skipped(sink)
        print(f"full-record resume: {len(executed)} executed, "
              f"{len(skipped)} skipped")
        assert full.ok and full.n_resumed == total
        assert len(executed) == 0, (
            f"resume from a complete record re-executed {len(executed)} cells"
        )
        assert len(skipped) == total
        assert full.frequencies() == first.frequencies()
