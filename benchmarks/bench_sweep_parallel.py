"""Sweep engine benchmark — parallel scaling vs. the serial baseline.

Runs the same experiment grid (a VTR subset x four ambients) twice on
:func:`repro.runner.run_sweep` — ``workers=1`` and ``workers=N`` — after
prewarming the flow cache so both timings measure Algorithm 1 work, not
place-and-route.  The parallel sweep must be *bit-identical* to the
serial one (same pure ``_execute_job`` per cell) and, on machines with
enough cores, at least ``SPEEDUP_FLOOR`` faster.

Smoke mode for CI: set ``SWEEP_SMOKE=1`` to shrink the grid and skip the
speedup floor (CI machines are noisy and often single-core); the
bit-identity gate always applies.  The floor is also skipped when the
machine simply lacks the cores (``os.cpu_count() < PARALLEL_WORKERS``).
"""

from __future__ import annotations

import os
import time

from repro.runner import ExperimentSpec, run_sweep
from repro.reporting.tables import format_table

SMOKE = os.environ.get("SWEEP_SMOKE", "") == "1"
PARALLEL_WORKERS = 4
SPEEDUP_FLOOR = 2.0
"""Acceptance floor with PARALLEL_WORKERS workers on >= that many cores."""

BENCHMARKS = ("sha", "or1200", "blob_merge", "mkDelayWorker32B",
              "stereovision0", "raygentop")
AMBIENTS = (0.0, 25.0, 50.0, 75.0)
SMOKE_BENCHMARKS = ("sha", "mkPktMerge")
SMOKE_AMBIENTS = (25.0, 70.0)


def test_sweep_parallel_scaling():
    spec = ExperimentSpec(
        benchmarks=SMOKE_BENCHMARKS if SMOKE else BENCHMARKS,
        ambients=SMOKE_AMBIENTS if SMOKE else AMBIENTS,
    )

    # Prewarm the flow cache so neither timed run pays P&R.
    warmup = run_sweep(spec, workers=1)
    assert warmup.ok, warmup.failures

    started = time.perf_counter()
    serial = run_sweep(spec, workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(spec, workers=PARALLEL_WORKERS)
    parallel_s = time.perf_counter() - started

    # Determinism gate: fan-out must not change a single result.
    assert serial.ok and parallel.ok
    assert serial.frequencies() == parallel.frequencies()
    assert serial.gains() == parallel.gains()

    speedup = serial_s / parallel_s
    print()
    print(
        format_table(
            ["mode", "workers", "cells", "wall (s)", "cells/s"],
            [
                ("serial", 1, serial.n_jobs, f"{serial_s:.2f}",
                 f"{serial.n_jobs / serial_s:.1f}"),
                ("parallel", parallel.workers, parallel.n_jobs,
                 f"{parallel_s:.2f}", f"{parallel.n_jobs / parallel_s:.1f}"),
            ],
            title="Sweep engine — serial vs. parallel wall time",
        )
    )
    print(f"\nspeedup {speedup:.2f}x on {os.cpu_count()} cores")

    cores = os.cpu_count() or 1
    if not SMOKE and cores >= PARALLEL_WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel sweep speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR:.1f}x floor with {PARALLEL_WORKERS} workers "
            f"on {cores} cores"
        )
