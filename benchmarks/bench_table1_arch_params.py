"""Paper Table I — architectural parameters used in COFFE.

Prints the architecture description and verifies it matches the published
configuration exactly (this one is a configuration table, not a measured
result).
"""

from repro.arch.params import ArchParams
from repro.reporting.tables import format_table

PAPER_TABLE1 = {
    "K": "6",
    "N": "10",
    "Channel tracks": "320",
    "Wire segment length": "4",
    "Cluster global inputs": "40",
    "SBmux": "12",
    "CBmux": "64",
    "localmux": "25",
    "Vdd, Vlow power": "0.8V, 0.95V",
    "BRAM": "1024 x 32 bit",
}


def test_table1_architectural_parameters(benchmark, arch):
    rows = benchmark(arch.table1_rows)
    print()
    print(format_table(["Parameter", "Value"], rows,
                       title="Table I — architectural parameters"))
    assert dict(rows) == PAPER_TABLE1
