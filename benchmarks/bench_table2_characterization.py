"""Paper Table II — area, delay and power characterization of resources.

Runs the full COFFE-style sizing + 1 C-step characterization sweep of the
25 C device and prints our fits next to the published ones.

Delay/area/power at the 25 C anchor match by calibration (see DESIGN.md);
the temperature *slopes* are genuine model outputs and are the quantities
to compare.
"""

import numpy as np

from repro.coffe.characterize import TABLE2, characterize_fabric
from repro.reporting.tables import format_table


def test_table2_characterization(benchmark, arch):
    resources = benchmark(characterize_fabric, arch, 25.0)
    rows = []
    slope_errors = []
    for name, char in resources.items():
        intercept, slope = char.delay_fit()
        leak_c, leak_k = char.leakage_fit()
        paper = TABLE2[name]
        rows.append(
            (
                name,
                f"{char.area_um2:.1f}",
                f"{intercept * 1e12:.0f}+{slope * 1e12:.2f}T",
                f"{paper.delay_intercept_ps:.0f}+{paper.delay_slope_ps_per_c:.2f}T",
                f"{char.pdyn_w_base * 1e6:.2f}",
                f"{leak_c * 1e6:.2f}e^{leak_k:.3f}T",
            )
        )
        measured_rise = float(char.delay_at(100.0) / char.delay_at(0.0))
        paper_rise = paper.delay_ps(100.0) / paper.delay_ps(0.0)
        slope_errors.append((name, measured_rise, paper_rise))
    print()
    print(
        format_table(
            ["resource", "area um2", "delay ps (ours)", "delay ps (paper)",
             "Pdyn uW", "Plkg uW (ours)"],
            rows,
            title="Table II — D25 characterization",
        )
    )
    print("\n0->100C delay rise, measured vs. paper fit:")
    for name, measured, paper_rise in slope_errors:
        print(f"  {name:13s} x{measured:.3f}  (paper x{paper_rise:.3f})")

    # Anchors must match exactly; slopes within 10 % (BRAM 30 %).
    for name, char in resources.items():
        paper = TABLE2[name]
        np.testing.assert_allclose(
            float(char.delay_at(25.0)) * 1e12, paper.delay_ps(25.0), rtol=1e-3
        )
    for name, measured, paper_rise in slope_errors:
        tolerance = 0.30 if name == "bram" else 0.10
        assert abs(measured - paper_rise) / paper_rise < tolerance, name
