"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
section and prints the measured rows/series next to the published
reference values (shape comparison — see EXPERIMENTS.md).  The
``benchmark`` fixture times the experiment's computational kernel.

Place-and-route results are cached on disk (``~/.cache/repro-flows``), so
the first run of the Fig. 6-8 benches pays the full 19-benchmark P&R cost
and later runs are fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.cad.flow import FlowResult, run_flow
from repro.coffe.fabric import Fabric, build_fabric
from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.core.margins import guardband_gain, worst_case_frequency
from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark


@pytest.fixture(scope="session")
def arch() -> ArchParams:
    return ArchParams()


@pytest.fixture(scope="session")
def fabric25(arch) -> Fabric:
    return build_fabric(25.0, arch)


@pytest.fixture(scope="session")
def fabric70(arch) -> Fabric:
    return build_fabric(70.0, arch)


@pytest.fixture(scope="session")
def suite_flows(arch):
    """Placed-and-routed flows for the full VTR-19 suite (cached on disk)."""
    flows = {}
    for spec in VTR_BENCHMARKS:
        flows[spec.name] = run_flow(vtr_benchmark(spec.name), arch)
    return flows


_GAINS_CACHE = {}


def suite_gains(flows, fabric, t_ambient, baseline_fabric=None):
    """Per-benchmark guardbanding gain over the worst-case baseline.

    Memoized per (fabric corner, ambient, baseline corner): Figs. 6-8 and
    the ablations revisit the same operating points.
    """
    baseline_fabric = baseline_fabric or fabric
    key = (fabric.corner_celsius, t_ambient, baseline_fabric.corner_celsius)
    if key in _GAINS_CACHE:
        return _GAINS_CACHE[key]
    gains = {}
    for spec in VTR_BENCHMARKS:
        flow = flows[spec.name]
        result = thermal_aware_guardband(
            flow, fabric, t_ambient,
            config=GuardbandConfig(base_activity=spec.base_activity),
        )
        f_wc = worst_case_frequency(flow, baseline_fabric)
        gains[spec.name] = guardband_gain(result.frequency_hz, f_wc)
    _GAINS_CACHE[key] = gains
    return gains
