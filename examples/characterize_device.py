#!/usr/bin/env python
"""Characterize a fabric the way COFFE + SiliconSmart do (paper Sec. IV-A).

Sizes every resource of the architecture at a chosen corner temperature,
sweeps the 0..100 C junction range in 1 C steps, and prints the resulting
Table II-style characterization: area, linear delay fit, dynamic power and
exponential leakage fit per resource.

Run:  python examples/characterize_device.py [corner_celsius]
"""

import sys

from repro.api import ArchParams, build_fabric
from repro.coffe.characterize import TABLE2
from repro.reporting.tables import format_table


def main() -> None:
    corner = float(sys.argv[1]) if len(sys.argv) > 1 else 25.0
    arch = ArchParams()
    print(f"Sizing and characterizing the fabric at the {corner:g} C corner...")
    fabric = build_fabric(corner, arch)

    rows = []
    for name, char in fabric.resources.items():
        intercept_s, slope_s = char.delay_fit()
        leak_c, leak_k = char.leakage_fit()
        rows.append(
            (
                name,
                f"{char.area_um2:.1f}",
                f"{intercept_s * 1e12:.0f} + {slope_s * 1e12:.2f}*T",
                f"{char.pdyn_w_base * 1e6:.2f}",
                f"{leak_c * 1e6:.2f}*e^({leak_k:.3f}*T)",
            )
        )
    print(
        format_table(
            ["resource", "area (um2)", "delay (ps)", "Pdyn (uW@100MHz)",
             "Plkg (uW)"],
            rows,
            title=f"\nD{corner:g} characterization (cf. paper Table II for D25)",
        )
    )

    if corner == 25.0:
        print("\nPublished Table II delay fits for comparison:")
        for name, row in TABLE2.items():
            print(
                f"  {name:13s} {row.delay_intercept_ps:.0f} + "
                f"{row.delay_slope_ps_per_c:.2f}*T ps"
            )


if __name__ == "__main__":
    main()
