#!/usr/bin/env python
"""Explore how the design corner shapes the fabric (paper Figs. 2-3).

Builds fabrics sized at 0 C, 25 C and 100 C, prints their representative
critical-path delay curves across the junction range (Fig. 3), the
normalized per-component comparison (Fig. 2), and the corner that wins each
operating band.

Run:  python examples/corner_exploration.py
"""

import numpy as np

from repro import ArchParams, corner_delay_curves
from repro.core.design import fig2_normalized_delays
from repro.reporting.figures import format_series
from repro.reporting.tables import format_table

CORNERS = (0.0, 25.0, 100.0)


def main() -> None:
    arch = ArchParams()

    print("Sizing fabrics at corners", CORNERS, "...")
    curves = corner_delay_curves(CORNERS, "cp", arch)
    sample_ts = np.arange(0.0, 101.0, 10.0)
    series = [
        (f"D{corner:g}",
         [float(np.interp(t, curves.t_grid_celsius, curve)) * 1e12
          for t in sample_ts])
        for corner, curve in sorted(curves.curves.items())
    ]
    print(
        format_series(
            sample_ts, series,
            title="\nFig. 3 — representative CP delay (ps) vs. temperature",
            fmt="{:9.2f}",
        )
    )

    print("\nWinning corner per operating band:")
    for t in (0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0, 100.0):
        print(f"  T = {t:5.1f} C -> D{curves.best_corner_at(t):g}")

    fig2 = fig2_normalized_delays(CORNERS, arch=arch)
    print("\nFig. 2 — delay normalized to the fastest device per chunk:")
    for component, per_point in fig2.items():
        rows = [
            (f"T={t_op:g}C",) + tuple(
                f"{per_point[t_op][c]:.3f}" for c in CORNERS
            )
            for t_op in per_point
        ]
        print()
        print(
            format_table(
                ["operating", *[f"D{c:g}" for c in CORNERS]],
                rows,
                title=f"{component.upper()}",
            )
        )
    print(
        "\nPaper reference points: BRAM D100 is 1.35x D0 at 0 C; CP spread "
        "is 6.3% at 0 C and 9.0% at 100 C."
    )


if __name__ == "__main__":
    main()
