#!/usr/bin/env python
"""Explore how the design corner shapes the fabric (paper Figs. 2-3).

Builds fabrics sized at 0 C, 25 C and 100 C, prints their representative
critical-path delay curves across the junction range (Fig. 3), the
normalized per-component comparison (Fig. 2), and the corner that wins each
operating band — then cross-checks the analytic crossover with the full
flow: a ``repro.runner`` sweep guardbands a benchmark on every corner
grade across the ambient range (Algorithm 1 per cell) and reports which
grade actually clocks fastest at each ambient.

Run:  python examples/corner_exploration.py
"""

import numpy as np

from repro.api import (
    ArchParams,
    ExperimentSpec,
    corner_delay_curves,
    run_sweep,
)
from repro.core.design import fig2_normalized_delays
from repro.reporting.figures import format_series
from repro.reporting.tables import format_table


CORNERS = (0.0, 25.0, 100.0)
SWEEP_BENCH = "sha"
SWEEP_AMBIENTS = (0.0, 25.0, 50.0, 75.0)


def main() -> None:
    arch = ArchParams()

    print("Sizing fabrics at corners", CORNERS, "...")
    curves = corner_delay_curves(CORNERS, "cp", arch)
    sample_ts = np.arange(0.0, 101.0, 10.0)
    series = [
        (f"D{corner:g}",
         [float(np.interp(t, curves.t_grid_celsius, curve)) * 1e12
          for t in sample_ts])
        for corner, curve in sorted(curves.curves.items())
    ]
    print(
        format_series(
            sample_ts, series,
            title="\nFig. 3 — representative CP delay (ps) vs. temperature",
            fmt="{:9.2f}",
        )
    )

    print("\nWinning corner per operating band:")
    for t in (0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0, 100.0):
        print(f"  T = {t:5.1f} C -> D{curves.best_corner_at(t):g}")

    fig2 = fig2_normalized_delays(CORNERS, arch=arch)
    print("\nFig. 2 — delay normalized to the fastest device per chunk:")
    for component, per_point in fig2.items():
        rows = [
            (f"T={t_op:g}C",) + tuple(
                f"{per_point[t_op][c]:.3f}" for c in CORNERS
            )
            for t_op in per_point
        ]
        print()
        print(
            format_table(
                ["operating", *[f"D{c:g}" for c in CORNERS]],
                rows,
                title=f"{component.upper()}",
            )
        )
    print(
        "\nPaper reference points: BRAM D100 is 1.35x D0 at 0 C; CP spread "
        "is 6.3% at 0 C and 9.0% at 100 C."
    )

    # Full-flow cross-check: guardband one benchmark on every corner grade
    # over the ambient range (|corners| x |ambients| Algorithm 1 runs, fanned
    # out by the sweep engine) and compare the winner per ambient with the
    # analytic Fig. 3 crossover above.
    print(
        f"\nGuardbanding {SWEEP_BENCH} on every grade "
        f"({len(CORNERS)} corners x {len(SWEEP_AMBIENTS)} ambients)..."
    )
    sweep = run_sweep(
        ExperimentSpec(
            benchmarks=(SWEEP_BENCH,),
            ambients=SWEEP_AMBIENTS,
            corners=CORNERS,
            arch=arch,
        ),
        workers=2,
    )
    for failure in sweep.failures:
        print(f"  {failure.job_id}: {failure.error_type}: {failure.message}")
    freqs = sweep.frequencies()
    rows = []
    for t_ambient in SWEEP_AMBIENTS:
        by_corner = {
            corner: freqs.get((SWEEP_BENCH, t_ambient, corner))
            for corner in CORNERS
        }
        done = {c: f for c, f in by_corner.items() if f is not None}
        winner = max(done, key=done.get)
        rows.append(
            (f"{t_ambient:g} C",)
            + tuple(
                f"{by_corner[c] / 1e6:.1f}" if by_corner[c] else "failed"
                for c in CORNERS
            )
            + (f"D{winner:g}",)
        )
    print(
        format_table(
            ["Tamb", *[f"D{c:g} MHz" for c in CORNERS], "fastest grade"],
            rows,
            title="Guardbanded clock per device grade (full Algorithm 1)",
        )
    )


if __name__ == "__main__":
    main()
