#!/usr/bin/env python
"""Thermal-aware architecture for a datacenter FPGA accelerator.

The paper's motivating field scenario (Sec. III-C): an FPGA accelerator in
a datacenter server sits next to CPUs running at ~68 C, pushing its
junction toward 100 C.  Its operating range is foreknown — so instead of
the typical 25 C-optimized device, fabricate a hot-corner grade.

This example:

1. selects the best design corner for a 60..100 C field range via the
   paper's Eq. 1 expected delay;
2. maps a DSP-heavy workload (stereovision1-like) onto the typical (D25)
   and the selected hot-grade device;
3. guardbands both with Algorithm 1 at Tamb = 70 C and reports the
   additional gain of the thermal-aware architecture (paper Fig. 8).

Run:  python examples/datacenter_accelerator.py
"""

from repro import (
    ArchParams,
    build_fabric,
    run_flow,
    select_design_corner,
    thermal_aware_guardband,
    vtr_benchmark,
)
from repro.reporting.tables import format_table

FIELD_RANGE = (60.0, 100.0)
T_AMBIENT = 70.0


def main() -> None:
    arch = ArchParams()

    print(f"Selecting a design corner for the {FIELD_RANGE} C field range...")
    choice = select_design_corner(
        *FIELD_RANGE, candidates=(0.0, 25.0, 50.0, 70.0, 100.0), arch=arch
    )
    rows = [
        (f"D{corner:g}", f"{delay * 1e12:.2f} ps",
         f"{choice.advantage_over(corner) * 100:+.2f}%")
        for corner, delay in sorted(choice.expected_delays.items())
    ]
    print(
        format_table(
            ["corner", "E[d] (Eq. 1)", "winner advantage"],
            rows,
            title="Expected representative-CP delay over the field range",
        )
    )
    print(f"-> thermal-aware grade: D{choice.corner_celsius:g}\n")

    print("Mapping the accelerator workload (stereovision1)...")
    flow = run_flow(vtr_benchmark("stereovision1"), arch)

    typical = build_fabric(25.0, arch)
    graded = build_fabric(choice.corner_celsius, arch)
    f_typical = thermal_aware_guardband(flow, typical, T_AMBIENT)
    f_graded = thermal_aware_guardband(flow, graded, T_AMBIENT)
    boost = f_graded.frequency_hz / f_typical.frequency_hz - 1.0

    print(
        format_table(
            ["device", "guardbanded clock", "die max temp"],
            [
                ("typical D25", f"{f_typical.frequency_hz / 1e6:.1f} MHz",
                 f"{f_typical.tile_temperatures.max():.1f} C"),
                (f"grade D{choice.corner_celsius:g}",
                 f"{f_graded.frequency_hz / 1e6:.1f} MHz",
                 f"{f_graded.tile_temperatures.max():.1f} C"),
            ],
            title=f"Both devices thermally guardbanded at Tamb = {T_AMBIENT:.0f} C",
        )
    )
    print(
        f"\nThermal-aware architecture boost: {boost * 100:.1f}% "
        f"(paper Fig. 8 average: 6.7%)"
    )


if __name__ == "__main__":
    main()
