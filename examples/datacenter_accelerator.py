#!/usr/bin/env python
"""Thermal-aware architecture for a datacenter FPGA accelerator.

The paper's motivating field scenario (Sec. III-C): an FPGA accelerator in
a datacenter server sits next to CPUs running at ~68 C, pushing its
junction toward 100 C.  Its operating range is foreknown — so instead of
the typical 25 C-optimized device, fabricate a hot-corner grade.

This example:

1. selects the best design corner for a 60..100 C field range via the
   paper's Eq. 1 expected delay;
2. maps a DSP-heavy workload (stereovision1-like) onto the typical (D25)
   and the selected hot-grade device as one ``repro.runner`` experiment
   grid (1 benchmark x 1 ambient x 2 corners), executed in parallel;
3. reports the additional gain of the thermal-aware architecture with
   both devices guardbanded by Algorithm 1 (paper Fig. 8).

Run:  python examples/datacenter_accelerator.py
"""

from repro.api import (
    ArchParams,
    ExperimentSpec,
    run_sweep,
    select_design_corner,
)
from repro.reporting.sweep import format_sweep_table
from repro.reporting.tables import format_table


FIELD_RANGE = (60.0, 100.0)
T_AMBIENT = 70.0
WORKLOAD = "stereovision1"


def main() -> None:
    arch = ArchParams()

    print(f"Selecting a design corner for the {FIELD_RANGE} C field range...")
    choice = select_design_corner(
        *FIELD_RANGE, candidates=(0.0, 25.0, 50.0, 70.0, 100.0), arch=arch
    )
    rows = [
        (f"D{corner:g}", f"{delay * 1e12:.2f} ps",
         f"{choice.advantage_over(corner) * 100:+.2f}%")
        for corner, delay in sorted(choice.expected_delays.items())
    ]
    print(
        format_table(
            ["corner", "E[d] (Eq. 1)", "winner advantage"],
            rows,
            title="Expected representative-CP delay over the field range",
        )
    )
    print(f"-> thermal-aware grade: D{choice.corner_celsius:g}\n")

    print(f"Guardbanding {WORKLOAD} on both device grades (sweep engine)...")
    spec = ExperimentSpec(
        benchmarks=(WORKLOAD,),
        ambients=(T_AMBIENT,),
        corners=(25.0, choice.corner_celsius),
        arch=arch,
    )
    sweep = run_sweep(spec, workers=2)
    if not sweep.ok:
        for failure in sweep.failures:
            print(f"  {failure.job_id}: {failure.error_type}: {failure.message}")
        raise SystemExit(1)

    print(
        format_sweep_table(
            sweep,
            title=f"Both devices thermally guardbanded at Tamb = {T_AMBIENT:.0f} C",
        )
    )
    f_typical = sweep.result_for(WORKLOAD, T_AMBIENT, 25.0)
    f_graded = sweep.result_for(WORKLOAD, T_AMBIENT, choice.corner_celsius)
    boost = f_graded.frequency_hz / f_typical.frequency_hz - 1.0
    print(
        f"\nThermal-aware architecture boost: {boost * 100:.1f}% "
        f"(paper Fig. 8 average: 6.7%)"
    )


if __name__ == "__main__":
    main()
