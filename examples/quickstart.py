#!/usr/bin/env python
"""Quickstart: thermal-aware guardbanding of one benchmark.

Maps the ``sha`` VTR benchmark onto the commercial-like fabric, runs the
paper's Algorithm 1 at two ambient temperatures, and compares the resulting
clock against the conventional worst-case (Tworst = 100 C) margin.

Run:  python examples/quickstart.py
"""

from repro.api import (
    ArchParams,
    build_fabric,
    guardband_gain,
    run_flow,
    thermal_aware_guardband,
    vtr_benchmark,
    worst_case_frequency,
)
from repro.reporting.tables import format_table


def main() -> None:
    arch = ArchParams()
    print("Characterizing the 25 C-corner fabric (COFFE-style sizing)...")
    fabric = build_fabric(25.0, arch)

    print("Packing, placing and routing 'sha' (VPR-style flow)...")
    netlist = vtr_benchmark("sha")
    flow = run_flow(netlist, arch)
    stats = netlist.stats()
    print(
        f"  {stats['luts']} LUTs, {stats['ffs']} FFs on a "
        f"{flow.layout.width}x{flow.layout.height} grid, "
        f"routed in {flow.routing.iterations} PathFinder iterations\n"
    )

    f_worst = worst_case_frequency(flow, fabric)
    rows = []
    for t_ambient in (25.0, 70.0):
        result = thermal_aware_guardband(flow, fabric, t_ambient)
        gain = guardband_gain(result.frequency_hz, f_worst)
        rows.append(
            (
                f"{t_ambient:.0f} C",
                f"{result.frequency_hz / 1e6:.1f} MHz",
                f"{f_worst / 1e6:.1f} MHz",
                f"{gain * 100:.1f}%",
                result.iterations,
                f"{result.mean_rise_celsius:.1f} C",
            )
        )
    print(
        format_table(
            ["ambient", "thermal-aware", "worst-case", "gain",
             "iterations", "die rise"],
            rows,
            title="Algorithm 1 vs. conventional Tworst=100C guardband",
        )
    )
    print(
        "\nThe paper reports ~36.5% average gain at Tamb=25C (Fig. 6) and "
        "~14% at 70C (Fig. 7)."
    )


if __name__ == "__main__":
    main()
