#!/usr/bin/env python
"""Visualize the thermal profile Algorithm 1 converges to.

Maps a benchmark, runs the guardbanding fixed point, and prints ASCII
heatmaps of the per-tile power and converged temperature, plus the
transient settling behaviour (why an offline, once-per-application thermal
analysis suffices: the die settles in milliseconds while the analysis
validity horizon is the application's lifetime).

Run:  python examples/thermal_map.py [benchmark]
"""

import sys

import numpy as np

from repro.api import ArchParams, build_fabric, run_flow, thermal_aware_guardband, vtr_benchmark
from repro.activity.ace import estimate_activity
from repro.power.model import PowerModel
from repro.reporting.heatmap import format_heatmap
from repro.thermal.hotspot import ThermalSolver
from repro.thermal.transient import TransientThermalSolver


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "stereovision1"
    arch = ArchParams()
    fabric = build_fabric(25.0, arch)
    flow = run_flow(vtr_benchmark(name), arch)

    result = thermal_aware_guardband(flow, fabric, t_ambient=25.0)
    model = PowerModel(flow, fabric, estimate_activity(flow.netlist))
    power = model.evaluate(result.frequency_hz, result.tile_temperatures)

    print(
        format_heatmap(
            flow.layout, power.total_w * 1e3,
            title=f"\n'{name}' per-tile power (mW) at the guardbanded clock",
            legend_unit="mW",
        )
    )
    print(
        format_heatmap(
            flow.layout, result.tile_temperatures,
            title="\nconverged temperature profile (C)",
        )
    )
    print(
        f"\nmean rise {result.mean_rise_celsius:.2f} C, max gradient "
        f"{result.max_gradient_celsius:.2f} C, {result.iterations} iterations"
    )

    transient = TransientThermalSolver(flow.layout)
    steady = ThermalSolver(flow.layout, transient.package).solve(
        power.total_w, 25.0
    )
    run = transient.simulate(
        power.total_w, 25.0, duration_s=12 * transient.time_constant_s
    )
    settle = run.settling_time_s(steady, tolerance_celsius=0.25)
    print(
        f"transient settling to within 0.25 C of steady state: "
        f"{settle * 1e3:.1f} ms (time constant {transient.time_constant_s * 1e3:.1f} ms)"
    )


if __name__ == "__main__":
    main()
