"""Setup shim so editable installs work in offline environments
(no `wheel` package available for PEP 517 editable builds)."""

from setuptools import setup

setup()
