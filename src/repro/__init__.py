"""Reproduction of "Thermal-Aware Design and Flow for FPGA Performance
Improvement" (Khaleghi & Rosing, DATE 2019).

The package is organised as a stack:

- :mod:`repro.technology` / :mod:`repro.spice` — device models and a small
  MNA circuit simulator (HSPICE stand-in).
- :mod:`repro.coffe` — transistor sizing and resource characterization
  (COFFE stand-in): delay(T), leakage(T) and area of every FPGA resource.
- :mod:`repro.arch` / :mod:`repro.netlists` / :mod:`repro.cad` — island-style
  FPGA architecture, benchmark netlists, and a pack/place/route/STA CAD flow
  (VTR stand-in).
- :mod:`repro.activity` / :mod:`repro.power` / :mod:`repro.thermal` — signal
  activity estimation (ACE stand-in), the per-tile power model and a
  steady-state grid thermal solver (HotSpot stand-in).
- :mod:`repro.core` — the paper's contribution: thermal-aware guardbanding
  (Algorithm 1), thermal-aware design and thermal-aware architecture
  selection.
- :mod:`repro.runner` — the parallel experiment engine that fans the
  paper's evaluation grids (benchmarks x ambients x corners) across
  worker processes with retry, per-job records and JSONL streaming.
- :mod:`repro.observe` — unified tracing/metrics/events for the whole
  stack: hierarchical spans, counters/gauges/histograms and JSONL trace
  sinks, zero-cost when disabled (``repro.profiling`` is now a
  deprecated shim over it).

Typical single-design use::

    from repro import (
        ArchParams, GuardbandConfig, build_fabric, vtr_benchmark,
        run_flow, thermal_aware_guardband, worst_case_frequency,
    )

    arch = ArchParams()
    fabric = build_fabric(corner_celsius=25.0)
    routed = run_flow(vtr_benchmark("sha"), arch)
    result = thermal_aware_guardband(
        routed, fabric, t_ambient=25.0,
        config=GuardbandConfig(delta_t=2.0, base_activity=0.19),
    )
    print(result.frequency_hz, result.iterations)

Whole-evaluation sweeps go through the engine instead::

    from repro.runner import ExperimentSpec, run_sweep

    sweep = run_sweep(
        ExperimentSpec(benchmarks=("sha", "bgm"), ambients=(25.0, 70.0)),
        workers=4,
    )
    print(sweep.mean_gain(t_ambient=25.0))
"""

from repro import observe
from repro import profiling
from repro.arch.params import ArchParams
from repro.cad.flow import FlowResult, run_flow
from repro.coffe.characterize import characterize_fabric
from repro.coffe.fabric import Fabric, build_fabric
from repro.core.architecture import expected_delay, select_design_corner
from repro.core.design import corner_delay_curves
from repro.core.guardband import (
    GuardbandConfig,
    GuardbandResult,
    thermal_aware_guardband,
)
from repro.core.margins import worst_case_frequency
from repro.netlists.generator import generate_netlist
from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark

__version__ = "1.2.0"

__all__ = [
    "ArchParams",
    "Fabric",
    "FlowResult",
    "GuardbandConfig",
    "GuardbandResult",
    "VTR_BENCHMARKS",
    "build_fabric",
    "characterize_fabric",
    "corner_delay_curves",
    "expected_delay",
    "generate_netlist",
    "observe",
    "profiling",
    "run_flow",
    "select_design_corner",
    "thermal_aware_guardband",
    "vtr_benchmark",
    "worst_case_frequency",
]
