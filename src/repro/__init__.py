"""Reproduction of "Thermal-Aware Design and Flow for FPGA Performance
Improvement" (Khaleghi & Rosing, DATE 2019).

The package is organised as a stack:

- :mod:`repro.technology` / :mod:`repro.spice` — device models and a small
  MNA circuit simulator (HSPICE stand-in).
- :mod:`repro.coffe` — transistor sizing and resource characterization
  (COFFE stand-in): delay(T), leakage(T) and area of every FPGA resource.
- :mod:`repro.arch` / :mod:`repro.netlists` / :mod:`repro.cad` — island-style
  FPGA architecture, benchmark netlists, and a pack/place/route/STA CAD flow
  (VTR stand-in).
- :mod:`repro.activity` / :mod:`repro.power` / :mod:`repro.thermal` — signal
  activity estimation (ACE stand-in), the per-tile power model and a
  steady-state grid thermal solver (HotSpot stand-in).
- :mod:`repro.core` — the paper's contribution: thermal-aware guardbanding
  (Algorithm 1), thermal-aware design and thermal-aware architecture
  selection.
- :mod:`repro.runner` — the parallel experiment engine that fans the
  paper's evaluation grids (benchmarks x ambients x corners) across
  worker processes with retry, per-job records and JSONL streaming.
- :mod:`repro.store` — persistent content-addressed result store:
  converged guardband results keyed by flow/config/operating point, the
  substrate for sweep checkpoint/resume and warm-started fixed points.
- :mod:`repro.observe` — unified tracing/metrics/events for the whole
  stack: hierarchical spans, counters/gauges/histograms and JSONL trace
  sinks, zero-cost when disabled (``repro.profiling`` is now a
  deprecated shim over it).

**Import from** :mod:`repro.api` — the one blessed, flat entry surface::

    from repro.api import (
        ArchParams, GuardbandConfig, build_fabric, vtr_benchmark,
        run_flow, thermal_aware_guardband, worst_case_frequency,
    )

    arch = ArchParams()
    fabric = build_fabric(corner_celsius=25.0)
    routed = run_flow(vtr_benchmark("sha"), arch)
    result = thermal_aware_guardband(
        routed, fabric, t_ambient=25.0,
        config=GuardbandConfig(delta_t=2.0, base_activity=0.19),
    )
    print(result.frequency_hz, result.iterations)

Whole-evaluation sweeps go through the engine (also on the facade)::

    from repro.api import ExperimentSpec, run_sweep

    sweep = run_sweep(
        ExperimentSpec(benchmarks=("sha", "bgm"), ambients=(25.0, 70.0)),
        workers=4, store="run/store", jsonl_path="run/sweep.jsonl",
    )
    print(sweep.mean_gain(t_ambient=25.0))

The historical top-level re-exports (``from repro import run_flow``)
still resolve, but lazily and with a :class:`DeprecationWarning` — they
will be removed once nothing imports them.
"""

import warnings
from typing import TYPE_CHECKING, Any, List

from repro import observe
from repro import profiling

__version__ = "1.3.0"

#: Legacy top-level re-exports, now served through :mod:`repro.api`.
#: Kept importable for one deprecation cycle; each access warns.
_DEPRECATED_EXPORTS = (
    "ArchParams",
    "Fabric",
    "FlowResult",
    "GuardbandConfig",
    "GuardbandResult",
    "VTR_BENCHMARKS",
    "build_fabric",
    "characterize_fabric",
    "corner_delay_curves",
    "expected_delay",
    "generate_netlist",
    "run_flow",
    "select_design_corner",
    "thermal_aware_guardband",
    "vtr_benchmark",
    "worst_case_frequency",
)

__all__ = sorted(("observe", "profiling") + _DEPRECATED_EXPORTS)


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED_EXPORTS:
        warnings.warn(
            f"importing {name!r} from the top-level 'repro' package is "
            f"deprecated; use 'from repro.api import {name}' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        # Deliberately NOT cached in globals(): every legacy access must
        # keep warning, or callers never learn to migrate.
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_DEPRECATED_EXPORTS))


if TYPE_CHECKING:  # Static surface for mypy/IDEs; runtime warns instead.
    from repro.arch.params import ArchParams
    from repro.cad.flow import FlowResult, run_flow
    from repro.coffe.characterize import characterize_fabric
    from repro.coffe.fabric import Fabric, build_fabric
    from repro.core.architecture import expected_delay, select_design_corner
    from repro.core.design import corner_delay_curves
    from repro.core.guardband import (
        GuardbandConfig,
        GuardbandResult,
        thermal_aware_guardband,
    )
    from repro.core.margins import worst_case_frequency
    from repro.netlists.generator import generate_netlist
    from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark
