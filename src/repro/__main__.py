"""``python -m repro`` — entry point shim.

The whole CLI (parser, subcommands, exit-code conventions) lives in
:mod:`repro.cli`; this module only makes it runnable as ``-m repro``.
``main`` stays importable from here for callers that embed the CLI.
"""

from __future__ import annotations

import sys

from repro.cli import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
