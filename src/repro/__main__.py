"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``characterize [--corner C]`` — print the Table II-style fabric
  characterization for a design corner;
- ``guardband BENCH [--ambient T]`` — run Algorithm 1 on a VTR benchmark
  and compare against the worst-case margin;
- ``corners`` — print the Fig. 3-style corner-crossing summary;
- ``grades [--count K]`` — plan a temperature-grade portfolio (Sec. III-C
  extension);
- ``suite [--ambient T]`` — Fig. 6/7-style per-benchmark gains over the
  whole VTR-19 suite (first run pays the place-and-route cost).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    ArchParams,
    build_fabric,
    run_flow,
    thermal_aware_guardband,
    vtr_benchmark,
    worst_case_frequency,
)
from repro.core.design import corner_delay_curves
from repro.core.grades import plan_temperature_grades
from repro.core.margins import guardband_gain
from repro.netlists.vtr_suite import VTR_BENCHMARKS, benchmark_names
from repro.reporting.figures import format_bar_chart
from repro.reporting.tables import format_table


def _cmd_characterize(args: argparse.Namespace) -> int:
    fabric = build_fabric(args.corner, ArchParams())
    rows = []
    for name, char in fabric.resources.items():
        intercept, slope = char.delay_fit()
        leak_c, leak_k = char.leakage_fit()
        rows.append(
            (name, f"{char.area_um2:.1f}",
             f"{intercept * 1e12:.0f}+{slope * 1e12:.2f}T",
             f"{char.pdyn_w_base * 1e6:.2f}",
             f"{leak_c * 1e6:.2f}e^{leak_k:.3f}T")
        )
    print(format_table(
        ["resource", "area um2", "delay ps", "Pdyn uW", "Plkg uW"],
        rows, title=f"D{args.corner:g} characterization",
    ))
    return 0


def _cmd_guardband(args: argparse.Namespace) -> int:
    arch = ArchParams()
    fabric = build_fabric(25.0, arch)
    flow = run_flow(vtr_benchmark(args.benchmark), arch)
    result = thermal_aware_guardband(flow, fabric, args.ambient)
    f_wc = worst_case_frequency(flow, fabric)
    print(
        f"{args.benchmark}: thermal-aware {result.frequency_hz / 1e6:.1f} MHz "
        f"vs worst-case {f_wc / 1e6:.1f} MHz "
        f"(+{guardband_gain(result.frequency_hz, f_wc) * 100:.1f}%), "
        f"{result.iterations} iterations, "
        f"die {result.tile_temperatures.mean():.1f} C mean / "
        f"{result.tile_temperatures.max():.1f} C max"
    )
    return 0


def _cmd_corners(args: argparse.Namespace) -> int:
    curves = corner_delay_curves((0.0, 25.0, 100.0), "cp", ArchParams())
    rows = []
    for t in np.arange(0.0, 101.0, 10.0):
        winner = curves.best_corner_at(float(t))
        rows.append((f"{t:.0f} C", f"D{winner:g}"))
    print(format_table(["operating T", "fastest device"], rows,
                       title="Fig. 3 corner winners"))
    return 0


def _cmd_grades(args: argparse.Namespace) -> int:
    plan = plan_temperature_grades(args.count)
    rows = [
        (f"[{band.t_low:.0f}, {band.t_high:.0f}] C",
         f"D{band.corner_celsius:g}",
         f"{band.expected_delay_s * 1e12:.2f} ps")
        for band in plan.bands
    ]
    print(format_table(
        ["band", "grade corner", "E[d]"],
        rows,
        title=f"{len(plan.bands)}-grade portfolio "
              f"(range-average {plan.average_delay_s * 1e12:.2f} ps)",
    ))
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    arch = ArchParams()
    fabric = build_fabric(25.0, arch)
    names, values = [], []
    for spec in VTR_BENCHMARKS:
        flow = run_flow(vtr_benchmark(spec.name), arch)
        result = thermal_aware_guardband(
            flow, fabric, args.ambient, base_activity=spec.base_activity
        )
        gain = guardband_gain(
            result.frequency_hz, worst_case_frequency(flow, fabric)
        )
        names.append(spec.name)
        values.append(gain * 100)
        print(f"  {spec.name:16s} {gain * 100:5.1f}%", flush=True)
    print()
    print(format_bar_chart(
        names + ["average"], values + [float(np.mean(values))],
        title=f"guardbanding gain at Tamb={args.ambient:g}C",
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal-aware FPGA design and flow (DATE'19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="Table II-style characterization")
    p.add_argument("--corner", type=float, default=25.0)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("guardband", help="Algorithm 1 on one benchmark")
    p.add_argument("benchmark", choices=benchmark_names())
    p.add_argument("--ambient", type=float, default=25.0)
    p.set_defaults(func=_cmd_guardband)

    p = sub.add_parser("corners", help="corner-crossing summary (Fig. 3)")
    p.set_defaults(func=_cmd_corners)

    p = sub.add_parser("grades", help="temperature-grade portfolio")
    p.add_argument("--count", type=int, default=3)
    p.set_defaults(func=_cmd_grades)

    p = sub.add_parser("suite", help="Fig. 6/7-style suite gains")
    p.add_argument("--ambient", type=float, default=25.0)
    p.set_defaults(func=_cmd_suite)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
