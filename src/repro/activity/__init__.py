"""Signal activity estimation (ACE 2.0 stand-in)."""

from repro.activity.ace import ActivityEstimate, estimate_activity

__all__ = ["ActivityEstimate", "estimate_activity"]
