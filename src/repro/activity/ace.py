"""Probabilistic switching-activity estimation (ACE 2.0 stand-in).

The paper estimates per-signal activities with ACE 2.0 and feeds them into
the dynamic power model (``p_dyn = 1/2 alpha C V^2 f``).  We reproduce the
same quantity — per-net switching activity ``alpha`` (transitions per clock
cycle) — with a lag-one probabilistic propagation:

- primary inputs switch with the benchmark's base activity;
- a K-LUT's output activity follows the mean of its input activities scaled
  by a generic Boolean attenuation factor (random logic neither preserves
  all input toggles nor amplifies them, and deeper logic filters glitches);
- a flip-flop passes activity through with lag-one filtering (a register
  can toggle at most once per cycle and absorbs glitches);
- BRAM/DSP outputs toggle with their (filtered) input activity.

Feedback through registers is handled by damped fixed-point iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlists.netlist import BlockType, Netlist

LUT_ATTENUATION = 0.80
"""Output-vs-mean-input activity ratio of random logic."""

FF_FILTER = 0.90
"""Glitch filtering of a register stage."""

HARD_BLOCK_FILTER = 0.75
"""Activity attenuation through BRAM/DSP datapaths."""

MAX_ITERATIONS = 60
CONVERGENCE = 1e-6
DAMPING = 0.7


@dataclass
class ActivityEstimate:
    """Per-net switching activities (transitions per cycle)."""

    netlist: Netlist
    alpha: np.ndarray
    """Indexed by net id."""
    iterations: int

    def of_net(self, net_id: int) -> float:
        return float(self.alpha[net_id])

    def mean(self) -> float:
        return float(self.alpha.mean()) if len(self.alpha) else 0.0


def estimate_activity(
    netlist: Netlist, base_activity: float = 0.15
) -> ActivityEstimate:
    """Estimate the switching activity of every net.

    ``base_activity`` is the primary-input toggle rate (the benchmark spec
    carries a per-design value).
    """
    if not (0.0 < base_activity <= 1.0):
        raise ValueError(f"base_activity must be in (0, 1], got {base_activity}")
    netlist.validate()
    alpha = np.full(netlist.n_nets, base_activity)
    order = netlist.combinational_order()

    iterations = 0
    for iteration in range(1, MAX_ITERATIONS + 1):
        iterations = iteration
        previous = alpha.copy()
        for block_id in order:
            block = netlist.blocks[block_id]
            if block.type == BlockType.INPUT:
                out = base_activity
            elif block.type == BlockType.OUTPUT:
                continue
            else:
                if block.input_nets:
                    mean_in = float(
                        np.mean([alpha[n] for n in block.input_nets])
                    )
                else:
                    mean_in = base_activity
                if block.type == BlockType.LUT:
                    out = LUT_ATTENUATION * mean_in
                elif block.type == BlockType.FF:
                    out = FF_FILTER * mean_in
                else:  # BRAM / DSP
                    out = HARD_BLOCK_FILTER * mean_in
            out = min(max(out, 0.0), 1.0)
            for net_id in block.output_nets:
                alpha[net_id] = DAMPING * out + (1.0 - DAMPING) * alpha[net_id]
        if float(np.max(np.abs(alpha - previous))) < CONVERGENCE:
            break

    return ActivityEstimate(netlist, alpha, iterations)
