"""Domain-invariant static analysis for the repro codebase.

Generic linters cannot check the invariants this reproduction's
correctness rests on; :mod:`repro.analysis` walks the AST of every
module under ``src/repro`` with rules that can:

- ``units`` — Celsius/Kelvin offsets only in ``technology/temperature.py``;
- ``determinism`` — no unseeded RNGs or wall-clock values in the flow core;
- ``pickle-boundary`` — ``SweepJob``/``ExperimentSpec`` stay picklable;
- ``cache-key`` — ``arch_digest``/``FLOW_CACHE_VERSION``/``ArchParams``
  move together (recorded manifest);
- ``frozen-mutation`` — no ``object.__setattr__`` escapes;
- ``float-equality`` — no exact float compares in physics code (warning).

Run ``python -m repro.analysis`` (see :mod:`repro.analysis.cli`), or
:func:`run_analysis` programmatically.  Findings pass through inline
``# repro-lint: ignore[rule-id]`` suppressions and the committed
baseline before gating.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    AnalysisReport,
    ModuleInfo,
    Project,
    Rule,
    run_analysis,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.manifest import ArchManifest
from repro.analysis.rules import all_rules

__all__ = [
    "AnalysisReport",
    "ArchManifest",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "run_analysis",
]
