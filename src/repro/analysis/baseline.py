"""Committed baseline of accepted findings.

The baseline lets the linter be adopted on a codebase with pre-existing
violations: known findings (by :attr:`Finding.fingerprint`) do not fail
the run, while anything new does.  Fingerprints exclude line numbers, so
unrelated edits don't invalidate entries; each entry carries a *count* so
that introducing a second identical violation in the same file is still
caught.

The file is JSON, sorted, and meant to be committed — shrinking it is
progress, growing it is a review decision.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding, sort_key

BASELINE_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Accepted-finding budget, keyed by fingerprint."""

    counts: Dict[str, int] = field(default_factory=dict)
    notes: Dict[str, Dict[str, object]] = field(default_factory=dict)
    """Human-readable context per fingerprint (rule/path/message)."""

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != BASELINE_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_FORMAT_VERSION})"
            )
        counts: Dict[str, int] = {}
        notes: Dict[str, Dict[str, object]] = {}
        for fingerprint, entry in data.get("entries", {}).items():
            counts[fingerprint] = int(entry.get("count", 1))
            notes[fingerprint] = {
                "rule": entry.get("rule", ""),
                "path": entry.get("path", ""),
                "message": entry.get("message", ""),
            }
        return cls(counts=counts, notes=notes)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fp = finding.fingerprint
            baseline.counts[fp] = baseline.counts.get(fp, 0) + 1
            baseline.notes[fp] = {
                "rule": finding.rule_id,
                "path": finding.path,
                "message": finding.message,
            }
        return baseline

    def save(self, path: Path) -> None:
        entries = {
            fp: {**self.notes.get(fp, {}), "count": count}
            for fp, count in sorted(self.counts.items())
        }
        payload = {"version": BASELINE_FORMAT_VERSION, "entries": entries}
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, baselined).

        Each fingerprint absorbs at most its recorded count, in source
        order; occurrences beyond the budget are new.
        """
        seen: Counter = Counter()
        fresh: List[Finding] = []
        known: List[Finding] = []
        for finding in sorted(findings, key=sort_key):
            fp = finding.fingerprint
            seen[fp] += 1
            if seen[fp] <= self.counts.get(fp, 0):
                known.append(finding)
            else:
                fresh.append(finding)
        return fresh, known

    def stale_entries(self, findings: Iterable[Finding]) -> List[str]:
        """Fingerprints whose budget exceeds what the scan produced.

        Stale entries mean a baselined violation was fixed — the file
        should be regenerated so the budget cannot be silently re-spent.
        """
        seen: Counter = Counter(f.fingerprint for f in findings)
        return sorted(
            fp for fp, count in self.counts.items() if seen[fp] < count
        )
