"""Project-wide call graph and async-reachability analysis.

The per-module rules in :mod:`repro.analysis.rules` see one AST at a
time; the concurrency family (``async-blocking``, ``loop-affinity``,
``exception-flow``) needs to know what the *event loop* can reach across
the whole project.  From the already-parsed
:class:`~repro.analysis.engine.Project` this module builds:

- a **symbol table** mapping qualified function names
  (``service/scheduler.py::SweepScheduler.submit``) to their
  definitions, with per-module scopes: import aliases (including
  function-level and ``if TYPE_CHECKING`` imports), classes and nested
  defs, the ``repro.api`` facade's ``_EXPORTS`` table, and names bound
  by ``from x import y`` inside a module-level ``__getattr__``;
- a conservative **caller -> callee edge set**: direct calls, ``self.``
  method calls (through project base classes), calls through import and
  re-export chains, constructor calls, and attribute calls on receivers
  whose type is known from parameter annotations, ``self.x = <annotated
  param>`` / ``self.x = ClassName(...)`` assignments, class-body
  annotations, or annotated return types of project functions;
- an **async-reachability** pass: every function transitively reachable
  from an ``async def`` body runs on the event loop — unless the edge
  crosses an *executor boundary*.  A callable reference handed to
  ``loop.run_in_executor`` / ``asyncio.to_thread`` runs on a worker
  thread or process, so such edges exist but do not propagate loop
  reachability.  Callback references handed to ``loop.call_soon`` /
  ``call_soon_threadsafe`` / ``call_later`` / ``call_at`` run *on* the
  loop and propagate normally.

Everything is deliberately conservative: an edge is recorded only when
the target is certain.  :meth:`CallGraph.stats` exposes resolution
counters, and a live-repo test holds the resolved fraction above a
floor so a resolver regression cannot quietly blind the rules.
"""

from __future__ import annotations

import ast
import builtins
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import ModuleInfo, Project

MODULE_BODY = "<module>"

_BUILTIN_NAMES = frozenset(dir(builtins))
_MAX_FOLLOW = 16

# Callable-reference argument index for executor hand-offs (the target
# runs OFF the loop) and loop-callback hand-offs (the target runs ON
# the loop).
EXECUTOR_BOUNDARY_CALLS: Dict[str, int] = {"run_in_executor": 1, "to_thread": 0}
LOOP_CALLBACK_CALLS: Dict[str, int] = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
}

LOOP_TYPE = "asyncio.AbstractEventLoop"
_LOOP_RECEIVER_NAMES = frozenset({"loop", "_loop", "event_loop"})
_KNOWN_EXTERNAL_RETURNS = {
    "asyncio.get_running_loop": LOOP_TYPE,
    "asyncio.get_event_loop": LOOP_TYPE,
    "asyncio.new_event_loop": LOOP_TYPE,
}

# Scope-entry kinds: ("func", key) / ("class", key) / ("module", dotted)
# / ("external", dotted) / ("const", key).
Entry = Tuple[str, str]
# Type references: ("class", class_key), ("external", dotted), or
# ("unknown", "") — a name that exists locally but has no inferable type.
TypeRef = Tuple[str, str]
UNKNOWN: TypeRef = ("unknown", "")


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    key: str
    """``<module rel>::<qualname>`` — globally unique."""
    module: str
    qualname: str
    name: str
    is_async: bool
    lineno: int
    class_key: Optional[str] = None


@dataclass
class ClassInfo:
    """A top-level class: its methods, bases and inferred attribute types."""

    key: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression, with whatever resolution was possible."""

    caller: str
    module: str
    node: ast.Call
    chain: Optional[str]
    """Literal dotted source text of the callee (``self.store.get``)."""
    callee: Optional[str] = None
    """Resolved project function key, when certain."""
    external: Optional[str] = None
    """Resolved external dotted name (``time.sleep``), when known."""
    builtin: Optional[str] = None
    via_executor: bool = False
    candidate: bool = False
    """True when the call *should* be resolvable (intra-package shape)."""

    @property
    def resolved(self) -> bool:
        return self.callee is not None


@dataclass
class CallGraph:
    """Symbol table + conservative edges + loop reachability."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    edges: List[Tuple[str, str, bool]] = field(default_factory=list)
    """(caller key, callee key, via_executor)."""
    loop_reachable: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    """function key -> shortest chain of keys from an ``async def`` root."""
    module_index: Dict[str, "_ModuleIndex"] = field(default_factory=dict)
    """dotted module name -> scope index (used by ``api-surface``)."""

    def short(self, key: str) -> str:
        info = self.functions.get(key)
        if info is None:
            return key
        return f"{info.module}:{info.qualname}"

    def reach_path(self, key: str, limit: int = 5) -> str:
        """Human-readable async-origin chain for ``key``."""
        chain = self.loop_reachable.get(key, ())
        names = [self.short(k) for k in chain]
        if len(names) > limit:
            names = names[:2] + ["..."] + names[-(limit - 3):]
        return " -> ".join(names)

    def stats(self) -> Dict[str, object]:
        candidates = [c for c in self.calls if c.candidate]
        resolved = [c for c in candidates if c.resolved]
        fraction = (len(resolved) / len(candidates)) if candidates else 1.0
        return {
            "n_functions": len(self.functions),
            "n_classes": len(self.classes),
            "n_calls": len(self.calls),
            "n_edges": len(self.edges),
            "n_loop_reachable": len(self.loop_reachable),
            "n_candidates": len(candidates),
            "n_resolved": len(resolved),
            "resolved_fraction": fraction,
        }


def _dotted_text(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chains as dotted text; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_dotted(rel: str) -> str:
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _iter_scope_stmts(body: Sequence[ast.stmt]) -> Iterable[ast.stmt]:
    """Module/function-level statements, descending into if/try/with/loop
    blocks but never into nested ``def``/``class`` bodies."""
    queue: deque = deque(body)
    while queue:
        stmt = queue.popleft()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child_body in (
            getattr(stmt, "body", None),
            getattr(stmt, "orelse", None),
            getattr(stmt, "finalbody", None),
        ):
            if isinstance(child_body, list):
                queue.extend(s for s in child_body if isinstance(s, ast.stmt))
        for handler in getattr(stmt, "handlers", ()) or ():
            queue.extend(handler.body)


def _iter_calls(body: Sequence[ast.stmt]) -> Iterable[ast.Call]:
    """Every Call expression in ``body`` outside nested def/class bodies."""
    for stmt in _iter_scope_stmts(body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                continue
            for node in _walk_values(value):
                if isinstance(node, ast.Call):
                    yield node


def _walk_values(value: object) -> Iterable[ast.AST]:
    if isinstance(value, ast.AST):
        if isinstance(value, ast.Lambda):
            return
        yield value
        for _, child in ast.iter_fields(value):
            yield from _walk_values(child)
    elif isinstance(value, list):
        for item in value:
            yield from _walk_values(item)


@dataclass
class _ModuleIndex:
    """Per-module scope: what a bare name means at module level."""

    rel: str
    dotted: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    defs: Dict[str, Entry] = field(default_factory=dict)
    exports: Optional[Dict[str, str]] = None
    """The facade ``_EXPORTS`` table (name -> defining module dotted)."""
    export_lines: Dict[str, int] = field(default_factory=dict)
    exports_node: Optional[ast.AST] = None
    all_names: Optional[List[str]] = None
    getattr_names: Optional[set] = None
    """Names bound by a module-level ``__getattr__`` (lazy re-exports)."""


class _Builder:
    def __init__(self, project: "Project") -> None:
        self.project = project
        self.graph = CallGraph()
        self.indexes: Dict[str, _ModuleIndex] = {}
        self._fn_nodes: Dict[str, ast.stmt] = {}

    # ------------------------------------------------------------------
    # pass 1: per-module symbol index

    def index_modules(self) -> None:
        for module in self.project.modules:
            index = _ModuleIndex(
                rel=module.rel, dotted=_module_dotted(module.rel), tree=module.tree
            )
            self.indexes[index.dotted] = index
            self.graph.module_index[index.dotted] = index
            for stmt in _iter_scope_stmts(module.tree.body):
                self._index_stmt(module, index, stmt)
        # Second sweep now that every class exists: method tables for the
        # functions dict were filled during _index_stmt already.

    def _index_stmt(self, module: "ModuleInfo", index: _ModuleIndex, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                index.aliases.setdefault(bound, target)
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_from_base(index, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                index.aliases.setdefault(bound, target)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == "__getattr__":
                self._index_module_getattr(index, stmt)
            key = f"{module.rel}::{stmt.name}"
            self._register_function(module.rel, stmt, key, class_key=None)
            index.defs.setdefault(stmt.name, ("func", key))
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(module, index, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "_EXPORTS":
                    self._index_exports(index, stmt)
                elif target.id == "__all__":
                    index.all_names = self._string_list(stmt.value)
                index.defs.setdefault(
                    target.id, ("const", f"{module.rel}::{target.id}")
                )

    def _import_from_base(self, index: _ModuleIndex, stmt: ast.ImportFrom) -> str:
        if not stmt.level:
            return stmt.module or ""
        parts = index.dotted.split(".") if index.dotted else []
        if not index.rel.endswith("__init__.py"):
            parts = parts[:-1]
        if stmt.level > 1:
            parts = parts[: len(parts) - (stmt.level - 1)]
        if stmt.module:
            parts = parts + stmt.module.split(".")
        return ".".join(parts)

    def _index_module_getattr(
        self, index: _ModuleIndex, stmt: ast.FunctionDef
    ) -> None:
        """Names lazily re-exported by a module-level ``__getattr__``."""
        if index.getattr_names is None:
            index.getattr_names = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.ImportFrom):
                base = self._import_from_base(index, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    index.aliases.setdefault(alias.name, target)
                    index.getattr_names.add(alias.asname or alias.name)

    def _index_exports(self, index: _ModuleIndex, stmt: ast.stmt) -> None:
        value = stmt.value if not isinstance(stmt, ast.AnnAssign) else stmt.value
        if not isinstance(value, ast.Dict):
            return
        exports: Dict[str, str] = {}
        lines: Dict[str, int] = {}
        for key_node, value_node in zip(value.keys, value.values):
            if (
                isinstance(key_node, ast.Constant)
                and isinstance(key_node.value, str)
                and isinstance(value_node, ast.Constant)
                and isinstance(value_node.value, str)
            ):
                exports[key_node.value] = value_node.value
                lines[key_node.value] = key_node.lineno
        if exports:
            index.exports = exports
            index.export_lines = lines
            index.exports_node = stmt

    @staticmethod
    def _string_list(value: Optional[ast.expr]) -> Optional[List[str]]:
        if not isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            if isinstance(value, ast.Call):
                # ``__all__ = sorted(_EXPORTS)`` — contents resolved via
                # the exports table instead.
                return []
            return None
        out = []
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
        return out

    def _register_function(
        self,
        rel: str,
        node: ast.stmt,
        key: str,
        class_key: Optional[str],
        qualname: Optional[str] = None,
    ) -> FunctionInfo:
        info = FunctionInfo(
            key=key,
            module=rel,
            qualname=qualname or key.split("::", 1)[1],
            name=getattr(node, "name", MODULE_BODY),
            is_async=isinstance(node, ast.AsyncFunctionDef),
            lineno=getattr(node, "lineno", 1),
            class_key=class_key,
        )
        self.graph.functions.setdefault(key, info)
        return info

    def _index_class(
        self, module: "ModuleInfo", index: _ModuleIndex, stmt: ast.ClassDef
    ) -> None:
        class_key = f"{module.rel}::{stmt.name}"
        cls = ClassInfo(key=class_key, module=module.rel, name=stmt.name, node=stmt)
        for base in stmt.bases:
            dotted = _dotted_text(base)
            if dotted:
                cls.bases.append(dotted)
        for item in stmt.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_key = f"{module.rel}::{stmt.name}.{item.name}"
                self._register_function(
                    module.rel, item, method_key, class_key=class_key
                )
                cls.methods[item.name] = method_key
        self.graph.classes[class_key] = cls
        index.defs.setdefault(stmt.name, ("class", class_key))

    # ------------------------------------------------------------------
    # name resolution

    def resolve_qualified(self, dotted: str, depth: int = 0) -> Optional[Entry]:
        """Resolve an absolute dotted name to a project entry or external."""
        if depth > _MAX_FOLLOW:
            return None
        parts = dotted.split(".")
        candidates = [parts]
        if len(parts) > 1:
            # Imports are package-absolute (``repro.service.wire``) while
            # module rel paths are scan-root relative; try with the root
            # package segment stripped as well.
            candidates.append(parts[1:])
        for cand in candidates:
            for cut in range(len(cand), 0, -1):
                mod = ".".join(cand[:cut])
                if mod not in self.indexes:
                    continue
                rest = cand[cut:]
                if not rest:
                    return ("module", mod)
                entry: Optional[Entry] = ("module", mod)
                for i, name in enumerate(rest):
                    if entry is None:
                        break
                    kind, value = entry
                    if kind == "module":
                        entry = self.module_symbol(value, name, depth + 1)
                    elif kind == "class":
                        method = self.class_method(value, name)
                        entry = ("func", method) if method else None
                    else:
                        entry = None
                if entry is not None:
                    return entry
                # A matching module prefix whose tail fails to resolve is
                # final for this candidate (don't fall back to a shorter
                # prefix — that would mis-resolve submodule attributes).
                break
        if _external_root(parts[0]):
            return ("external", dotted)
        return None

    def module_symbol(
        self, mod_dotted: str, name: str, depth: int = 0
    ) -> Optional[Entry]:
        """What ``name`` means inside project module ``mod_dotted``."""
        if depth > _MAX_FOLLOW:
            return None
        index = self.indexes.get(mod_dotted)
        if index is None:
            return None
        if name in index.defs:
            return index.defs[name]
        if name in index.aliases:
            return self.resolve_qualified(index.aliases[name], depth + 1)
        if index.exports and name in index.exports:
            target = index.exports[name]
            resolved = self.resolve_qualified(f"{target}.{name}", depth + 1)
            if resolved is not None:
                return resolved
            return self.resolve_qualified(target, depth + 1)
        sub = f"{mod_dotted}.{name}" if mod_dotted else name
        if sub in self.indexes:
            return ("module", sub)
        return None

    def class_method(
        self, class_key: str, name: str, _seen: Optional[set] = None
    ) -> Optional[str]:
        """Method lookup through the project part of the MRO."""
        seen = _seen if _seen is not None else set()
        if class_key in seen:
            return None
        seen.add(class_key)
        cls = self.graph.classes.get(class_key)
        if cls is None:
            return None
        if name in cls.methods:
            return cls.methods[name]
        index = self.indexes.get(_module_dotted(cls.module))
        for base_text in cls.bases:
            entry = self._resolve_in_module(base_text, index)
            if entry and entry[0] == "class":
                found = self.class_method(entry[1], name, seen)
                if found:
                    return found
        return None

    def _resolve_in_module(
        self, dotted: str, index: Optional[_ModuleIndex]
    ) -> Optional[Entry]:
        """Resolve a dotted name as written inside ``index``'s module."""
        if index is None:
            return None
        parts = dotted.split(".")
        root = parts[0]
        entry: Optional[Entry] = None
        if root in index.defs:
            entry = index.defs[root]
        elif root in index.aliases:
            entry = self.resolve_qualified(index.aliases[root], 1)
        elif index.exports and root in index.exports:
            entry = self.module_symbol(index.dotted, root, 1)
        if entry is None:
            return None
        for name in parts[1:]:
            kind, value = entry
            if kind == "module":
                entry = self.module_symbol(value, name, 1)
            elif kind == "class":
                method = self.class_method(value, name)
                entry = ("func", method) if method else None
            elif kind == "external":
                entry = ("external", f"{value}.{name}")
            else:
                entry = None
            if entry is None:
                return None
        return entry

    # ------------------------------------------------------------------
    # pass 2: class attribute types

    def infer_class_attrs(self) -> None:
        for cls in self.graph.classes.values():
            index = self.indexes.get(_module_dotted(cls.module))
            if index is None:
                continue
            for item in cls.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    ref = self.annotation_type(item.annotation, index, {})
                    if ref is not None:
                        cls.attr_types.setdefault(item.target.id, ref)
            for item in cls.node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                decorators = {
                    _dotted_text(d) for d in item.decorator_list
                }
                if decorators & {"property", "functools.cached_property"}:
                    ref = self.annotation_type(item.returns, index, {})
                    if ref is not None and ref[0] != "unknown":
                        cls.attr_types.setdefault(item.name, ref)
                    continue
                params = self._param_types(item, index, {}, cls)
                for stmt in ast.walk(item):
                    attr: Optional[str] = None
                    ref = None
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Attribute)
                        and isinstance(stmt.target.value, ast.Name)
                        and stmt.target.value.id == "self"
                    ):
                        attr = stmt.target.attr
                        ref = self.annotation_type(stmt.annotation, index, {})
                    elif isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attr = target.attr
                                ref = self.expr_type(stmt.value, index, {}, params)
                    if attr and ref is not None and ref[0] != "unknown":
                        cls.attr_types.setdefault(attr, ref)

    def annotation_type(
        self,
        node: Optional[ast.expr],
        index: _ModuleIndex,
        local_aliases: Dict[str, str],
        depth: int = 0,
    ) -> Optional[TypeRef]:
        if node is None or depth > _MAX_FOLLOW:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return None
                return self.annotation_type(parsed, index, local_aliases, depth + 1)
            return None
        if isinstance(node, ast.Subscript):
            head = _dotted_text(node.value)
            inner = node.slice
            if head and head.split(".")[-1] == "Optional":
                return self.annotation_type(inner, index, local_aliases, depth + 1)
            if head and head.split(".")[-1] == "Union":
                if isinstance(inner, ast.Tuple):
                    for elt in inner.elts:
                        ref = self.annotation_type(
                            elt, index, local_aliases, depth + 1
                        )
                        if ref is not None:
                            return ref
                return None
            return self.annotation_type(node.value, index, local_aliases, depth + 1)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                if isinstance(side, ast.Constant) and side.value is None:
                    continue
                ref = self.annotation_type(side, index, local_aliases, depth + 1)
                if ref is not None:
                    return ref
            return None
        dotted = _dotted_text(node)
        if dotted is None:
            return None
        merged_index = index
        if local_aliases and dotted.split(".")[0] in local_aliases:
            root = dotted.split(".")[0]
            target = local_aliases[root]
            rest = dotted.split(".")[1:]
            entry = self.resolve_qualified(
                ".".join([target] + rest), depth + 1
            )
        else:
            entry = self._resolve_in_module(dotted, merged_index)
        if entry is None:
            if "." in dotted or _external_root(dotted.split(".")[0]):
                return ("external", dotted)
            return None
        kind, value = entry
        if kind == "class":
            return ("class", value)
        if kind == "external":
            return ("external", value)
        return None

    def expr_type(
        self,
        node: Optional[ast.expr],
        index: _ModuleIndex,
        local_aliases: Dict[str, str],
        env: Dict[str, TypeRef],
    ) -> Optional[TypeRef]:
        """Best-effort type of a RHS expression."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Await):
            return None
        if isinstance(node, ast.Call):
            dotted = _dotted_text(node.func)
            if dotted is None:
                return None
            entry = self._lookup_callable(dotted, index, local_aliases)
            if entry is None:
                return None
            kind, value = entry
            if kind == "class":
                return ("class", value)
            if kind == "func":
                info = self.graph.functions.get(value)
                if info is None:
                    return None
                fn_index = self.indexes.get(_module_dotted(info.module))
                node_fn = self._function_node(info)
                if fn_index is None or node_fn is None:
                    return None
                return self.annotation_type(node_fn.returns, fn_index, {})
            if kind == "external":
                known = _KNOWN_EXTERNAL_RETURNS.get(value)
                if known:
                    return ("external", known)
        return None

    def _lookup_callable(
        self, dotted: str, index: _ModuleIndex, local_aliases: Dict[str, str]
    ) -> Optional[Entry]:
        root = dotted.split(".")[0]
        if root in local_aliases:
            rest = dotted.split(".")[1:]
            return self.resolve_qualified(
                ".".join([local_aliases[root]] + rest), 1
            )
        return self._resolve_in_module(dotted, index)

    def _function_node(
        self, info: FunctionInfo
    ) -> Optional[ast.FunctionDef]:
        node = self._fn_nodes.get(info.key)
        return node

    def _param_types(
        self,
        fnode: ast.stmt,
        index: _ModuleIndex,
        local_aliases: Dict[str, str],
        cls: Optional[ClassInfo],
    ) -> Dict[str, TypeRef]:
        env: Dict[str, TypeRef] = {}
        args = fnode.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            if arg.arg == "self" and cls is not None:
                env["self"] = ("class", cls.key)
                continue
            ref = self.annotation_type(arg.annotation, index, local_aliases)
            env[arg.arg] = ref if ref is not None else UNKNOWN
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                env[extra.arg] = UNKNOWN
        return env

    # ------------------------------------------------------------------
    # pass 3: calls and edges

    def process_all(self) -> None:
        for module in self.project.modules:
            index = self.indexes[_module_dotted(module.rel)]
            body_key = f"{module.rel}::{MODULE_BODY}"
            for stmt in index.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._process_function(
                        stmt,
                        key=f"{module.rel}::{stmt.name}",
                        index=index,
                        cls=None,
                        parent_env={},
                        parent_aliases={},
                        parent_nested={},
                    )
                elif isinstance(stmt, ast.ClassDef):
                    cls = self.graph.classes.get(f"{module.rel}::{stmt.name}")
                    for item in stmt.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._process_function(
                                item,
                                key=f"{module.rel}::{stmt.name}.{item.name}",
                                index=index,
                                cls=cls,
                                parent_env={},
                                parent_aliases={},
                                parent_nested={},
                            )
                else:
                    self._process_stmts(
                        [stmt],
                        caller=body_key,
                        index=index,
                        cls=None,
                        env={},
                        local_aliases={},
                        nested={},
                    )

    def _collect_fn_nodes(self, module: "ModuleInfo", index: _ModuleIndex) -> None:
        for stmt in index.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._fn_nodes[f"{module.rel}::{stmt.name}"] = stmt
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._fn_nodes[
                            f"{module.rel}::{stmt.name}.{item.name}"
                        ] = item

    def _process_function(
        self,
        fnode: ast.stmt,
        key: str,
        index: _ModuleIndex,
        cls: Optional[ClassInfo],
        parent_env: Dict[str, TypeRef],
        parent_aliases: Dict[str, str],
        parent_nested: Dict[str, str],
    ) -> None:
        info = self.graph.functions.get(key)
        if info is None:
            qualname = key.split("::", 1)[1]
            info = self._register_function(
                index.rel, fnode, key, cls.key if cls else None, qualname
            )
            self._fn_nodes[key] = fnode

        local_aliases = dict(parent_aliases)
        env = dict(parent_env)
        env.update(self._param_types(fnode, index, local_aliases, cls))

        # Nested defs first: callable by name anywhere in this body.
        nested = dict(parent_nested)
        nested_nodes: List[Tuple[ast.stmt, str]] = []
        for stmt in _iter_scope_stmts(fnode.body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nkey = f"{index.rel}::{info.qualname}.{stmt.name}"
                nested[stmt.name] = nkey
                nested_nodes.append((stmt, nkey))
                self._fn_nodes[nkey] = stmt
                self._register_function(
                    index.rel, stmt, nkey, cls.key if cls else None,
                    qualname=f"{info.qualname}.{stmt.name}",
                )

        # Function-level imports and typed locals (single forward pass).
        for stmt in _iter_scope_stmts(fnode.body):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    local_aliases.setdefault(bound, target)
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_from_base(index, stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    local_aliases.setdefault(
                        bound, f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                ref = self.annotation_type(stmt.annotation, index, local_aliases)
                env.setdefault(stmt.target.id, ref if ref is not None else UNKNOWN)
            elif isinstance(stmt, ast.Assign):
                ref = None
                if len(stmt.targets) == 1 and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    ref = self.expr_type(stmt.value, index, local_aliases, env)
                for target in stmt.targets:
                    for name_node in self._target_names(target):
                        env.setdefault(
                            name_node, ref if ref is not None else UNKNOWN
                        )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                for name_node in self._target_names(stmt.target):
                    env.setdefault(name_node, UNKNOWN)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        for name_node in self._target_names(item.optional_vars):
                            env.setdefault(name_node, UNKNOWN)

        self._process_stmts(
            fnode.body,
            caller=key,
            index=index,
            cls=cls,
            env=env,
            local_aliases=local_aliases,
            nested=nested,
        )
        for stmt, nkey in nested_nodes:
            self._process_function(
                stmt,
                key=nkey,
                index=index,
                cls=cls,
                parent_env=env,
                parent_aliases=local_aliases,
                parent_nested=nested,
            )

    def _process_stmts(
        self,
        body: Sequence[ast.stmt],
        caller: str,
        index: _ModuleIndex,
        cls: Optional[ClassInfo],
        env: Dict[str, TypeRef],
        local_aliases: Dict[str, str],
        nested: Dict[str, str],
    ) -> None:
        for call in _iter_calls(body):
            self._record_call(call, caller, index, cls, env, local_aliases, nested)

    # -- reference resolution (a Name/Attribute used as a callable value)

    def _resolve_ref(
        self,
        node: ast.expr,
        index: _ModuleIndex,
        cls: Optional[ClassInfo],
        env: Dict[str, TypeRef],
        local_aliases: Dict[str, str],
        nested: Dict[str, str],
    ) -> Optional[str]:
        """A function *reference* (not a call) -> project function key."""
        dotted = _dotted_text(node)
        if dotted is None:
            return None
        resolved = self._resolve_callee(
            dotted, index, cls, env, local_aliases, nested
        )
        callee, _external, _builtin, _candidate = resolved
        return callee

    def _resolve_callee(
        self,
        dotted: str,
        index: _ModuleIndex,
        cls: Optional[ClassInfo],
        env: Dict[str, TypeRef],
        local_aliases: Dict[str, str],
        nested: Dict[str, str],
    ) -> Tuple[Optional[str], Optional[str], Optional[str], bool]:
        """-> (callee key, external dotted, builtin name, candidate)."""
        parts = dotted.split(".")
        root = parts[0]

        if len(parts) == 1:
            if root in nested:
                return nested[root], None, None, True
            entry = None
            if root in local_aliases:
                entry = self.resolve_qualified(local_aliases[root], 1)
            else:
                entry = self.module_symbol(index.dotted, root, 0)
            if entry is not None:
                return self._entry_to_callee(entry)
            if root in _BUILTIN_NAMES:
                return None, None, root, False
            if root in env:
                return None, None, None, False
            return None, None, None, True

        # self.<...>
        if root == "self" and cls is not None:
            if len(parts) == 2:
                method = self.class_method(cls.key, parts[1])
                if method:
                    return method, None, None, True
                return None, None, None, True
            if len(parts) == 3:
                ref = cls.attr_types.get(parts[1])
                return self._typed_receiver(ref, parts[1], parts[2])
            return None, None, None, False

        # typed local / parameter receiver
        if root in env and len(parts) == 2:
            return self._typed_receiver(env.get(root), root, parts[1])

        # module alias / class-name receiver
        entry = None
        if root in nested:
            entry = ("func", nested[root])
        elif root in local_aliases:
            entry = self.resolve_qualified(
                ".".join([local_aliases[root]] + parts[1:]), 1
            )
            if entry is not None:
                return self._entry_to_callee(entry)
        else:
            entry = self._resolve_in_module(dotted, index)
            if entry is not None:
                return self._entry_to_callee(entry)

        # fallback: something.loop.call_soon(...) — treat *loop-named*
        # receivers as event loops so loop-affinity sees them even when
        # the receiver's type is unknown.
        if len(parts) >= 2 and parts[-2] in _LOOP_RECEIVER_NAMES:
            return None, f"{LOOP_TYPE}.{parts[-1]}", None, False
        return None, None, None, False

    @staticmethod
    def _target_names(target: ast.expr) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: List[str] = []
            for elt in target.elts:
                names.extend(_Builder._target_names(elt))
            return names
        if isinstance(target, ast.Starred):
            return _Builder._target_names(target.value)
        return []

    def _typed_receiver(
        self, ref: Optional[TypeRef], receiver: str, method: str
    ) -> Tuple[Optional[str], Optional[str], Optional[str], bool]:
        if ref is None or ref[0] == "unknown":
            if receiver in _LOOP_RECEIVER_NAMES:
                return None, f"{LOOP_TYPE}.{method}", None, False
            return None, None, None, False
        kind, value = ref
        if kind == "class":
            found = self.class_method(value, method)
            if found:
                return found, None, None, True
            return None, None, None, True
        return None, f"{value}.{method}", None, False

    def _entry_to_callee(
        self, entry: Entry
    ) -> Tuple[Optional[str], Optional[str], Optional[str], bool]:
        kind, value = entry
        if kind == "func":
            return value, None, None, True
        if kind == "class":
            init = self.class_method(value, "__init__")
            if init:
                return init, None, None, True
            # No __init__ anywhere in the project MRO: still "resolved"
            # for coverage purposes (the target class is known).
            return None, f"<class {value}>", None, False
        if kind == "external":
            return None, value, None, False
        if kind == "module":
            return None, None, None, False
        # const — a callable bound by assignment; not resolvable.
        return None, None, None, False

    def _record_call(
        self,
        node: ast.Call,
        caller: str,
        index: _ModuleIndex,
        cls: Optional[ClassInfo],
        env: Dict[str, TypeRef],
        local_aliases: Dict[str, str],
        nested: Dict[str, str],
    ) -> None:
        chain = _dotted_text(node.func)
        site = CallSite(caller=caller, module=index.rel, node=node, chain=chain)
        if chain is not None:
            callee, external, builtin, candidate = self._resolve_callee(
                chain, index, cls, env, local_aliases, nested
            )
            site.callee = callee
            site.external = external
            site.builtin = builtin
            site.candidate = candidate
        self.graph.calls.append(site)
        if site.callee is not None:
            self.graph.edges.append((caller, site.callee, False))

        if chain is None:
            return
        last = chain.split(".")[-1]
        ref_index = None
        via_executor = False
        if last in EXECUTOR_BOUNDARY_CALLS and len(chain.split(".")) > 1:
            ref_index = EXECUTOR_BOUNDARY_CALLS[last]
            via_executor = True
        elif last in LOOP_CALLBACK_CALLS:
            ref_index = LOOP_CALLBACK_CALLS[last]
        if ref_index is None or ref_index >= len(node.args):
            return
        ref_key = self._resolve_ref(
            node.args[ref_index], index, cls, env, local_aliases, nested
        )
        if ref_key is not None:
            self.graph.edges.append((caller, ref_key, via_executor))

    # ------------------------------------------------------------------
    # pass 4: async reachability

    def propagate(self) -> None:
        adjacency: Dict[str, List[str]] = {}
        for caller, callee, via_executor in self.graph.edges:
            if via_executor:
                continue
            adjacency.setdefault(caller, []).append(callee)
        reachable: Dict[str, Tuple[str, ...]] = {}
        queue: deque = deque()
        for key, info in self.graph.functions.items():
            if info.is_async:
                reachable[key] = (key,)
                queue.append(key)
        while queue:
            current = queue.popleft()
            path = reachable[current]
            for nxt in adjacency.get(current, ()):
                if nxt in reachable:
                    continue
                reachable[nxt] = path + (nxt,)
                queue.append(nxt)
        self.graph.loop_reachable = reachable


def _external_root(root: str) -> bool:
    """A plausible external package root (heuristic: not dunder-ish)."""
    return bool(root) and not root.startswith("__")


def build_call_graph(project: "Project") -> CallGraph:
    """Build the full graph for ``project`` (cached on the Project)."""
    builder = _Builder(project)
    builder.index_modules()
    for module in project.modules:
        builder._collect_fn_nodes(
            module, builder.indexes[_module_dotted(module.rel)]
        )
    builder.infer_class_attrs()
    builder.process_all()
    builder.propagate()
    return builder.graph
