"""``python -m repro.analysis`` — run the domain linter.

Exit codes: 0 when no *new* errors (baselined findings and warnings do
not gate), 1 when new errors exist or the baseline is stale, 2 on usage
errors.  ``--json`` emits the full machine-readable report on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    AnalysisReport,
    Project,
    default_baseline_path,
    default_manifest_path,
    default_scan_root,
    default_store_manifest_path,
    default_wire_manifest_path,
    load_modules,
    run_analysis,
)
from repro.analysis.findings import Severity
from repro.analysis.rules import all_rules, registry_rule_ids
from repro.analysis.rules.cache_key import (
    current_manifest,
    current_store_manifest,
    current_wire_manifest,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based domain-invariant linter for the repro codebase",
    )
    parser.add_argument(
        "root",
        nargs="?",
        type=Path,
        default=None,
        help="directory (or single file) to scan; default: the installed "
        "repro package",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: {default_baseline_path().name} next "
        "to the analysis package)",
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        help="ArchParams manifest file for the cache-key rule",
    )
    parser.add_argument(
        "--store-manifest",
        type=Path,
        default=None,
        help="GuardbandConfig store manifest file for the cache-key rule",
    )
    parser.add_argument(
        "--wire-manifest",
        type=Path,
        default=None,
        help="service wire-schema manifest file for the cache-key rule",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--update-manifest",
        action="store_true",
        help="record the current (ArchParams fields, FLOW_CACHE_VERSION), "
        "(GuardbandConfig fields, STORE_SCHEMA_VERSION) and (wire kind "
        "fields, WIRE_SCHEMA_VERSION) states and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: every rule)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip (applied after --select)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule and exit"
    )
    return parser


def _parse_rule_ids(
    parser: argparse.ArgumentParser, option: str, raw: Optional[str]
) -> Optional[set]:
    """Split a comma-separated ``--select``/``--ignore`` value.

    Unknown rule ids are a usage error (exit 2) — a typo that silently
    selected nothing would read as a clean run.
    """
    if raw is None:
        return None
    ids = {part.strip() for part in raw.split(",") if part.strip()}
    if not ids:
        parser.error(f"{option} needs at least one rule id")
    unknown = ids - set(registry_rule_ids())
    if unknown:
        known = ", ".join(registry_rule_ids())
        parser.error(
            f"{option}: unknown rule id(s) {sorted(unknown)}; known: {known}"
        )
    return ids


def select_rules(
    parser: argparse.ArgumentParser,
    select: Optional[str],
    ignore: Optional[str],
) -> list:
    """The rule instances to run: ``--select`` narrowed by ``--ignore``."""
    selected = _parse_rule_ids(parser, "--select", select)
    ignored = _parse_rule_ids(parser, "--ignore", ignore)
    rules = all_rules()
    if selected is not None:
        rules = [r for r in rules if r.rule_id in selected]
    if ignored is not None:
        rules = [r for r in rules if r.rule_id not in ignored]
    if not rules:
        parser.error("--select/--ignore left no rules to run")
    return rules


def _print_report(report: AnalysisReport, baseline_path: Path) -> None:
    for finding in report.findings:
        marker = " (baselined)" if finding in report.baselined else ""
        print(finding.format() + marker)
    if report.suppressed:
        print(f"{len(report.suppressed)} finding(s) inline-suppressed")
    if report.stale_baseline:
        print(
            f"stale baseline: {len(report.stale_baseline)} entr(y/ies) no "
            f"longer match any finding — regenerate {baseline_path} with "
            "--update-baseline"
        )
    n_err = len(report.new_errors)
    n_warn = len(report.new_warnings)
    print(
        f"{report.n_files} files scanned: {n_err} new error(s), "
        f"{n_warn} warning(s), {len(report.baselined)} baselined"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id} ({rule.severity}): {rule.description}")
        return 0

    root = args.root if args.root is not None else default_scan_root()
    if not root.exists():
        parser.error(f"scan root {root} does not exist")
    manifest_path = (
        args.manifest if args.manifest is not None else default_manifest_path()
    )
    store_manifest_path = (
        args.store_manifest
        if args.store_manifest is not None
        else default_store_manifest_path()
    )
    wire_manifest_path = (
        args.wire_manifest
        if args.wire_manifest is not None
        else default_wire_manifest_path()
    )
    baseline_path = (
        args.baseline if args.baseline is not None else default_baseline_path()
    )

    if args.update_manifest:
        modules, parse_errors = load_modules(Path(root))
        if parse_errors:
            for finding in parse_errors:
                print(finding.format(), file=sys.stderr)
            return 1
        project = Project(
            root=Path(root),
            modules=modules,
            manifest_path=manifest_path,
            store_manifest_path=store_manifest_path,
            wire_manifest_path=wire_manifest_path,
        )
        manifest = current_manifest(project)
        if manifest is None:
            print(
                "could not locate ArchParams / FLOW_CACHE_VERSION under "
                f"{root}",
                file=sys.stderr,
            )
            return 1
        manifest.save(manifest_path)
        print(
            f"recorded {len(manifest.fields)} ArchParams fields at "
            f"FLOW_CACHE_VERSION={manifest.flow_cache_version} -> "
            f"{manifest_path}"
        )
        store_manifest = current_store_manifest(project)
        if store_manifest is None:
            # A tree without a result store (e.g. a fixture project) has
            # nothing to record; the arch manifest alone is complete.
            print(
                f"no GuardbandConfig / STORE_SCHEMA_VERSION under {root}; "
                "store manifest left untouched",
                file=sys.stderr,
            )
            return 0
        store_manifest.save(store_manifest_path)
        print(
            f"recorded {len(store_manifest.fields)} GuardbandConfig fields "
            f"at STORE_SCHEMA_VERSION={store_manifest.store_schema_version} "
            f"-> {store_manifest_path}"
        )
        wire_manifest = current_wire_manifest(project)
        if wire_manifest is None:
            print(
                f"no wire schema (WIRE_SCHEMA_VERSION) under {root}; "
                "wire manifest left untouched",
                file=sys.stderr,
            )
            return 0
        wire_manifest.save(wire_manifest_path)
        print(
            f"recorded {len(wire_manifest.kinds)} wire kinds at "
            f"WIRE_SCHEMA_VERSION={wire_manifest.wire_schema_version} "
            f"-> {wire_manifest_path}"
        )
        return 0

    try:
        baseline = Baseline.load(baseline_path)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    report = run_analysis(
        root=Path(root),
        rules=select_rules(parser, args.select, args.ignore),
        baseline=baseline,
        manifest_path=manifest_path,
        store_manifest_path=store_manifest_path,
        wire_manifest_path=wire_manifest_path,
        # Suppressions naming a deselected rule stay valid, not "unknown".
        known_rule_ids=registry_rule_ids(),
    )

    if args.update_baseline:
        Baseline.from_findings(
            f for f in report.findings if f.severity is Severity.ERROR
        ).save(baseline_path)
        print(
            f"baselined {len([f for f in report.findings if f.severity is Severity.ERROR])} "
            f"error finding(s) -> {baseline_path}"
        )
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=False))
    else:
        _print_report(report, baseline_path)

    if report.new_errors or report.stale_baseline:
        return 1
    return 0
