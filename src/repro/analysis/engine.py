"""Rule engine: parse every module once, dispatch per-rule visitors.

The engine walks a scan root (normally ``src/repro``), parses each
``*.py`` into one shared :class:`ModuleInfo`, and hands it to every
registered rule.  Rules are :class:`Rule` subclasses with two hooks:

- :meth:`Rule.check_module` — per-module findings from that module's AST;
- :meth:`Rule.finalize` — cross-module findings once the whole project is
  parsed (e.g. the cache-key rule, which correlates ``ArchParams`` with
  ``arch_digest`` and ``FLOW_CACHE_VERSION`` across files).

Findings then pass through inline suppressions and the committed
baseline; only *new errors* gate (see :mod:`repro.analysis.cli`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.callgraph import CallGraph

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity, sort_key
from repro.analysis.suppress import (
    is_suppressed,
    suppressions_for,
    unknown_rule_references,
)

PARSE_ERROR_RULE = "parse-error"
SUPPRESS_ERROR_RULE = "unknown-suppression"

DEFAULT_MANIFEST_NAME = "archparams_manifest.json"
DEFAULT_STORE_MANIFEST_NAME = "store_manifest.json"
DEFAULT_WIRE_MANIFEST_NAME = "wire_manifest.json"
DEFAULT_BASELINE_NAME = "baseline.json"

_ANALYSIS_DIR = Path(__file__).resolve().parent


def default_manifest_path() -> Path:
    return _ANALYSIS_DIR / DEFAULT_MANIFEST_NAME


def default_store_manifest_path() -> Path:
    return _ANALYSIS_DIR / DEFAULT_STORE_MANIFEST_NAME


def default_wire_manifest_path() -> Path:
    return _ANALYSIS_DIR / DEFAULT_WIRE_MANIFEST_NAME


def default_baseline_path() -> Path:
    return _ANALYSIS_DIR / DEFAULT_BASELINE_NAME


def default_scan_root() -> Path:
    """The installed ``repro`` package itself."""
    return _ANALYSIS_DIR.parent


@dataclass
class ModuleInfo:
    """One parsed source module."""

    path: Path
    rel: str
    """POSIX path relative to the scan root (rules match on this)."""
    source: str
    tree: ast.Module

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            rule_id=rule.rule_id,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            severity=severity if severity is not None else rule.severity,
            message=message,
        )


@dataclass
class Project:
    """Everything :meth:`Rule.finalize` may correlate across modules."""

    root: Path
    modules: List[ModuleInfo]
    manifest_path: Path
    store_manifest_path: Path = field(default_factory=default_store_manifest_path)
    wire_manifest_path: Path = field(default_factory=default_wire_manifest_path)
    _call_graph: Optional["CallGraph"] = field(
        default=None, init=False, repr=False, compare=False
    )

    def call_graph(self) -> "CallGraph":
        """Project-wide call graph, built once and shared by every rule."""
        if self._call_graph is None:
            from repro.analysis.callgraph import build_call_graph

            self._call_graph = build_call_graph(self)
        return self._call_graph

    def module(self, rel: str) -> Optional[ModuleInfo]:
        for info in self.modules:
            if info.rel == rel:
                return info
        return None

    def find_class(self, name: str) -> Optional[Tuple[ModuleInfo, ast.ClassDef]]:
        """The first module defining a top-level class ``name``."""
        for info in self.modules:
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return info, node
        return None


class Rule:
    """Base class for one lint rule; subclasses set the class attributes."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


@dataclass
class AnalysisReport:
    """Outcome of one engine run, pre-partitioned for the CLI."""

    findings: List[Finding] = field(default_factory=list)
    """Every unsuppressed finding, in source order."""
    new_errors: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    n_files: int = 0

    @property
    def new_warnings(self) -> List[Finding]:
        return [
            f for f in self.findings
            if f.severity is Severity.WARNING and f not in self.baselined
        ]

    @property
    def ok(self) -> bool:
        """True when nothing new gates the run."""
        return not self.new_errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "n_new_errors": len(self.new_errors),
            "n_baselined": len(self.baselined),
            "n_suppressed": len(self.suppressed),
            "stale_baseline": self.stale_baseline,
            "findings": [f.to_dict() for f in self.findings],
        }


def _iter_sources(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    return sorted(
        p for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def load_modules(root: Path) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Parse every module under ``root``; syntax errors become findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    base = root if root.is_dir() else root.parent
    for path in _iter_sources(root):
        rel = path.relative_to(base).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 1) or 1
            errors.append(
                Finding(
                    rule_id=PARSE_ERROR_RULE,
                    path=rel,
                    line=line,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"could not parse module: {error}",
                )
            )
            continue
        modules.append(ModuleInfo(path=path, rel=rel, source=source, tree=tree))
    return modules, errors


def run_analysis(
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    manifest_path: Optional[Path] = None,
    store_manifest_path: Optional[Path] = None,
    wire_manifest_path: Optional[Path] = None,
    known_rule_ids: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Run every rule over the tree under ``root`` and partition findings.

    ``baseline=None`` means an empty baseline (everything new gates);
    pass :meth:`Baseline.load` of the committed file for CI semantics.
    ``known_rule_ids`` extends the rule-id set considered valid in
    inline suppressions — pass the full registry when running a filtered
    subset so suppressions naming deselected rules don't read as typos.
    """
    if root is None:
        root = default_scan_root()
    root = Path(root)
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    if manifest_path is None:
        manifest_path = default_manifest_path()
    if store_manifest_path is None:
        store_manifest_path = default_store_manifest_path()
    if wire_manifest_path is None:
        wire_manifest_path = default_wire_manifest_path()
    if baseline is None:
        baseline = Baseline()

    modules, raw = load_modules(root)
    raw = list(raw)
    known_ids = frozenset(
        [r.rule_id for r in rules]
        + [PARSE_ERROR_RULE, SUPPRESS_ERROR_RULE]
        + list(known_rule_ids or ())
    )

    for module in modules:
        for rule in rules:
            raw.extend(rule.check_module(module))

    project = Project(
        root=root,
        modules=modules,
        manifest_path=manifest_path,
        store_manifest_path=store_manifest_path,
        wire_manifest_path=wire_manifest_path,
    )
    for rule in rules:
        raw.extend(rule.finalize(project))

    # Inline suppressions: drop findings whose anchor line opts out, and
    # flag marker comments that name rules which do not exist (typos
    # silently disabling nothing are worse than an error).
    suppression_tables = {
        module.rel: suppressions_for(module.source) for module in modules
    }
    for module in modules:
        for line, rule_id in unknown_rule_references(
            suppression_tables[module.rel], known_ids
        ):
            raw.append(
                Finding(
                    rule_id=SUPPRESS_ERROR_RULE,
                    path=module.rel,
                    line=line,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"suppression names unknown rule {rule_id!r}",
                )
            )

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        table = suppression_tables.get(finding.path)
        if table and is_suppressed(table, finding.line, finding.rule_id):
            suppressed.append(finding)
        else:
            kept.append(finding)
    kept.sort(key=sort_key)

    fresh, known = baseline.partition(kept)
    report = AnalysisReport(
        findings=kept,
        new_errors=[f for f in fresh if f.severity is Severity.ERROR],
        baselined=known,
        suppressed=sorted(suppressed, key=sort_key),
        stale_baseline=baseline.stale_entries(kept),
        n_files=len(modules),
    )
    return report
