"""Finding model shared by every lint rule.

A :class:`Finding` is one structured diagnostic — ``file:line:col
severity[rule-id] message`` — produced by a rule, filtered through inline
suppressions (:mod:`repro.analysis.suppress`) and the committed baseline
(:mod:`repro.analysis.baseline`) before it can fail a run.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings outside the baseline fail the run; ``WARNING``
    findings are reported but never gate.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic at a source location."""

    rule_id: str
    path: str
    """Scan-root-relative POSIX path of the offending module."""
    line: int
    col: int
    severity: Severity
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule_id}] {self.message}"
        )

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line/column so a baselined finding
        survives unrelated edits that shift it around the file.
        """
        payload = f"{self.rule_id}\x00{self.path}\x00{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": str(self.severity),
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule_id)
