"""Keying manifests — the cache-key rule's recorded state.

Three versioned contracts in the codebase pair dataclass field sets
with a version constant, and all fail the same way when the field set
drifts without a bump:

- the flow cache keys on a digest of *every* ``ArchParams`` field plus
  ``FLOW_CACHE_VERSION`` (:class:`ArchManifest`) — we have bumped the
  version twice in two PRs because this drifted silently;
- the result store (:mod:`repro.store`) keys on every ``GuardbandConfig``
  field plus ``STORE_SCHEMA_VERSION`` (:class:`StoreManifest`) — a field
  change without a schema bump would serve stale converged guardbands
  computed under different semantics;
- the service wire schema (:mod:`repro.service.wire`) serialises every
  field of its wire classes under ``WIRE_SCHEMA_VERSION``
  (:class:`WireManifest`) — a field change without a bump means an old
  peer's payloads are silently reinterpreted (or spuriously rejected)
  instead of failing with a version diagnostic.

Each committed manifest records the last reviewed ``(field set,
version)`` pair; :mod:`repro.analysis.rules.cache_key` compares the live
code against it and fails when the fields changed but the version did
not.

Regenerate all of them with ``python -m repro.analysis
--update-manifest`` after bumping the relevant version.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

MANIFEST_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ArchManifest:
    """Recorded (ArchParams fields, FLOW_CACHE_VERSION) pair."""

    fields: tuple
    flow_cache_version: int

    @classmethod
    def load(cls, path: Path) -> Optional["ArchManifest"]:
        if not path.exists():
            return None
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported manifest version {data.get('version')!r}"
            )
        return cls(
            fields=tuple(data["archparams_fields"]),
            flow_cache_version=int(data["flow_cache_version"]),
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": MANIFEST_FORMAT_VERSION,
            "archparams_fields": sorted(self.fields),
            "flow_cache_version": self.flow_cache_version,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


@dataclass(frozen=True)
class StoreManifest:
    """Recorded (GuardbandConfig fields, STORE_SCHEMA_VERSION) pair."""

    fields: tuple
    store_schema_version: int

    @classmethod
    def load(cls, path: Path) -> Optional["StoreManifest"]:
        if not path.exists():
            return None
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported manifest version {data.get('version')!r}"
            )
        return cls(
            fields=tuple(data["guardbandconfig_fields"]),
            store_schema_version=int(data["store_schema_version"]),
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": MANIFEST_FORMAT_VERSION,
            "guardbandconfig_fields": sorted(self.fields),
            "store_schema_version": self.store_schema_version,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


@dataclass(frozen=True)
class WireManifest:
    """Recorded (per-kind field sets, WIRE_SCHEMA_VERSION) state."""

    kinds: tuple
    """Sorted ``(kind, (field, ...))`` pairs, one per wire kind."""
    wire_schema_version: int

    @classmethod
    def load(cls, path: Path) -> Optional["WireManifest"]:
        if not path.exists():
            return None
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported manifest version {data.get('version')!r}"
            )
        return cls(
            kinds=tuple(
                (kind, tuple(fields))
                for kind, fields in sorted(data["wire_kind_fields"].items())
            ),
            wire_schema_version=int(data["wire_schema_version"]),
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": MANIFEST_FORMAT_VERSION,
            "wire_kind_fields": {
                kind: sorted(fields) for kind, fields in self.kinds
            },
            "wire_schema_version": self.wire_schema_version,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def fields_by_kind(self) -> dict:
        return {kind: set(fields) for kind, fields in self.kinds}


def dataclass_field_names(class_body: List) -> List[str]:
    """Field names of a dataclass body: annotated, non-ClassVar assignments."""
    import ast

    names: List[str] = []
    for stmt in class_body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        names.append(stmt.target.id)
    return names
