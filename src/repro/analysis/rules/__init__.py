"""Rule registry: every domain rule the engine runs by default."""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.cache_key import CacheKeyRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.float_eq import FloatEqualityRule
from repro.analysis.rules.frozen_mutation import FrozenMutationRule
from repro.analysis.rules.pickle_boundary import PickleBoundaryRule
from repro.analysis.rules.units import UnitsRule

__all__ = [
    "CacheKeyRule",
    "DeterminismRule",
    "FloatEqualityRule",
    "FrozenMutationRule",
    "PickleBoundaryRule",
    "UnitsRule",
    "all_rules",
]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in reporting order."""
    return [
        UnitsRule(),
        DeterminismRule(),
        PickleBoundaryRule(),
        CacheKeyRule(),
        FrozenMutationRule(),
        FloatEqualityRule(),
    ]
