"""Rule registry: every domain rule the engine runs by default."""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.api_surface import ApiSurfaceRule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.cache_key import CacheKeyRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exception_flow import ExceptionFlowRule
from repro.analysis.rules.float_eq import FloatEqualityRule
from repro.analysis.rules.frozen_mutation import FrozenMutationRule
from repro.analysis.rules.loop_affinity import LoopAffinityRule
from repro.analysis.rules.pickle_boundary import PickleBoundaryRule
from repro.analysis.rules.units import UnitsRule

__all__ = [
    "ApiSurfaceRule",
    "AsyncBlockingRule",
    "CacheKeyRule",
    "DeterminismRule",
    "ExceptionFlowRule",
    "FloatEqualityRule",
    "FrozenMutationRule",
    "LoopAffinityRule",
    "PickleBoundaryRule",
    "UnitsRule",
    "all_rules",
    "registry_rule_ids",
]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in reporting order."""
    return [
        UnitsRule(),
        DeterminismRule(),
        PickleBoundaryRule(),
        CacheKeyRule(),
        FrozenMutationRule(),
        FloatEqualityRule(),
        AsyncBlockingRule(),
        LoopAffinityRule(),
        ExceptionFlowRule(),
        ApiSurfaceRule(),
    ]


def registry_rule_ids() -> List[str]:
    """Every registered rule id, in reporting order."""
    return [rule.rule_id for rule in all_rules()]
