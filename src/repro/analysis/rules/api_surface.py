"""``api-surface`` — the lazy facade's export table stays coherent.

``repro.api`` is the single public import surface: a ``_EXPORTS`` dict
mapping exported names to their defining modules, resolved lazily by
``__getattr__``.  Because the resolution is dynamic, a renamed function
or a module moved in a refactor produces no ImportError at definition
time — the facade silently breaks at first *use*, typically inside a
user's long-running sweep.  This rule re-checks the table statically on
every lint run:

- every ``_EXPORTS`` value names a module that exists in the project;
- every exported name is actually bound by that module — a top-level
  def/class/assignment, an import it re-exports, a name its own
  module-level ``__getattr__`` provides, a submodule, or the module
  itself (``"observe": "repro.observe"``);
- exported names respect the defining module's declared ``__all__``:
  exporting a name the module keeps private bypasses its contract
  (names served by the module's ``__getattr__`` are exempt — that is
  the documented lazy-export idiom);
- duplicate keys in the ``_EXPORTS`` literal (the later entry silently
  wins) are flagged;
- (warning) every export should also appear in the facade's
  ``TYPE_CHECKING`` import block, so IDEs and mypy see the same
  surface users get at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import Project, Rule
from repro.analysis.findings import Finding, Severity


class ApiSurfaceRule(Rule):
    rule_id = "api-surface"
    severity = Severity.ERROR
    description = (
        "repro.api _EXPORTS entries must name existing modules that "
        "actually bind (and publicly declare) each exported name"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        if len(project.modules) < 2:
            # Single-file scans can never resolve cross-module exports;
            # stay silent rather than flagging every entry.
            return ()
        graph = project.call_graph()
        facade = None
        for index in graph.module_index.values():
            if index.exports:
                facade = index
                break
        if facade is None:
            return ()
        module = project.module(facade.rel)
        if module is None:
            return ()

        findings: List[Finding] = []
        self._check_duplicates(module, facade, findings)
        for name, target in sorted(facade.exports.items()):
            line = facade.export_lines.get(name, 1)
            anchor = _LineAnchor(line)
            target_index = self._resolve_module(graph, target)
            if target_index is None:
                findings.append(
                    module.finding(
                        self,
                        anchor,
                        f"facade export {name!r} points at module "
                        f"{target!r}, which does not exist in the project",
                    )
                )
                continue
            self_export = name == target_index.dotted.split(".")[-1]
            getattr_bound = bool(
                target_index.getattr_names and name in target_index.getattr_names
            )
            if not self_export and not self._binds(graph, target_index, name):
                findings.append(
                    module.finding(
                        self,
                        anchor,
                        f"facade exports {name!r} from {target!r}, but that "
                        "module does not bind the name (renamed or moved?)",
                    )
                )
                continue
            if (
                not self_export
                and not getattr_bound
                and target_index.all_names
                and name not in target_index.all_names
            ):
                findings.append(
                    module.finding(
                        self,
                        anchor,
                        f"facade exports {name!r} from {target!r}, but the "
                        "module's __all__ does not declare it public",
                    )
                )
                continue
            if name not in facade.aliases:
                findings.append(
                    module.finding(
                        self,
                        anchor,
                        f"facade export {name!r} is missing from the "
                        "TYPE_CHECKING import block: IDEs and mypy see a "
                        "narrower surface than runtime provides",
                        severity=Severity.WARNING,
                    )
                )
        return findings

    def _check_duplicates(self, module, facade, findings: List[Finding]) -> None:
        node = facade.exports_node
        value = getattr(node, "value", None)
        if not isinstance(value, ast.Dict):
            return
        seen = {}
        for key_node in value.keys:
            if isinstance(key_node, ast.Constant) and isinstance(
                key_node.value, str
            ):
                if key_node.value in seen:
                    findings.append(
                        module.finding(
                            self,
                            key_node,
                            f"duplicate _EXPORTS key {key_node.value!r} "
                            f"(first defined at line {seen[key_node.value]}); "
                            "the later entry silently wins",
                        )
                    )
                else:
                    seen[key_node.value] = key_node.lineno

    @staticmethod
    def _resolve_module(graph, dotted: str):
        parts = dotted.split(".")
        for cand in (parts, parts[1:] if len(parts) > 1 else None):
            if not cand:
                continue
            index = graph.module_index.get(".".join(cand))
            if index is not None:
                return index
        return None

    @staticmethod
    def _binds(graph, index, name: str) -> bool:
        if name in index.defs or name in index.aliases:
            return True
        if index.exports and name in index.exports:
            return True
        if index.all_names and name in index.all_names:
            return True
        sub = f"{index.dotted}.{name}" if index.dotted else name
        return sub in graph.module_index


class _LineAnchor:
    """Minimal node-like anchor for findings at a known line."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
        self.col_offset = 0
