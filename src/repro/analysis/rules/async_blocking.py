"""``async-blocking`` — no blocking calls on the event loop.

The service layer (PR 7) runs a single asyncio loop that schedules
every job, serves every HTTP request and fans events out to streaming
clients.  One synchronous file read on that loop stalls *every*
connected client for the duration — exactly the tail-latency regression
the store-first scheduler exists to avoid.  This rule walks the
project call graph (:mod:`repro.analysis.callgraph`) and flags every
**known-blocking primitive** whose enclosing function is transitively
reachable from an ``async def`` body without an intervening
``run_in_executor`` / ``asyncio.to_thread`` boundary:

- ``time.sleep`` (use ``asyncio.sleep``),
- ``open`` / ``Path.read_text`` & friends (file IO),
- ``fcntl.*`` (advisory locks block until granted),
- ``subprocess.*`` (synchronous process spawns),
- ``ResultStore.get`` / ``ResultStore.put`` (pickle + locked file IO),
- ``splu`` / ``spsolve`` (seconds-long sparse factorizations).

Reachability is call-graph-deep, not syntactic: a blocking call three
frames below an ``async def`` is flagged with the full chain in the
message.  Handing the *reference* to an executor
(``loop.run_in_executor(None, self.store.get, digest)``) is the
sanctioned fix and creates no loop-side edge.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.engine import Project, Rule
from repro.analysis.findings import Finding, Severity

_BLOCKING_EXTERNAL = {
    "time.sleep": "sleeps the whole loop thread (use asyncio.sleep)",
}
_BLOCKING_EXTERNAL_PREFIXES = {
    "fcntl.": "advisory file locks block until granted",
    "subprocess.": "synchronous process spawn",
}
_BLOCKING_LAST_SEGMENTS = {
    "splu": "sparse LU factorization runs for seconds at scale",
    "spsolve": "sparse solve runs for seconds at scale",
}
_BLOCKING_BUILTINS = {
    "open": "synchronous file IO",
    "input": "blocks on stdin",
}
_BLOCKING_PATH_IO = {
    "read_text": "synchronous file IO",
    "write_text": "synchronous file IO",
    "read_bytes": "synchronous file IO",
    "write_bytes": "synchronous file IO",
}
_BLOCKING_PROJECT_TAILS = {
    "ResultStore.get": "locked pickle read from the result store",
    "ResultStore.load": "locked pickle read from the result store",
    "ResultStore.put": "locked pickle write to the result store",
}


class AsyncBlockingRule(Rule):
    rule_id = "async-blocking"
    severity = Severity.ERROR
    description = (
        "known-blocking calls (time.sleep, open/file IO, fcntl, "
        "subprocess, ResultStore.get/put, splu) must not be reachable "
        "on the event loop; hand them to run_in_executor"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        graph = project.call_graph()
        findings: List[Finding] = []
        for site in graph.calls:
            if site.via_executor:
                continue
            if site.caller not in graph.loop_reachable:
                continue
            reason = self._blocking_reason(site, graph)
            if reason is None:
                continue
            module = project.module(site.module)
            if module is None:
                continue
            label = site.chain or site.builtin or "<call>"
            findings.append(
                module.finding(
                    self,
                    site.node,
                    f"blocking call `{label}` ({reason}) runs on the event "
                    f"loop: reachable via {graph.reach_path(site.caller)}; "
                    "hand it to loop.run_in_executor(...) or "
                    "asyncio.to_thread(...)",
                )
            )
        return findings

    @staticmethod
    def _blocking_reason(site, graph) -> Optional[str]:
        if site.builtin is not None:
            return _BLOCKING_BUILTINS.get(site.builtin)
        if site.external is not None:
            exact = _BLOCKING_EXTERNAL.get(site.external)
            if exact:
                return exact
            for prefix, reason in _BLOCKING_EXTERNAL_PREFIXES.items():
                if site.external.startswith(prefix):
                    return reason
            last = site.external.split(".")[-1]
            if last in _BLOCKING_LAST_SEGMENTS:
                return _BLOCKING_LAST_SEGMENTS[last]
        if site.callee is not None:
            info = graph.functions.get(site.callee)
            if info is not None and info.qualname in _BLOCKING_PROJECT_TAILS:
                return _BLOCKING_PROJECT_TAILS[info.qualname]
        if site.chain is not None:
            last = site.chain.split(".")[-1]
            if site.callee is None and last in _BLOCKING_PATH_IO:
                return _BLOCKING_PATH_IO[last]
            if site.callee is None and site.external is None and (
                last in _BLOCKING_LAST_SEGMENTS
            ):
                return _BLOCKING_LAST_SEGMENTS[last]
        return None
