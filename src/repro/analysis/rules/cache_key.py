"""cache-key — keying digests vs. the field sets they must cover.

Two persistent artefacts key on dataclass digests, and each triple must
move together or stale entries are silently served:

Flow cache (``repro.cad.flow``):

1. every ``ArchParams`` field must be consumed by ``arch_digest`` (a
   field the digest ignores means two different architectures share a
   cache entry);
2. an ``ArchParams`` field-set change must come with a
   ``FLOW_CACHE_VERSION`` bump (old entries were keyed under different
   semantics);
3. the committed manifest (:mod:`repro.analysis.manifest`) must match
   the live ``(field set, version)`` pair, so (2) is checkable across
   commits.

Result store (``repro.store``): the same three invariants over
``GuardbandConfig`` / ``store_digest`` / ``STORE_SCHEMA_VERSION``,
tracked by the committed store manifest — a config field the digest
ignores would serve a converged guardband computed under different
Algorithm 1 semantics.

Wire schema (``repro.service.wire``): every wire kind's field set is
recorded against ``WIRE_SCHEMA_VERSION`` in the committed wire
manifest.  A field added to (or removed from) any wire class without a
version bump means peers speaking the old schema exchange envelopes
that decode to different semantics — or fail with an "unknown field"
error instead of the actionable version diagnostic.

This is a cross-module rule: it runs in :meth:`finalize` over the parsed
project, locating the classes, digest functions and version constants
wherever they are defined.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import ModuleInfo, Project, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.manifest import (
    ArchManifest,
    StoreManifest,
    WireManifest,
    dataclass_field_names,
)


def _find_assignment(
    project: Project, name: str
) -> Optional[Tuple[ModuleInfo, ast.stmt, int]]:
    """Top-level ``name = <int>`` assignment anywhere in the project."""
    for info in project.modules:
        for stmt in info.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, int
                    ):
                        return info, stmt, value.value
    return None


def _find_function(
    project: Project, name: str
) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
    for info in project.modules:
        for stmt in info.tree.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return info, stmt
    return None


def _wire_kind_names(project: Project) -> Tuple[Optional[ModuleInfo], List[str]]:
    """Wire kind names from the ``_DECODERS`` dict literal in wire.py.

    The decoder table's string keys *are* the envelope kinds (and each
    names a dataclass of the same name), so the rule never has to import
    the service package to know what the wire schema covers.
    """
    for info in project.modules:
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value: Optional[ast.expr] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            named = any(
                isinstance(t, ast.Name) and t.id == "_DECODERS" for t in targets
            )
            if not named or not isinstance(value, ast.Dict):
                continue
            kinds = [
                key.value
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
            if kinds:
                return info, sorted(kinds)
    return None, []


def _digest_consumption(func: ast.FunctionDef) -> Tuple[bool, Set[str]]:
    """(iterates dataclasses.fields(), explicitly-read field names).

    A digest built by iterating ``fields(arch)`` consumes every field by
    construction; one that reads ``arch.<name>`` attributes is checked
    field-by-field.
    """
    iterates_fields = False
    explicit: Set[str] = set()
    arg_names = {arg.arg for arg in func.args.args}
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else getattr(callee, "attr", "")
            )
            if callee_name == "fields" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id in arg_names:
                    iterates_fields = True
        elif isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in arg_names:
                explicit.add(node.attr)
    return iterates_fields, explicit


class CacheKeyRule(Rule):
    rule_id = "cache-key"
    severity = Severity.ERROR
    description = (
        "keying digests must consume every field of the dataclass they "
        "key on (arch_digest/ArchParams, store_digest/GuardbandConfig), "
        "and field-set changes must bump the paired version constant "
        "(FLOW_CACHE_VERSION / STORE_SCHEMA_VERSION / "
        "WIRE_SCHEMA_VERSION, tracked via the committed manifests)"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        findings = list(self._check_flow_cache(project))
        findings.extend(self._check_store(project))
        findings.extend(self._check_wire(project))
        findings.extend(self._check_wire_encoder(project))
        return findings

    def _check_flow_cache(self, project: Project) -> Iterable[Finding]:
        located = project.find_class("ArchParams")
        version = _find_assignment(project, "FLOW_CACHE_VERSION")
        digest = _find_function(project, "arch_digest")
        if located is None or version is None or digest is None:
            # Not a project with a flow cache (e.g. rule fixtures) —
            # nothing to check.
            return ()
        params_module, params_cls = located
        version_module, version_stmt, version_value = version
        digest_module, digest_func = digest
        findings: List[Finding] = []

        field_names = set(dataclass_field_names(params_cls.body))
        iterates, explicit = _digest_consumption(digest_func)
        if not iterates:
            missing = sorted(field_names - explicit)
            for name in missing:
                findings.append(
                    digest_module.finding(
                        self,
                        digest_func,
                        f"arch_digest does not consume ArchParams.{name}; "
                        "two architectures differing only in that field "
                        "would share a flow-cache entry",
                    )
                )

        manifest = ArchManifest.load(project.manifest_path)
        if manifest is None:
            findings.append(
                params_module.finding(
                    self,
                    params_cls,
                    "no ArchParams manifest recorded; run `python -m "
                    "repro.analysis --update-manifest` and commit "
                    f"{project.manifest_path.name}",
                    severity=Severity.WARNING,
                )
            )
            return findings

        recorded = set(manifest.fields)
        if field_names != recorded:
            added = sorted(field_names - recorded)
            removed = sorted(recorded - field_names)
            change = "; ".join(
                part
                for part in (
                    f"added: {', '.join(added)}" if added else "",
                    f"removed: {', '.join(removed)}" if removed else "",
                )
                if part
            )
            if version_value == manifest.flow_cache_version:
                findings.append(
                    params_module.finding(
                        self,
                        params_cls,
                        f"ArchParams field set changed ({change}) without a "
                        "FLOW_CACHE_VERSION bump; stale cache entries would "
                        "be served under the old key semantics — bump the "
                        "version, then refresh the manifest with "
                        "--update-manifest",
                    )
                )
            else:
                findings.append(
                    params_module.finding(
                        self,
                        params_cls,
                        f"ArchParams field set changed ({change}) and "
                        "FLOW_CACHE_VERSION was bumped; refresh the "
                        "manifest with --update-manifest to record the new "
                        "reviewed state",
                    )
                )
        elif version_value != manifest.flow_cache_version:
            findings.append(
                version_module.finding(
                    self,
                    version_stmt,
                    f"FLOW_CACHE_VERSION is {version_value} but the "
                    f"manifest records {manifest.flow_cache_version}; "
                    "refresh the manifest with --update-manifest",
                    severity=Severity.WARNING,
                )
            )
        return findings

    def _check_store(self, project: Project) -> Iterable[Finding]:
        located = project.find_class("GuardbandConfig")
        version = _find_assignment(project, "STORE_SCHEMA_VERSION")
        digest = _find_function(project, "store_digest")
        if located is None or version is None or digest is None:
            # No result store in this project (e.g. rule fixtures).
            return ()
        config_module, config_cls = located
        version_module, version_stmt, version_value = version
        digest_module, digest_func = digest
        findings: List[Finding] = []

        field_names = set(dataclass_field_names(config_cls.body))
        iterates, explicit = _digest_consumption(digest_func)
        if not iterates:
            for name in sorted(field_names - explicit):
                findings.append(
                    digest_module.finding(
                        self,
                        digest_func,
                        f"store_digest does not consume GuardbandConfig."
                        f"{name}; two configs differing only in that field "
                        "would share a stored guardband result",
                    )
                )

        manifest = StoreManifest.load(project.store_manifest_path)
        if manifest is None:
            findings.append(
                config_module.finding(
                    self,
                    config_cls,
                    "no GuardbandConfig store manifest recorded; run "
                    "`python -m repro.analysis --update-manifest` and "
                    f"commit {project.store_manifest_path.name}",
                    severity=Severity.WARNING,
                )
            )
            return findings

        recorded = set(manifest.fields)
        if field_names != recorded:
            added = sorted(field_names - recorded)
            removed = sorted(recorded - field_names)
            change = "; ".join(
                part
                for part in (
                    f"added: {', '.join(added)}" if added else "",
                    f"removed: {', '.join(removed)}" if removed else "",
                )
                if part
            )
            if version_value == manifest.store_schema_version:
                findings.append(
                    config_module.finding(
                        self,
                        config_cls,
                        f"GuardbandConfig field set changed ({change}) "
                        "without a STORE_SCHEMA_VERSION bump; stored "
                        "guardband results computed under the old config "
                        "semantics would be served — bump the version, then "
                        "refresh the manifest with --update-manifest",
                    )
                )
            else:
                findings.append(
                    config_module.finding(
                        self,
                        config_cls,
                        f"GuardbandConfig field set changed ({change}) and "
                        "STORE_SCHEMA_VERSION was bumped; refresh the "
                        "manifest with --update-manifest to record the new "
                        "reviewed state",
                    )
                )
        elif version_value != manifest.store_schema_version:
            findings.append(
                version_module.finding(
                    self,
                    version_stmt,
                    f"STORE_SCHEMA_VERSION is {version_value} but the "
                    f"manifest records {manifest.store_schema_version}; "
                    "refresh the manifest with --update-manifest",
                    severity=Severity.WARNING,
                )
            )
        return findings


    def _check_wire(self, project: Project) -> Iterable[Finding]:
        version = _find_assignment(project, "WIRE_SCHEMA_VERSION")
        wire_module, kinds = _wire_kind_names(project)
        if version is None or wire_module is None:
            # No wire schema in this project (e.g. rule fixtures).
            return ()
        version_module, version_stmt, version_value = version
        findings: List[Finding] = []

        live: dict = {}
        for kind in kinds:
            located = project.find_class(kind)
            if located is None:
                findings.append(
                    wire_module.finding(
                        self,
                        wire_module.tree,
                        f"wire kind {kind!r} names no class in the project; "
                        "the decoder table and the dataclasses it targets "
                        "have drifted apart",
                    )
                )
                continue
            _, cls = located
            live[kind] = set(dataclass_field_names(cls.body))

        manifest = WireManifest.load(project.wire_manifest_path)
        if manifest is None:
            findings.append(
                version_module.finding(
                    self,
                    version_stmt,
                    "no wire manifest recorded; run `python -m "
                    "repro.analysis --update-manifest` and commit "
                    f"{project.wire_manifest_path.name}",
                    severity=Severity.WARNING,
                )
            )
            return findings

        recorded = manifest.fields_by_kind()
        drift: List[str] = []
        for kind in sorted(set(live) | set(recorded)):
            if kind not in recorded:
                drift.append(f"{kind}: new kind")
                continue
            if kind not in live:
                drift.append(f"{kind}: kind removed")
                continue
            added = sorted(live[kind] - recorded[kind])
            removed = sorted(recorded[kind] - live[kind])
            if added:
                drift.append(f"{kind} added: {', '.join(added)}")
            if removed:
                drift.append(f"{kind} removed: {', '.join(removed)}")
        if drift:
            change = "; ".join(drift)
            if version_value == manifest.wire_schema_version:
                findings.append(
                    wire_module.finding(
                        self,
                        wire_module.tree,
                        f"wire schema changed ({change}) without a "
                        "WIRE_SCHEMA_VERSION bump; peers on the old schema "
                        "would accept envelopes that decode to different "
                        "semantics — bump the version, then refresh the "
                        "manifest with --update-manifest",
                    )
                )
            else:
                findings.append(
                    wire_module.finding(
                        self,
                        wire_module.tree,
                        f"wire schema changed ({change}) and "
                        "WIRE_SCHEMA_VERSION was bumped; refresh the "
                        "manifest with --update-manifest to record the new "
                        "reviewed state",
                    )
                )
        elif version_value != manifest.wire_schema_version:
            findings.append(
                version_module.finding(
                    self,
                    version_stmt,
                    f"WIRE_SCHEMA_VERSION is {version_value} but the "
                    f"manifest records {manifest.wire_schema_version}; "
                    "refresh the manifest with --update-manifest",
                    severity=Severity.WARNING,
                )
            )
        return findings

    def _check_wire_encoder(self, project: Project) -> Iterable[Finding]:
        """Hand-listed wire encoders must consume every dataclass field.

        Most encoders iterate ``fields(obj)`` and pick up new fields for
        free, but ``_encode_experiment`` enumerates ``ExperimentSpec``
        attributes by hand (benchmarks need per-entry envelope
        dispatch).  A spec field the encoder skips is silently dropped
        on the wire — the receiver runs a *different experiment* than
        the submitter declared — and the manifest check alone cannot see
        it, because the field set and version still agree.
        """
        located = project.find_class("ExperimentSpec")
        encoder = _find_function(project, "_encode_experiment")
        if located is None or encoder is None:
            # No sweep service in this project (e.g. rule fixtures).
            return ()
        _, spec_cls = located
        encoder_module, encoder_func = encoder
        findings: List[Finding] = []

        field_names = set(dataclass_field_names(spec_cls.body))
        iterates, explicit = _digest_consumption(encoder_func)
        if not iterates:
            for name in sorted(field_names - explicit):
                findings.append(
                    encoder_module.finding(
                        self,
                        encoder_func,
                        f"_encode_experiment does not consume ExperimentSpec."
                        f"{name}; the field is silently dropped from the wire "
                        "envelope, so the receiver reconstructs a spec with "
                        "the default value instead of the submitted one",
                    )
                )
        return findings


def current_wire_manifest(project: Project) -> Optional[WireManifest]:
    """The live (per-kind field sets, WIRE_SCHEMA_VERSION) state."""
    version = _find_assignment(project, "WIRE_SCHEMA_VERSION")
    wire_module, kinds = _wire_kind_names(project)
    if version is None or wire_module is None:
        return None
    pairs = []
    for kind in kinds:
        located = project.find_class(kind)
        if located is None:
            continue
        _, cls = located
        pairs.append((kind, tuple(sorted(dataclass_field_names(cls.body)))))
    return WireManifest(kinds=tuple(pairs), wire_schema_version=version[2])


def current_store_manifest(project: Project) -> Optional[StoreManifest]:
    """The live (GuardbandConfig fields, schema version) pair."""
    located = project.find_class("GuardbandConfig")
    version = _find_assignment(project, "STORE_SCHEMA_VERSION")
    if located is None or version is None:
        return None
    _, config_cls = located
    return StoreManifest(
        fields=tuple(sorted(dataclass_field_names(config_cls.body))),
        store_schema_version=version[2],
    )


def current_manifest(project: Project) -> Optional[ArchManifest]:
    """The live (fields, version) pair, for ``--update-manifest``."""
    located = project.find_class("ArchParams")
    version = _find_assignment(project, "FLOW_CACHE_VERSION")
    if located is None or version is None:
        return None
    _, params_cls = located
    return ArchManifest(
        fields=tuple(sorted(dataclass_field_names(params_cls.body))),
        flow_cache_version=version[2],
    )
