"""cache-key — arch_digest / FLOW_CACHE_VERSION / ArchParams coherence.

Three things must move together or the flow cache silently serves stale
place-and-route results:

1. every ``ArchParams`` field must be consumed by ``arch_digest`` (a
   field the digest ignores means two different architectures share a
   cache entry);
2. an ``ArchParams`` field-set change must come with a
   ``FLOW_CACHE_VERSION`` bump (old entries were keyed under different
   semantics);
3. the committed manifest (:mod:`repro.analysis.manifest`) must match
   the live ``(field set, version)`` pair, so (2) is checkable across
   commits.

This is a cross-module rule: it runs in :meth:`finalize` over the parsed
project, locating ``ArchParams``, ``arch_digest`` and
``FLOW_CACHE_VERSION`` wherever they are defined.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import ModuleInfo, Project, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.manifest import ArchManifest, dataclass_field_names


def _find_assignment(
    project: Project, name: str
) -> Optional[Tuple[ModuleInfo, ast.stmt, int]]:
    """Top-level ``name = <int>`` assignment anywhere in the project."""
    for info in project.modules:
        for stmt in info.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, int
                    ):
                        return info, stmt, value.value
    return None


def _find_function(
    project: Project, name: str
) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
    for info in project.modules:
        for stmt in info.tree.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return info, stmt
    return None


def _digest_consumption(func: ast.FunctionDef) -> Tuple[bool, Set[str]]:
    """(iterates dataclasses.fields(), explicitly-read field names).

    A digest built by iterating ``fields(arch)`` consumes every field by
    construction; one that reads ``arch.<name>`` attributes is checked
    field-by-field.
    """
    iterates_fields = False
    explicit: Set[str] = set()
    arg_names = {arg.arg for arg in func.args.args}
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else getattr(callee, "attr", "")
            )
            if callee_name == "fields" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id in arg_names:
                    iterates_fields = True
        elif isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in arg_names:
                explicit.add(node.attr)
    return iterates_fields, explicit


class CacheKeyRule(Rule):
    rule_id = "cache-key"
    severity = Severity.ERROR
    description = (
        "arch_digest must consume every ArchParams field, and ArchParams "
        "field-set changes must bump FLOW_CACHE_VERSION (tracked via the "
        "committed manifest)"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        located = project.find_class("ArchParams")
        version = _find_assignment(project, "FLOW_CACHE_VERSION")
        digest = _find_function(project, "arch_digest")
        if located is None or version is None or digest is None:
            # Not a project with a flow cache (e.g. rule fixtures) —
            # nothing to check.
            return ()
        params_module, params_cls = located
        version_module, version_stmt, version_value = version
        digest_module, digest_func = digest
        findings: List[Finding] = []

        field_names = set(dataclass_field_names(params_cls.body))
        iterates, explicit = _digest_consumption(digest_func)
        if not iterates:
            missing = sorted(field_names - explicit)
            for name in missing:
                findings.append(
                    digest_module.finding(
                        self,
                        digest_func,
                        f"arch_digest does not consume ArchParams.{name}; "
                        "two architectures differing only in that field "
                        "would share a flow-cache entry",
                    )
                )

        manifest = ArchManifest.load(project.manifest_path)
        if manifest is None:
            findings.append(
                params_module.finding(
                    self,
                    params_cls,
                    "no ArchParams manifest recorded; run `python -m "
                    "repro.analysis --update-manifest` and commit "
                    f"{project.manifest_path.name}",
                    severity=Severity.WARNING,
                )
            )
            return findings

        recorded = set(manifest.fields)
        if field_names != recorded:
            added = sorted(field_names - recorded)
            removed = sorted(recorded - field_names)
            change = "; ".join(
                part
                for part in (
                    f"added: {', '.join(added)}" if added else "",
                    f"removed: {', '.join(removed)}" if removed else "",
                )
                if part
            )
            if version_value == manifest.flow_cache_version:
                findings.append(
                    params_module.finding(
                        self,
                        params_cls,
                        f"ArchParams field set changed ({change}) without a "
                        "FLOW_CACHE_VERSION bump; stale cache entries would "
                        "be served under the old key semantics — bump the "
                        "version, then refresh the manifest with "
                        "--update-manifest",
                    )
                )
            else:
                findings.append(
                    params_module.finding(
                        self,
                        params_cls,
                        f"ArchParams field set changed ({change}) and "
                        "FLOW_CACHE_VERSION was bumped; refresh the "
                        "manifest with --update-manifest to record the new "
                        "reviewed state",
                    )
                )
        elif version_value != manifest.flow_cache_version:
            findings.append(
                version_module.finding(
                    self,
                    version_stmt,
                    f"FLOW_CACHE_VERSION is {version_value} but the "
                    f"manifest records {manifest.flow_cache_version}; "
                    "refresh the manifest with --update-manifest",
                    severity=Severity.WARNING,
                )
            )
        return findings


def current_manifest(project: Project) -> Optional[ArchManifest]:
    """The live (fields, version) pair, for ``--update-manifest``."""
    located = project.find_class("ArchParams")
    version = _find_assignment(project, "FLOW_CACHE_VERSION")
    if located is None or version is None:
        return None
    _, params_cls = located
    return ArchManifest(
        fields=tuple(sorted(dataclass_field_names(params_cls.body))),
        flow_cache_version=version[2],
    )
