"""determinism — the P&R flow and everything feeding it must be seeded.

``run_flow`` is cached and retried per ``(netlist, arch, seed)``; the
sweep engine's bounded-retry and bit-identity guarantees (and the flow
cache itself) are only sound if a job recomputes identically from its
inputs.  Inside the deterministic core (``cad/``, ``core/``, ``runner/``,
``spice/``, ``netlists/``) this rule flags every source of hidden
nondeterminism:

- ``np.random.default_rng()`` or ``np.random.RandomState()`` with no
  seed (or an explicit ``None``) — both are fine when seeded;
- legacy global-state numpy randomness (``np.random.normal`` etc.);
- the stdlib ``random`` module (globally seeded, process-wide state).

Clock reads are policed *repo-wide*, not just in the core: every clock —
wall (``time.time``, ``datetime.now``/``utcnow``) **and** monotonic
(``time.perf_counter``, ``time.monotonic``, and their ``_ns`` variants)
— must be read through :mod:`repro.observe.clock`, so timing stays an
observability concern that one grep can audit.  Only ``observe/``
(the clock's home) and the deprecated ``profiling.py`` shim are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

DETERMINISTIC_PREFIXES: Tuple[str, ...] = (
    "cad/",
    "core/",
    "runner/",
    "spice/",
    "netlists/",
)

CLOCK_EXEMPT_PREFIXES: Tuple[str, ...] = ("observe/",)
"""Modules allowed to read clocks directly: the observability subsystem
(everything else routes through :mod:`repro.observe.clock`)."""

CLOCK_EXEMPT_MODULES: Tuple[str, ...] = ("profiling.py",)
"""The deprecated ``repro.profiling`` shim keeps its historical exemption."""

_SEEDED_NP_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence"})
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
    }
)


def _dotted(node: ast.AST) -> Optional[str]:
    """`a.b.c` attribute chain as a string, or None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DeterminismRule(Rule):
    rule_id = "determinism"
    severity = Severity.ERROR
    description = (
        "unseeded RNGs or stdlib random inside the deterministic flow core "
        "(cad/, core/, runner/, spice/, netlists/), and direct clock reads "
        "anywhere outside repro.observe"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        in_core = module.rel.startswith(DETERMINISTIC_PREFIXES)
        clock_exempt = (
            module.rel.startswith(CLOCK_EXEMPT_PREFIXES)
            or module.rel in CLOCK_EXEMPT_MODULES
        )
        if not in_core and clock_exempt:
            return ()
        findings: List[Finding] = []
        uses_stdlib_random = False
        if in_core:
            for node in module.tree.body:
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "random":
                            uses_stdlib_random = True
                elif isinstance(node, ast.ImportFrom) and node.module == "random":
                    findings.append(
                        module.finding(
                            self,
                            node,
                            "stdlib `random` imports share mutable global state "
                            "across the process; use a seeded "
                            "np.random.default_rng(seed) instead",
                        )
                    )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            if in_core:
                findings.extend(
                    self._check_rng_call(module, node, chain, uses_stdlib_random)
                )
            if not clock_exempt:
                findings.extend(self._check_clock_call(module, node, chain))
        return findings

    def _check_clock_call(
        self, module: ModuleInfo, node: ast.Call, chain: str
    ) -> Iterable[Finding]:
        tail = chain.split(".")
        if chain in _CLOCK_CALLS or (
            len(tail) >= 2 and ".".join(tail[-2:]) in _CLOCK_CALLS
        ):
            yield module.finding(
                self,
                node,
                f"direct wall-clock/monotonic read `{chain}`; all clock "
                "access goes through repro.observe.clock (wall()/monotonic()) "
                "so timing stays an auditable observability concern",
            )

    def _check_rng_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        chain: str,
        uses_stdlib_random: bool,
    ) -> Iterable[Finding]:
        tail = chain.split(".")
        # Seedable constructors: np.random.default_rng() and the legacy
        # np.random.RandomState() are fine *with* a seed, nondeterministic
        # without one (or with an explicit None).
        if tail[-1] in ("default_rng", "RandomState"):
            ctor = tail[-1]
            if not node.args and not node.keywords:
                yield module.finding(
                    self,
                    node,
                    f"np.random.{ctor}() without a seed is "
                    "nondeterministic; thread an explicit seed through",
                )
            elif node.args and (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                yield module.finding(
                    self,
                    node,
                    f"np.random.{ctor}(None) seeds from the OS; require "
                    "an integer seed",
                )
            return
        # Legacy numpy global-state API: np.random.normal, np.random.seed...
        if len(tail) >= 3 and tail[-3] in {"np", "numpy"} and tail[-2] == "random":
            if tail[-1] not in _SEEDED_NP_RANDOM:
                yield module.finding(
                    self,
                    node,
                    f"legacy global-state numpy randomness "
                    f"`{chain}`; use a seeded np.random.default_rng(seed)",
                )
            return
        # stdlib random module calls (only when `import random` is stdlib's).
        if uses_stdlib_random and len(tail) == 2 and tail[0] == "random":
            yield module.finding(
                self,
                node,
                f"`{chain}` uses the process-wide stdlib random state; "
                "use a seeded np.random.default_rng(seed)",
            )
