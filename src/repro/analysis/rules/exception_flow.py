"""``exception-flow`` — service-layer exceptions terminate in a wire
conversion, never a bare re-raise to the socket.

The service contract (DESIGN.md §13): client-visible failures are
*structured* — decode errors become ``WireError`` -> HTTP 400, worker
crashes become ``JobFailure`` records -> terminal job state.  A raw
exception escaping a connection handler tears down the connection
mid-response; one escaping the dispatch path wedges the job in
``running`` forever.  Scoped to ``service/`` modules, this rule checks
four structural invariants:

- a **bare ``raise``** inside a broad handler (``except Exception``,
  ``except BaseException``, bare ``except``) re-raises the very
  exception the handler promised to terminate — error.  Narrow
  handlers (``except asyncio.CancelledError: raise``) stay legal.
- every **``from_wire(...)``** call is guarded by a handler naming
  ``WireError`` (or a broad handler): malformed client input must
  become a 400, not a connection reset.
- every **``run_in_executor(...)`` dispatch** is inside a ``try`` with
  a broad handler: worker-pool failures must be converted (to a
  ``JobFailure`` or a store-miss fallback), not propagated raw.
- the **connection handler passed to ``start_server``** contains a
  broad handler somewhere in its body, so no request can leak a
  traceback to the socket.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

_BROAD = {"Exception", "BaseException"}


def _type_last_segment(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _handler_types(handler: ast.ExceptHandler) -> Set[str]:
    if handler.type is None:
        return {"<bare>"}
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: Set[str] = set()
    for node in types:
        name = _type_last_segment(node)
        if name:
            names.add(name)
    return names


def _is_broad(names: Set[str]) -> bool:
    return bool(names & _BROAD) or "<bare>" in names


def _call_tail(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _iter_stmt_expr_nodes(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Expression nodes of ``stmt`` itself, not of its nested blocks."""
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        values = value if isinstance(value, list) else [value]
        for item in values:
            if isinstance(item, ast.AST):
                yield from _iter_nodes_no_defs(item)


def _iter_nodes_no_defs(node: ast.AST) -> Iterable[ast.AST]:
    """Walk ``node`` without entering nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                        ast.Lambda)
            ):
                continue
            stack.append(child)


class ExceptionFlowRule(Rule):
    rule_id = "exception-flow"
    severity = Severity.ERROR
    description = (
        "service-layer exception paths must terminate in a WireError/"
        "JobFailure conversion: no bare raise in broad handlers, "
        "from_wire guarded by WireError, run_in_executor guarded "
        "broadly, connection handlers fully guarded"
    )
    _skip_from_wire = False

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.rel.startswith("service/"):
            return ()
        findings: List[Finding] = []
        functions = _collect_functions(module.tree)
        # The wire codec itself recurses through from_wire while decoding
        # nested documents; the conversion contract binds its *consumers*.
        self._skip_from_wire = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "from_wire"
            for stmt in module.tree.body
        )
        for fnode in functions.values():
            self._check_function(module, fnode, findings)
        self._check_server_handlers(module, functions, findings)
        return findings

    # -- per-function structural walk -------------------------------

    def _check_function(
        self,
        module: ModuleInfo,
        fnode: ast.stmt,
        findings: List[Finding],
    ) -> None:
        self._walk(module, fnode.body, active=[], findings=findings)

    def _walk(
        self,
        module: ModuleInfo,
        stmts: Sequence[ast.stmt],
        active: List[Set[str]],
        findings: List[Finding],
    ) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Try):
                handler_sets = [_handler_types(h) for h in stmt.handlers]
                merged: Set[str] = set()
                for names in handler_sets:
                    merged |= names
                self._walk(module, stmt.body, active + [merged], findings)
                for handler, names in zip(stmt.handlers, handler_sets):
                    if _is_broad(names):
                        self._check_broad_handler(module, handler, findings)
                    self._walk(module, handler.body, active, findings)
                self._walk(module, stmt.orelse, active, findings)
                self._walk(module, stmt.finalbody, active, findings)
                continue
            self._check_calls_in_stmt(module, stmt, active, findings)
            for child_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
            ):
                if isinstance(child_body, list):
                    self._walk(module, child_body, active, findings)

    def _check_broad_handler(
        self,
        module: ModuleInfo,
        handler: ast.ExceptHandler,
        findings: List[Finding],
    ) -> None:
        for node in _iter_nodes_no_defs(handler):
            if isinstance(node, ast.Raise) and node.exc is None:
                findings.append(
                    module.finding(
                        self,
                        node,
                        "bare `raise` inside a broad exception handler "
                        "re-raises the exception it promised to terminate; "
                        "convert it (WireError / JobFailure / structured "
                        "500) or narrow the handler",
                    )
                )

    def _check_calls_in_stmt(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        active: List[Set[str]],
        findings: List[Finding],
    ) -> None:
        guarded_names: Set[str] = set()
        for names in active:
            guarded_names |= names
        broad_guarded = any(_is_broad(names) for names in active)
        for node in _iter_stmt_expr_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            if tail == "from_wire" and not self._skip_from_wire:
                if not broad_guarded and "WireError" not in guarded_names:
                    findings.append(
                        module.finding(
                            self,
                            node,
                            "`from_wire(...)` outside a `try` guarding "
                            "`WireError`: malformed client input must "
                            "become a structured 400, not a connection "
                            "reset",
                        )
                    )
            elif tail == "run_in_executor":
                if not broad_guarded:
                    findings.append(
                        module.finding(
                            self,
                            node,
                            "`run_in_executor(...)` dispatch outside a "
                            "`try` with a broad handler: worker-pool "
                            "failures must be converted to a JobFailure "
                            "or fallback, not propagated raw",
                        )
                    )

    # -- start_server handler coverage ------------------------------

    def _check_server_handlers(
        self,
        module: ModuleInfo,
        functions: dict,
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_tail(node) != "start_server" or not node.args:
                continue
            handler_fn = _resolve_local_ref(node.args[0], functions)
            if handler_fn is None:
                continue
            if not _has_broad_handler(handler_fn):
                findings.append(
                    module.finding(
                        self,
                        node,
                        f"connection handler `{handler_fn.name}` passed to "
                        "start_server has no broad exception handler: an "
                        "unguarded failure leaks a raw traceback to the "
                        "socket",
                    )
                )
        return None


def _collect_functions(tree: ast.Module) -> dict:
    """Every function in the module keyed by name (methods included)."""
    functions: dict = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(stmt.name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.setdefault(item.name, item)
    return functions


def _resolve_local_ref(node: ast.expr, functions: dict) -> Optional[ast.stmt]:
    if isinstance(node, ast.Attribute):
        return functions.get(node.attr)
    if isinstance(node, ast.Name):
        return functions.get(node.id)
    return None


def _has_broad_handler(fnode: ast.stmt) -> bool:
    for node in _iter_nodes_no_defs(fnode):
        if isinstance(node, ast.ExceptHandler) and _is_broad(
            _handler_types(node)
        ):
            return True
    return False
