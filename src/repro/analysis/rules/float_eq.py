"""float-equality — exact ``==``/``!=`` on physical quantities.

Delays, frequencies, powers and temperatures are computed through chains
of floating-point physics; comparing them exactly encodes an assumption
(bit-identical recomputation) that holds only on the carefully guarded
fast paths.  In the timing/power/thermal modules this rule flags:

- ``==`` / ``!=`` against a float literal (``if gain == 0.1``);
- ``==`` / ``!=`` between operands whose names look like physical
  quantities (``t_ambient``, ``delay_ns``, ``power_w``...), excluding
  identifier-ish names (``*_key``, ``*_id``, ``*_name``...).

Exact comparison is sometimes *right* — grid-coordinate matching where
values round-trip unchanged from the spec — which is what inline
``# repro-lint: ignore[float-equality] <why>`` is for.  The rule is a
WARNING: it reports but never gates, so judgment stays with the author.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

NUMERIC_PREFIXES = (
    "cad/",
    "core/",
    "thermal/",
    "power/",
    "coffe/",
    "spice/",
    "technology/",
    "runner/",
)

_FLOATY = re.compile(
    r"(^|_)(t|temp|temperature|ambient|corner|delay|slack|power|leakage|"
    r"freq|frequency|hz|gain|celsius|kelvin|volt|vdd|watt|amps|seconds|"
    r"resistance|capacitance|energy)(s?)(_|$)"
)
_EXEMPT = re.compile(r"(^|_)(key|id|name|type|kind|count|index|shape|len)(s?)(_|$)")


def _identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _looks_physical(node: ast.AST) -> bool:
    name = _identifier(node)
    if name is None:
        return False
    lowered = name.lower()
    return bool(_FLOATY.search(lowered)) and not _EXEMPT.search(lowered)


class FloatEqualityRule(Rule):
    rule_id = "float-equality"
    severity = Severity.WARNING
    description = (
        "exact ==/!= on floats in timing/power/thermal code; compare with "
        "a tolerance (math.isclose / np.isclose) or suppress with a reason"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.rel.startswith(NUMERIC_PREFIXES):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = next(
                    (x for x in (left, right) if _is_float_literal(x)), None
                )
                if literal is not None:
                    findings.append(
                        module.finding(
                            self,
                            node,
                            "exact comparison against a float literal; use "
                            "math.isclose (or restructure to avoid the "
                            "comparison)",
                        )
                    )
                elif _looks_physical(left) and _looks_physical(right):
                    findings.append(
                        module.finding(
                            self,
                            node,
                            "exact ==/!= between physical quantities "
                            f"({_identifier(left)}, {_identifier(right)}); "
                            "use a tolerance, or suppress with a reason if "
                            "the values round-trip exactly",
                        )
                    )
        return findings
