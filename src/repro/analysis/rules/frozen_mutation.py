"""frozen-mutation — ``object.__setattr__`` escapes on frozen dataclasses.

Frozen dataclasses (``ArchParams``, ``SweepJob``, ``GuardbandConfig``...)
are frozen *because* they are hashed, cached, and shipped across process
boundaries; mutating one through ``object.__setattr__`` after
construction invalidates every key it participates in.  The only
legitimate uses are ``__post_init__`` (the dataclass idiom for derived
fields) and ``__setstate__`` (unpickle-time reconstruction) — anywhere
else is a mutation of a value the rest of the system assumes immutable.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

ALLOWED_METHODS = frozenset({"__post_init__", "__setstate__"})


def _is_object_setattr(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
    )


class FrozenMutationRule(Rule):
    rule_id = "frozen-mutation"
    severity = Severity.ERROR
    description = (
        "object.__setattr__ outside __post_init__/__setstate__ mutates "
        "values the cache and hash layers assume immutable"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        self._walk(module, module.tree, enclosing=None, findings=findings)
        return findings

    def _walk(
        self,
        module: ModuleInfo,
        node: ast.AST,
        enclosing: Optional[str],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(module, child, child.name, findings)
                continue
            if isinstance(child, ast.Call) and _is_object_setattr(child):
                if enclosing not in ALLOWED_METHODS:
                    where = (
                        f"in {enclosing}()" if enclosing else "at module level"
                    )
                    findings.append(
                        module.finding(
                            self,
                            child,
                            f"object.__setattr__ {where}; frozen instances "
                            "may only self-initialize in __post_init__ or "
                            "__setstate__ — construct a new value with "
                            "dataclasses.replace instead",
                        )
                    )
            self._walk(module, child, enclosing, findings)
