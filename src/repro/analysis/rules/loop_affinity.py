"""``loop-affinity`` — cross-thread loop access goes through
``call_soon_threadsafe``.

``asyncio`` event loops are not thread-safe: ``loop.call_soon``,
``call_later``, ``call_at`` and ``create_task`` may only be invoked
from the loop's own thread.  The one sanctioned bridge for foreign
threads — engine pool watchers, ``ObserveBridge.write`` called from a
worker completing a span — is ``loop.call_soon_threadsafe`` /
``asyncio.run_coroutine_threadsafe``.

Using the call graph's async-reachability set as the "runs on the loop
thread" oracle, this rule flags any unsafe loop method invoked from a
function that is neither a coroutine nor loop-reachable: such code can
(and in the service layer, does) run on arbitrary threads, where a
plain ``call_soon`` corrupts the loop's internal queues.  Receivers
count as event loops when their inferred type is
``asyncio.AbstractEventLoop`` or they are named ``loop`` / ``_loop``.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.callgraph import LOOP_TYPE
from repro.analysis.engine import Project, Rule
from repro.analysis.findings import Finding, Severity

_UNSAFE_LOOP_METHODS = {"call_soon", "call_later", "call_at", "create_task"}


class LoopAffinityRule(Rule):
    rule_id = "loop-affinity"
    severity = Severity.ERROR
    description = (
        "loop.call_soon/call_later/call_at/create_task from "
        "non-coroutine code must use call_soon_threadsafe instead "
        "(the ObserveBridge contract)"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        graph = project.call_graph()
        findings: List[Finding] = []
        for site in graph.calls:
            if site.external is None:
                continue
            prefix, _, method = site.external.rpartition(".")
            if prefix != LOOP_TYPE or method not in _UNSAFE_LOOP_METHODS:
                continue
            if site.caller in graph.loop_reachable:
                continue
            module = project.module(site.module)
            if module is None:
                continue
            caller = graph.short(site.caller)
            findings.append(
                module.finding(
                    self,
                    site.node,
                    f"`{site.chain}` in `{caller}`, which is not "
                    "loop-reachable and may run on a foreign thread: "
                    f"loop.{method} is not thread-safe — use "
                    "loop.call_soon_threadsafe(...) or "
                    "asyncio.run_coroutine_threadsafe(...)",
                )
            )
        return findings
