"""pickle-boundary — jobs crossing the process pool must stay picklable.

``run_sweep`` ships :class:`~repro.runner.spec.SweepJob` values (expanded
from :class:`~repro.runner.spec.ExperimentSpec`) to ``ProcessPoolExecutor``
workers.  A field that holds a lambda, an open handle, a generator, or an
instance of a locally-defined class pickles fine in unit tests (where
``workers=1`` skips the pool) and then breaks the first parallel sweep.
This rule patrols the modules that define the boundary types:

- field *annotations* naming unpicklable types (``Callable``, ``IO``,
  ``TextIO``, ``BinaryIO``, ``Generator``, ``Iterator``);
- ``lambda`` field *defaults* (the lambda becomes the instance attribute);
- classes defined inside functions in a boundary module (instances of a
  local class can never be pickled by reference).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

BOUNDARY_CLASSES = frozenset({"SweepJob", "ExperimentSpec"})
"""Types whose instances cross the ProcessPoolExecutor boundary."""

UNPICKLABLE_TYPE_NAMES = frozenset(
    {"Callable", "IO", "TextIO", "BinaryIO", "Generator", "Iterator"}
)


def _annotation_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: best-effort parse of forward references.
            try:
                parsed = ast.parse(sub.value, mode="eval")
            except SyntaxError:
                continue
            names |= _annotation_names(parsed)
    return names


class PickleBoundaryRule(Rule):
    rule_id = "pickle-boundary"
    severity = Severity.ERROR
    description = (
        "unpicklable field types, lambda defaults, or locally-defined "
        "classes in the modules defining SweepJob/ExperimentSpec"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        boundary_classes = [
            node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef) and node.name in BOUNDARY_CLASSES
        ]
        if not boundary_classes:
            return ()
        findings: List[Finding] = []
        for cls in boundary_classes:
            findings.extend(self._check_fields(module, cls))
        findings.extend(self._check_local_classes(module))
        return findings

    def _check_fields(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            target = stmt.target
            name = target.id if isinstance(target, ast.Name) else "<field>"
            bad = _annotation_names(stmt.annotation) & UNPICKLABLE_TYPE_NAMES
            for type_name in sorted(bad):
                yield module.finding(
                    self,
                    stmt,
                    f"{cls.name}.{name} is annotated with {type_name}, which "
                    "does not survive the ProcessPoolExecutor pickle "
                    "boundary; pass data, not behavior, to workers",
                )
            if stmt.value is not None:
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Lambda):
                        # default_factory lambdas never reach instances;
                        # plain lambda defaults become the attribute value.
                        if _is_default_factory(stmt.value, sub):
                            continue
                        yield module.finding(
                            self,
                            sub,
                            f"{cls.name}.{name} has a lambda default; the "
                            "lambda becomes the instance attribute and "
                            "cannot be pickled to workers",
                        )

    def _check_local_classes(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.ClassDef):
                    yield module.finding(
                        self,
                        sub,
                        f"class {sub.name} is defined inside {node.name}(); "
                        "instances of locally-defined classes cannot be "
                        "pickled across the worker-pool boundary — move it "
                        "to module level",
                    )


def _is_default_factory(value: ast.AST, lam: ast.Lambda) -> bool:
    """True when ``lam`` is the ``default_factory=`` of a field() call."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    func_name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    if func_name != "field":
        return False
    return any(kw.arg == "default_factory" and kw.value is lam
               for kw in value.keywords)
