"""units — Celsius/Kelvin discipline.

Every temperature conversion must go through
:mod:`repro.technology.temperature` (``celsius_to_kelvin`` /
``kelvin_to_celsius`` / the named constants).  A raw ``273.15`` or
``298.15`` literal anywhere else is an offset applied outside the one
module allowed to know it — historically how mixed-unit bugs enter
thermal code, because the result is plausibly-sized either way.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

TEMPERATURE_MODULE = "technology/temperature.py"

EXEMPT_PREFIXES = ("analysis/",)
"""The linter itself must name the literals in order to detect them."""

OFFSET_LITERALS = (273.15, 298.15)
"""Zero-Celsius and the 25 C characterization reference, in kelvin."""


class UnitsRule(Rule):
    rule_id = "units"
    severity = Severity.ERROR
    description = (
        "temperature-offset literals (273.15 / 298.15) outside "
        "technology/temperature.py; use celsius_to_kelvin / T_REFERENCE_K"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if module.rel == TEMPERATURE_MODULE or module.rel.startswith(
            EXEMPT_PREFIXES
        ):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if float(value) in OFFSET_LITERALS:
                findings.append(
                    module.finding(
                        self,
                        node,
                        f"raw temperature-offset literal {value!r}; use "
                        "repro.technology.temperature (celsius_to_kelvin, "
                        "ZERO_CELSIUS_K, T_REFERENCE_K) so Celsius/Kelvin "
                        "conversions live in one module",
                    )
                )
        return findings
