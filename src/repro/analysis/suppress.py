"""Inline suppression comments.

A finding is suppressed when the physical line it anchors to carries a
marker comment::

    t_hot = t_cold + 273.15  # repro-lint: ignore[units] characterization anchor

``ignore[rule-a,rule-b]`` suppresses the named rules only; a bare
``ignore`` suppresses every rule on that line.  Anything after the
closing bracket is free-form justification (encouraged).  Suppressions
are per-line and deliberately narrow: module- or block-level opt-outs
belong in the committed baseline, where they are visible in review.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List

_MARKER = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-, ]*)\])?"
)

ALL_RULES_SENTINEL = "*"


def suppressions_for(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> rule ids suppressed on that line.

    Only genuine ``#`` comment tokens count (a marker quoted inside a
    docstring is prose, not a suppression).  The sentinel ``"*"`` in the
    set means every rule is suppressed.
    """
    table: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for token in tokens:
        if token.type != tokenize.COMMENT or "repro-lint" not in token.string:
            continue
        match = _MARKER.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        raw = match.group("rules")
        if raw is None or not raw.strip():
            table[lineno] = frozenset({ALL_RULES_SENTINEL})
        else:
            rules = {part.strip() for part in raw.split(",") if part.strip()}
            table[lineno] = frozenset(rules)
    return table


def is_suppressed(
    table: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    rules = table.get(line)
    if rules is None:
        return False
    return ALL_RULES_SENTINEL in rules or rule_id in rules


def unknown_rule_references(
    table: Dict[int, FrozenSet[str]], known: FrozenSet[str]
) -> List[tuple]:
    """(line, rule-id) pairs naming rules that do not exist (typo guard)."""
    bad = []
    for line, rules in sorted(table.items()):
        for rule in sorted(rules):
            if rule != ALL_RULES_SENTINEL and rule not in known:
                bad.append((line, rule))
    return bad
