"""The blessed import surface: ``from repro.api import ...``.

Every supported entry point of the reproduction is re-exported here under
one flat namespace, so user code (examples, notebooks, CI scripts) names
exactly one module instead of memorising which subpackage owns what::

    from repro.api import (
        ArchParams, GuardbandConfig, build_fabric, vtr_benchmark,
        run_flow, thermal_aware_guardband,
        ExperimentSpec, run_sweep, open_store,
    )

Imports are lazy: touching ``repro.api.run_sweep`` loads ``repro.runner``
on first access, so ``import repro.api`` itself stays cheap (no numpy
solver warm-up, no process-pool machinery) for CLI ``--help`` paths and
tooling that only introspects names.

The historical re-exports on the top-level ``repro`` package still work
but emit :class:`DeprecationWarning`; new code should import from here
(or from the owning submodule directly).
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any, List

#: name -> defining module.  The facade resolves each attribute lazily
#: from this table; ``__all__`` is derived from it so the two can never
#: drift apart.
_EXPORTS = {
    # Architecture + fabric characterization.
    "ArchParams": "repro.arch.params",
    "Fabric": "repro.coffe.fabric",
    "build_fabric": "repro.coffe.fabric",
    "characterize_fabric": "repro.coffe.characterize",
    # Benchmarks.
    "NetlistSpec": "repro.netlists.generator",
    "generate_netlist": "repro.netlists.generator",
    "VTR_BENCHMARKS": "repro.netlists.vtr_suite",
    "vtr_benchmark": "repro.netlists.vtr_suite",
    # CAD flow.
    "FlowResult": "repro.cad.flow",
    "flow_cache_key": "repro.cad.flow",
    "flow_cache_key_for": "repro.cad.flow",
    "run_flow": "repro.cad.flow",
    # Thermal-aware placement.
    "ThermalPlaceError": "repro.cad.thermal_place",
    "ThermalPlaceStats": "repro.cad.thermal_place",
    "ThermalProxy": "repro.cad.thermal_place",
    "density_vector": "repro.cad.thermal_place",
    "PlacementIntegrityError": "repro.cad.place",
    # Algorithm 1 and the margin model.
    "BatchCell": "repro.core.guardband",
    "EnergyReport": "repro.core.guardband",
    "GuardbandConfig": "repro.core.guardband",
    "GuardbandError": "repro.core.guardband",
    "GuardbandResult": "repro.core.guardband",
    "thermal_aware_guardband": "repro.core.guardband",
    "thermal_aware_guardband_batch": "repro.core.guardband",
    "guardband_gain": "repro.core.margins",
    "worst_case_frequency": "repro.core.margins",
    # Energy objective: supply scaling model and rails.
    "VoltageScaling": "repro.power.voltage",
    "VDD_MIN_V": "repro.power.voltage",
    "VDD_NOMINAL": "repro.technology.ptm22",
    # Thermal-aware design / architecture selection.
    "corner_delay_curves": "repro.core.design",
    "expected_delay": "repro.core.architecture",
    "select_design_corner": "repro.core.architecture",
    # Sweep engine.
    "ExperimentSpec": "repro.runner",
    "SweepJob": "repro.runner",
    "run_sweep": "repro.runner",
    "SweepResult": "repro.runner",
    "JobResult": "repro.runner",
    "JobFailure": "repro.runner",
    "outcome_from_record": "repro.runner",
    # Persistent result store (with pluggable byte backends).
    "ResultStore": "repro.store",
    "open_store": "repro.store",
    "store_digest": "repro.store",
    "STORE_SCHEMA_VERSION": "repro.store",
    "StoreBackend": "repro.store",
    "DirectoryBackend": "repro.store",
    "MemoryBackend": "repro.store",
    # Sweep service: client, scheduler, server, versioned wire schema.
    "SweepClient": "repro.service",
    "ServiceError": "repro.service",
    "SweepScheduler": "repro.service",
    "SweepServer": "repro.service",
    "to_wire": "repro.service",
    "from_wire": "repro.service",
    "WireError": "repro.service",
    "WIRE_SCHEMA_VERSION": "repro.service",
    # Observability (exported as the module itself).
    "observe": "repro.observe",
}

__all__: List[str] = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.api' has no attribute {name!r}"
        ) from None
    module = importlib.import_module(module_name)
    value: Any = module if name == "observe" else getattr(module, name)
    # Cache on the module so subsequent accesses skip __getattr__.
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # Static surface for mypy/IDEs; runtime stays lazy.
    from repro import observe
    from repro.arch.params import ArchParams
    from repro.cad.flow import FlowResult, flow_cache_key, run_flow
    from repro.coffe.characterize import characterize_fabric
    from repro.coffe.fabric import Fabric, build_fabric
    from repro.core.architecture import expected_delay, select_design_corner
    from repro.core.design import corner_delay_curves
    from repro.cad.place import PlacementIntegrityError
    from repro.core.guardband import (
        BatchCell,
        EnergyReport,
        GuardbandConfig,
        GuardbandError,
        GuardbandResult,
        thermal_aware_guardband,
        thermal_aware_guardband_batch,
    )
    from repro.core.margins import guardband_gain, worst_case_frequency
    from repro.power.voltage import VDD_MIN_V, VoltageScaling
    from repro.technology.ptm22 import VDD_NOMINAL
    from repro.netlists.generator import NetlistSpec, generate_netlist
    from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark
    from repro.runner import (
        ExperimentSpec,
        JobFailure,
        JobResult,
        SweepJob,
        SweepResult,
        outcome_from_record,
        run_sweep,
    )
    from repro.cad.flow import flow_cache_key_for
    from repro.service import (
        WIRE_SCHEMA_VERSION,
        ServiceError,
        SweepClient,
        SweepScheduler,
        WireError,
        from_wire,
        to_wire,
    )
    from repro.service.http import SweepServer
    from repro.store import (
        STORE_SCHEMA_VERSION,
        DirectoryBackend,
        MemoryBackend,
        ResultStore,
        StoreBackend,
        open_store,
        store_digest,
    )
