"""Island-style FPGA architecture model (paper Fig. 4, Table I).

- :mod:`repro.arch.params` — architectural parameters (K, N, channel width,
  wire segment length, mux sizes, BRAM geometry).
- :mod:`repro.arch.layout` — the device floorplan: a grid of CLB tiles with
  embedded BRAM and DSP columns, as in commercial devices.
- :mod:`repro.arch.rrgraph` — the routing-resource graph the PathFinder
  router works on.
"""

from repro.arch.layout import FabricLayout, Tile, TileType
from repro.arch.params import ArchParams
from repro.arch.rrgraph import RRGraph, RRNode, RRNodeType, build_rr_graph

__all__ = [
    "ArchParams",
    "FabricLayout",
    "RRGraph",
    "RRNode",
    "RRNodeType",
    "Tile",
    "TileType",
    "build_rr_graph",
]
