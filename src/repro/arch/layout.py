"""Device floorplan: a grid of CLB, BRAM, DSP and IO tiles.

Island-style column organization (paper Fig. 4a): an IO ring around a CLB
sea, with periodic BRAM and DSP columns, as in Stratix/Arria-class devices.
Each tile is the unit of the thermal model ("an FPGA tile comprises a logic
cluster (or other hard-cores) and its neighboring routing resources" —
paper footnote 2), so the layout also defines the power/temperature vector
layout used by Algorithm 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Tuple

from repro.arch.params import ArchParams


class TileType(Enum):
    """What occupies a grid location."""

    IO = "io"
    CLB = "clb"
    BRAM = "bram"
    DSP = "dsp"
    EMPTY = "empty"


IO_CAPACITY = 8
"""IO pads per perimeter tile."""


@dataclass(frozen=True)
class Tile:
    """One grid location."""

    x: int
    y: int
    type: TileType

    @property
    def capacity(self) -> int:
        """How many netlist blocks of the matching kind fit here."""
        if self.type == TileType.IO:
            return IO_CAPACITY
        if self.type == TileType.EMPTY:
            return 0
        return 1


class FabricLayout:
    """A ``width x height`` grid of tiles with BRAM/DSP columns."""

    def __init__(self, arch: ArchParams, width: int, height: int):
        if width < 4 or height < 4:
            raise ValueError(f"grid must be at least 4x4, got {width}x{height}")
        self.arch = arch
        self.width = width
        self.height = height
        self._tiles: List[Tile] = []
        for y in range(height):
            for x in range(width):
                self._tiles.append(Tile(x, y, self._type_at(x, y)))

    def _type_at(self, x: int, y: int) -> TileType:
        if x == 0 or y == 0 or x == self.width - 1 or y == self.height - 1:
            return TileType.IO
        bram_p = self.arch.bram_column_period
        dsp_p = self.arch.dsp_column_period
        # Offset the hard columns so they interleave rather than collide.
        if bram_p and x % bram_p == bram_p // 2:
            return TileType.BRAM
        if dsp_p and x % dsp_p == dsp_p - 1 and x != self.width - 1:
            return TileType.DSP
        return TileType.CLB

    # -- lookups ---------------------------------------------------------------

    def tile(self, x: int, y: int) -> Tile:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"tile ({x}, {y}) outside {self.width}x{self.height} grid")
        return self._tiles[y * self.width + x]

    def tile_index(self, x: int, y: int) -> int:
        """Flat index of a tile in power/temperature vectors."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"tile ({x}, {y}) outside {self.width}x{self.height} grid")
        return y * self.width + x

    @property
    def n_tiles(self) -> int:
        return self.width * self.height

    def tiles(self) -> Iterator[Tile]:
        return iter(self._tiles)

    def locations_of(self, tile_type: TileType) -> List[Tuple[int, int]]:
        return [(t.x, t.y) for t in self._tiles if t.type == tile_type]

    def capacity_of(self, tile_type: TileType) -> int:
        return sum(t.capacity for t in self._tiles if t.type == tile_type)

    def neighbors(self, x: int, y: int) -> List[Tuple[int, int]]:
        """4-connected neighbor coordinates (for the thermal grid)."""
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.width and 0 <= ny < self.height:
                out.append((nx, ny))
        return out

    # -- construction -----------------------------------------------------------

    @classmethod
    def for_netlist(
        cls,
        arch: ArchParams,
        n_clb: int,
        n_bram: int,
        n_dsp: int,
        n_io: int,
        target_utilization: float = 0.75,
        max_dim: int = 64,
    ) -> "FabricLayout":
        """Smallest square layout fitting the given block counts.

        Grows the grid until every block type fits at no more than
        ``target_utilization`` of its capacity (mirroring VPR's auto-sizing).
        """
        if min(n_clb, n_bram, n_dsp, n_io) < 0:
            raise ValueError("block counts must be non-negative")
        if not (0.0 < target_utilization <= 1.0):
            raise ValueError("target_utilization must be in (0, 1]")
        side = max(5, int(math.ceil(math.sqrt(max(n_clb, 1) / target_utilization))) + 2)
        while side <= max_dim:
            layout = cls(arch, side, side)
            fits = (
                layout.capacity_of(TileType.CLB) * target_utilization >= n_clb
                and layout.capacity_of(TileType.BRAM) >= n_bram
                and layout.capacity_of(TileType.DSP) >= n_dsp
                and layout.capacity_of(TileType.IO) >= n_io
            )
            if fits:
                return layout
            side += 1
        raise ValueError(
            f"netlist does not fit a {max_dim}x{max_dim} grid "
            f"(clb={n_clb}, bram={n_bram}, dsp={n_dsp}, io={n_io})"
        )
