"""Architectural parameters (paper Table I).

The defaults reproduce the COFFE configuration the paper uses: a
commercial-like (Stratix/Arria-class) island-style fabric with K = 6 LUTs,
N = 10 BLEs per cluster, 320 routing tracks of length-4 segments, and the
mux sizes of Table I.

Two channel widths appear in the library: the *architectural* width
(``channel_tracks``, used for characterization, area and power density) and
the *routed* width (``routed_channel_tracks``), a scaled-down value used by
the pure-Python router so benchmark flows complete quickly.  See DESIGN.md
("Scale note").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class ArchParams:
    """Island-style FPGA architecture description."""

    lut_size: int = 6
    """K: number of LUT inputs."""
    cluster_size: int = 10
    """N: BLEs (LUT + FF pairs) per logic cluster."""
    channel_tracks: int = 320
    """Architectural routing tracks per channel (Table I)."""
    wire_segment_length: int = 4
    """Tiles spanned by one routing wire segment."""
    cluster_inputs: int = 40
    """Global inputs per cluster (I)."""
    sb_mux_size: int = 12
    """Inputs of a switch-block mux."""
    cb_mux_size: int = 64
    """Inputs of a connection-block mux."""
    local_mux_size: int = 25
    """Inputs of a cluster-local input mux."""
    feedback_mux_size: int = 20
    """Inputs of the local feedback mux selecting BLE outputs."""
    output_mux_size: int = 2
    """Inputs of the BLE output mux."""
    vdd: float = 0.8
    """Core supply voltage, volts."""
    vdd_low_power: float = 0.95
    """BRAM core supply voltage, volts."""
    bram_rows: int = 1024
    bram_width_bits: int = 32
    """BRAM geometry: 1024 x 32 bit (Table I)."""

    routed_channel_tracks: int = 40
    """Channel width used by the (scaled) Python router; see DESIGN.md."""
    fc_in: float = 0.2
    """Fraction of routed tracks a block input pin connects to."""
    fc_out: float = 0.15
    """Fraction of routed tracks a block output pin connects to."""

    bram_column_period: int = 6
    """A BRAM column every this many columns (0 disables BRAM columns)."""
    dsp_column_period: int = 8
    """A DSP column every this many columns (0 disables DSP columns)."""
    bram_tile_height: int = 2
    """CLB rows spanned by one BRAM block."""
    dsp_tile_height: int = 2
    """CLB rows spanned by one DSP block."""

    # Tile geometry for the thermal model.  The soft-fabric tile area comes
    # from the characterization flow (paper: ~1196 um^2); hard blocks follow
    # Table II areas.
    tile_pitch_um: float = 35.0
    """Linear pitch of one CLB tile, micrometres."""

    def __post_init__(self) -> None:
        if self.lut_size < 2:
            raise ValueError(f"lut_size must be >= 2, got {self.lut_size}")
        if self.cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {self.cluster_size}")
        if self.channel_tracks < 2 or self.routed_channel_tracks < 2:
            raise ValueError("channel widths must be >= 2")
        if self.wire_segment_length < 1:
            raise ValueError("wire_segment_length must be >= 1")
        if not (0.0 < self.fc_in <= 1.0 and 0.0 < self.fc_out <= 1.0):
            raise ValueError("fc_in / fc_out must be in (0, 1]")
        for name in ("sb_mux_size", "cb_mux_size", "local_mux_size",
                     "feedback_mux_size", "output_mux_size"):
            if getattr(self, name) < 2:
                raise ValueError(f"{name} must be >= 2")

    @property
    def bram_bits(self) -> int:
        return self.bram_rows * self.bram_width_bits

    @property
    def ble_count(self) -> int:
        return self.cluster_size

    def with_changes(self, **changes: object) -> "ArchParams":
        """Return a copy with some parameters replaced."""
        return replace(self, **changes)

    def table1_rows(self) -> Tuple[Tuple[str, str], ...]:
        """Rows of the paper's Table I for reporting."""
        return (
            ("K", str(self.lut_size)),
            ("N", str(self.cluster_size)),
            ("Channel tracks", str(self.channel_tracks)),
            ("Wire segment length", str(self.wire_segment_length)),
            ("Cluster global inputs", str(self.cluster_inputs)),
            ("SBmux", str(self.sb_mux_size)),
            ("CBmux", str(self.cb_mux_size)),
            ("localmux", str(self.local_mux_size)),
            ("Vdd, Vlow power", f"{self.vdd}V, {self.vdd_low_power}V"),
            ("BRAM", f"{self.bram_rows} x {self.bram_width_bits} bit"),
        )
