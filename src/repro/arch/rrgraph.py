"""Routing-resource graph for the PathFinder router.

A VPR-style RR graph over a :class:`~repro.arch.layout.FabricLayout`:

- per-tile ``SOURCE -> OPIN`` and ``IPIN -> SINK`` pin nodes (aggregated per
  pin class, with the pin-class capacity),
- length-``L`` horizontal (CHANX) and vertical (CHANY) wire segments with
  staggered starting points,
- switch-block edges between wire segments (Wilton-like, driven by SB
  muxes), connection-block edges from wires to IPINs (CB muxes) with
  ``Fc_in`` / ``Fc_out`` connectivity fractions.

Every edge is tagged with the FPGA resource type whose mux drives it
(``sb_mux``, ``cb_mux``, ``local_mux``, ``output_mux``); the
temperature-aware STA prices each edge with that resource's delay(T)
evaluated at the temperature of the tile the driving mux sits in.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.arch.layout import FabricLayout, TileType
from repro.arch.params import ArchParams


class RRNodeType(Enum):
    SOURCE = "source"
    OPIN = "opin"
    CHANX = "chanx"
    CHANY = "chany"
    IPIN = "ipin"
    SINK = "sink"


@dataclass
class RRNode:
    """One routing-resource node."""

    id: int
    type: RRNodeType
    x: int
    y: int
    """Representative tile (midpoint for wires) — used for temperature."""
    capacity: int
    span: Tuple[int, int, int, int] = (0, 0, 0, 0)
    """(x_low, y_low, x_high, y_high) tiles covered (wires span several)."""


@dataclass
class RREdge:
    """Directed edge; ``resource`` names the mux type that drives it."""

    src: int
    dst: int
    resource: str


class RRGraph:
    """Flat adjacency-list routing-resource graph."""

    def __init__(self, layout: FabricLayout):
        self.layout = layout
        self.nodes: List[RRNode] = []
        self.out_edges: List[List[RREdge]] = []
        self.source_of: Dict[Tuple[int, int], int] = {}
        self.sink_of: Dict[Tuple[int, int], int] = {}
        self.opin_of: Dict[Tuple[int, int], int] = {}
        self.ipin_of: Dict[Tuple[int, int], int] = {}

    def add_node(
        self,
        type_: RRNodeType,
        x: int,
        y: int,
        capacity: int,
        span: Optional[Tuple[int, int, int, int]] = None,
    ) -> int:
        node_id = len(self.nodes)
        self.nodes.append(
            RRNode(node_id, type_, x, y, capacity, span or (x, y, x, y))
        )
        self.out_edges.append([])
        return node_id

    def add_edge(self, src: int, dst: int, resource: str) -> None:
        self.out_edges[src].append(RREdge(src, dst, resource))

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> RRNode:
        return self.nodes[node_id]


def _pin_counts(arch: ArchParams, tile_type: TileType) -> Tuple[int, int]:
    """(inputs, outputs) of the block in a tile of the given type."""
    if tile_type == TileType.CLB:
        return arch.cluster_inputs, arch.cluster_size
    if tile_type == TileType.BRAM:
        return arch.bram_width_bits + 12, arch.bram_width_bits
    if tile_type == TileType.DSP:
        return 54, 36
    if tile_type == TileType.IO:
        return 8, 8
    return 0, 0


def _pick(candidates: List[int], count: int, salt: int) -> List[int]:
    """Deterministic pseudo-random subset of ``candidates``."""
    if count >= len(candidates):
        return list(candidates)
    keyed = sorted(
        range(len(candidates)),
        key=lambda i: ((i + salt) * 2654435761 + salt * 97) & 0xFFFFFFFF,
    )
    return [candidates[i] for i in keyed[:count]]


def build_rr_graph(arch: ArchParams, layout: FabricLayout) -> RRGraph:
    """Build the routing-resource graph for a layout.

    Uses ``arch.routed_channel_tracks`` as the channel width (the scaled
    routing width — see DESIGN.md) and ``arch.wire_segment_length`` wires.
    """
    graph = RRGraph(layout)
    w_chan = arch.routed_channel_tracks
    seg_len = arch.wire_segment_length

    # -- pin nodes -------------------------------------------------------------
    for tile in layout.tiles():
        n_in, n_out = _pin_counts(arch, tile.type)
        if n_in == 0 and n_out == 0:
            continue
        key = (tile.x, tile.y)
        graph.source_of[key] = graph.add_node(
            RRNodeType.SOURCE, tile.x, tile.y, max(n_out, 1)
        )
        graph.opin_of[key] = graph.add_node(
            RRNodeType.OPIN, tile.x, tile.y, max(n_out, 1)
        )
        graph.ipin_of[key] = graph.add_node(
            RRNodeType.IPIN, tile.x, tile.y, max(n_in, 1)
        )
        graph.sink_of[key] = graph.add_node(
            RRNodeType.SINK, tile.x, tile.y, max(n_in, 1)
        )
        graph.add_edge(graph.source_of[key], graph.opin_of[key], "output_mux")
        graph.add_edge(graph.ipin_of[key], graph.sink_of[key], "local_mux")

    # -- wire nodes --------------------------------------------------------------
    # chanx[y] runs along row y; chany[x] along column x.
    chanx_wires: Dict[int, List[int]] = {y: [] for y in range(layout.height)}
    chany_wires: Dict[int, List[int]] = {x: [] for x in range(layout.width)}
    for y in range(layout.height):
        for track in range(w_chan):
            start = track % seg_len
            x0 = start
            while x0 < layout.width:
                x1 = min(x0 + seg_len - 1, layout.width - 1)
                node = graph.add_node(
                    RRNodeType.CHANX, (x0 + x1) // 2, y, 1, (x0, y, x1, y)
                )
                chanx_wires[y].append(node)
                x0 += seg_len
    for x in range(layout.width):
        for track in range(w_chan):
            start = track % seg_len
            y0 = start
            while y0 < layout.height:
                y1 = min(y0 + seg_len - 1, layout.height - 1)
                node = graph.add_node(
                    RRNodeType.CHANY, x, (y0 + y1) // 2, 1, (x, y0, x, y1)
                )
                chany_wires[x].append(node)
                y0 += seg_len

    # Index wires by the tiles they cover, for pin and SB connections.
    covers: Dict[Tuple[int, int], List[int]] = {}
    ends_at: Dict[Tuple[int, int], List[int]] = {}
    for node in graph.nodes:
        if node.type not in (RRNodeType.CHANX, RRNodeType.CHANY):
            continue
        x0, y0, x1, y1 = node.span
        for x in range(x0, x1 + 1):
            for y in range(y0, y1 + 1):
                covers.setdefault((x, y), []).append(node.id)
        ends_at.setdefault((x0, y0), []).append(node.id)
        ends_at.setdefault((x1, y1), []).append(node.id)

    # -- OPIN -> wires (Fc_out) and wires -> IPIN (Fc_in) -------------------------
    # Pins are aggregated per class (one OPIN/IPIN node per tile with the
    # class capacity), so the connectivity must scale with the class size:
    # a 40-input cluster sees the union of its 40 physical pins' Fc_in
    # switch points.
    for key, opin in graph.opin_of.items():
        candidates = sorted(covers.get(key, []))
        count = max(
            int(round(arch.fc_out * w_chan)), 2 * graph.nodes[opin].capacity
        )
        for wire in _pick(candidates, count, salt=opin):
            graph.add_edge(opin, wire, "sb_mux")
    for key, ipin in graph.ipin_of.items():
        candidates = sorted(covers.get(key, []))
        count = max(
            int(round(arch.fc_in * w_chan)), 2 * graph.nodes[ipin].capacity
        )
        for wire in _pick(candidates, count, salt=ipin):
            graph.add_edge(wire, ipin, "cb_mux")

    # -- switch-block edges: wire ends drive other wires ---------------------------
    sb_fanout = 5
    for node in graph.nodes:
        if node.type not in (RRNodeType.CHANX, RRNodeType.CHANY):
            continue
        x0, y0, x1, y1 = node.span
        for end in ((x0, y0), (x1, y1)):
            candidates = [
                w
                for w in covers.get(end, [])
                if w != node.id and graph.nodes[w].type != node.type
            ]
            straight = [
                w
                for w in ends_at.get(end, [])
                if w != node.id and graph.nodes[w].type == node.type
            ]
            targets = _pick(sorted(candidates), sb_fanout - 1, salt=node.id) + _pick(
                sorted(straight), 1, salt=node.id + 1
            )
            for w in targets:
                graph.add_edge(node.id, w, "sb_mux")

    return graph
