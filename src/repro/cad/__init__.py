"""VPR stand-in: packing, placement, routing and temperature-aware STA.

The flow (:func:`repro.cad.flow.run_flow`) mirrors VPR 7: technology-mapped
netlist -> BLE/cluster packing -> simulated-annealing placement -> PathFinder
negotiated-congestion routing on the RR graph -> static timing analysis.

The STA (:mod:`repro.cad.timing`) is the paper's modified VPR timing
analyzer: every delay element knows which *tile* it sits in, so the critical
path can be re-evaluated for any per-tile temperature vector — the inner
operation of Algorithm 1.
"""

from repro.cad.pack import Cluster, PackedNetlist, pack_netlist
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.cad.timing import TimingAnalyzer, TimingReport
from repro.cad.flow import FlowResult, run_flow

# The ``place``/``route`` functions live in their submodules
# (``repro.cad.place.place``, ``repro.cad.route.route``); re-exporting them
# here would shadow the submodules themselves on the package object.

__all__ = [
    "Cluster",
    "FlowResult",
    "PackedNetlist",
    "Placement",
    "RoutingResult",
    "TimingAnalyzer",
    "TimingReport",
    "pack_netlist",
    "run_flow",
]
