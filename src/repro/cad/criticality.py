"""Structural net-criticality estimation for timing-driven placement.

Before placement there are no routing delays, but the netlist's structure
already says which connections will matter: a net on a deep
register-to-register combinational path has little slack to spend on
routing, while a net hanging off a shallow cone can afford detours.

We compute, per net, the length of the longest combinational path through
it (driver depth + downstream depth) normalized by the netlist's maximum,
and map it to an annealing weight.  VPR's timing-driven mode derives the
same signal from an STA loop; the structural estimate captures the bulk of
it at a fraction of the cost and with no fabric dependence.
"""

from __future__ import annotations

from typing import Dict

from repro.netlists.netlist import BlockType, Netlist, SEQUENTIAL_TYPES

MIN_WEIGHT = 0.5
MAX_WEIGHT = 3.0

_COMBINATIONAL_COST = {
    BlockType.LUT: 1.0,
    BlockType.DSP: 3.0,  # a DSP traversal is worth several LUT levels
}


def net_criticalities(netlist: Netlist) -> Dict[int, float]:
    """Per-net criticality in [0, 1]: longest path through the net / max."""
    netlist.validate()
    order = netlist.combinational_order()
    n = netlist.n_blocks

    # depth_up[b]: longest combinational cost arriving at b's inputs.
    depth_up = [0.0] * n
    for block_id in order:
        block = netlist.blocks[block_id]
        if block.type in SEQUENTIAL_TYPES:
            base = 0.0
        else:
            base = depth_up[block_id] + _COMBINATIONAL_COST.get(block.type, 0.0)
        for net_id in block.output_nets:
            for sink in netlist.nets[net_id].sinks:
                depth_up[sink] = max(depth_up[sink], base)

    # depth_down[b]: longest combinational cost from b's output onward.
    depth_down = [0.0] * n
    for block_id in reversed(order):
        block = netlist.blocks[block_id]
        best = 0.0
        for net_id in block.output_nets:
            for sink in netlist.nets[net_id].sinks:
                sink_block = netlist.blocks[sink]
                if sink_block.type in SEQUENTIAL_TYPES or (
                    sink_block.type == BlockType.OUTPUT
                ):
                    contribution = 0.0
                else:
                    contribution = depth_down[sink] + _COMBINATIONAL_COST.get(
                        sink_block.type, 0.0
                    )
                best = max(best, contribution)
        depth_down[block_id] = best

    path_through: Dict[int, float] = {}
    for net in netlist.nets:
        driver = netlist.blocks[net.driver]
        up = 0.0 if driver.type in SEQUENTIAL_TYPES else depth_up[net.driver]
        up += _COMBINATIONAL_COST.get(driver.type, 0.0)
        down = max(
            (
                depth_down[s] + _COMBINATIONAL_COST.get(netlist.blocks[s].type, 0.0)
                for s in net.sinks
            ),
            default=0.0,
        )
        path_through[net.id] = up + down

    peak = max(path_through.values(), default=0.0)
    if peak <= 0.0:
        return {net_id: 0.0 for net_id in path_through}
    return {net_id: v / peak for net_id, v in path_through.items()}


def criticality_weights(netlist: Netlist, exponent: float = 2.0) -> Dict[int, float]:
    """Annealing weights: ``MIN + (MAX-MIN) * criticality^exponent``.

    The exponent sharpens the distinction so only genuinely deep nets get
    the big weights (VPR uses criticality exponents of 1-8 similarly).
    """
    if exponent <= 0.0:
        raise ValueError("exponent must be positive")
    crits = net_criticalities(netlist)
    return {
        net_id: MIN_WEIGHT + (MAX_WEIGHT - MIN_WEIGHT) * c**exponent
        for net_id, c in crits.items()
    }
