"""End-to-end CAD flow driver: pack -> place -> route -> timing graph.

:func:`run_flow` produces a :class:`FlowResult`, the placed-and-routed
design object Algorithm 1 consumes.  Results are cached per
(netlist name, architecture, seed, thermal weight): the implementation
is independent of
the temperature assumptions, so every experiment (guardbanding at several
ambients, corner-fabric comparisons) reuses the same mapping — exactly as
the paper evaluates one P&R per benchmark under different timing regimes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro import observe
from repro.arch.layout import FabricLayout, TileType
from repro.arch.params import ArchParams
from repro.arch.rrgraph import build_rr_graph
from repro.cad.criticality import criticality_weights
from repro.cad.pack import PackedNetlist, pack_netlist
from repro.cad.place import Placement, place
from repro.cad.route import RoutingError, RoutingResult, route
from repro.cad.timing import TimingAnalyzer
from repro.netlists.netlist import Netlist


@dataclass
class FlowResult:
    """A placed-and-routed design plus its timing analyzer."""

    netlist: Netlist
    arch: ArchParams
    layout: FabricLayout
    packed: PackedNetlist
    placement: Placement
    routing: RoutingResult
    timing: TimingAnalyzer
    cache_key: Optional[str] = None
    """Deterministic flow-cache key for this (netlist, arch, seed) —
    always set by :func:`run_flow`, even with disk caching disabled, so
    downstream keying (e.g. the :mod:`repro.store` result digest) works
    regardless of cache configuration.  ``None`` only on legacy pickles."""

    @property
    def n_tiles(self) -> int:
        return self.layout.n_tiles


_FLOW_CACHE: Dict[Tuple[str, ArchParams, int, float], FlowResult] = {}

_CACHE_COUNTS = {"hit": 0, "miss": 0, "quarantine": 0}
"""Process-lifetime flow-cache behaviour.  Always-on (cache events are
rare, an int bump is free) so sweep consumers see cache behaviour even
without an observability session; mirrored into ``flow.cache.*``
counters when one is active."""


def cache_counters() -> Dict[str, int]:
    """Snapshot of this process's flow-cache hit/miss/quarantine counts.

    The sweep engine diffs two snapshots around each job to attribute
    cache behaviour per grid cell (:attr:`JobResult.cache_events`).
    """
    return dict(_CACHE_COUNTS)


def _count_cache(kind: str, **attrs: object) -> None:
    _CACHE_COUNTS[kind] += 1
    observe.counter(f"flow.cache.{kind}").inc()
    observe.event(f"flow.cache.{kind}", **attrs)


FLOW_CACHE_VERSION = 5
"""Bump to invalidate on-disk flow caches after algorithmic changes.

Version 5: thermal-aware placement — the placer grew a ``thermal_weight``
objective term, and the weight became a key component (``w...``); stale
v4 pickles would otherwise alias the new thermal-aware mappings.

Version 4: the architecture component of the key became a deterministic
SHA-256 digest (:func:`arch_digest`) so keys are identical across worker
processes and Python versions — ``hash()`` of a dataclass is salted per
interpreter (``PYTHONHASHSEED``), which made sweep workers recompute
instead of sharing P&R work.
"""


def arch_digest(arch: ArchParams) -> str:
    """Deterministic short digest of every :class:`ArchParams` field.

    SHA-256 over the ``(name, value)`` field tuple ``repr``; stable across
    processes, interpreter restarts and Python versions (unlike ``hash``).
    """
    payload = repr(
        tuple((f.name, getattr(arch, f.name)) for f in fields(arch))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def flow_cache_key(
    netlist: Netlist, arch: ArchParams, seed: int, thermal_weight: float = 0.0
) -> str:
    """The deterministic disk-cache key for one (netlist, arch, seed, w)."""
    return (
        f"v{FLOW_CACHE_VERSION}_{netlist.name}_b{netlist.n_blocks}"
        f"_n{netlist.n_nets}_s{seed}_w{thermal_weight:g}_a{arch_digest(arch)}"
    )


_TIMING_DRIVEN_SEED_OFFSET = 1_000_003
"""timing_driven folds into the cache key through the seed namespace."""


def flow_cache_key_for(
    netlist: Netlist,
    arch: ArchParams,
    seed: int = 7,
    timing_driven: bool = False,
    thermal_weight: float = 0.0,
) -> str:
    """The cache key :func:`run_flow` will assign, without running P&R.

    This is what lets a scheduler address a cell's result-store digest
    (:func:`repro.store.store_digest`) before any flow has executed:
    the key is a pure function of the resolved netlist, the architecture
    digest, the seed namespace, the thermal weight and
    ``FLOW_CACHE_VERSION``.
    """
    cache_seed = seed + (_TIMING_DRIVEN_SEED_OFFSET if timing_driven else 0)
    return flow_cache_key(netlist, arch, cache_seed, thermal_weight)


def _disk_cache_path(
    netlist: Netlist, arch: ArchParams, seed: int, thermal_weight: float = 0.0
) -> Optional[Path]:
    """Location of the pickled flow result, or ``None`` if caching is off.

    P&R of the full suite takes minutes; experiments re-use identical
    mappings, so results persist under ``$REPRO_CACHE_DIR`` (default
    ``~/.cache/repro-flows``).  Set ``REPRO_CACHE_DIR=off`` to disable.
    """
    root = os.environ.get("REPRO_CACHE_DIR", "")
    if root.lower() == "off":
        return None
    base = Path(root) if root else Path.home() / ".cache" / "repro-flows"
    return base / f"{flow_cache_key(netlist, arch, seed, thermal_weight)}.pkl"


@contextmanager
def _cache_lock(path: Path) -> Iterator[None]:
    """Exclusive advisory lock serialising compute-and-store per cache entry.

    Concurrent sweep workers that need the same mapping queue here: the
    first pays the P&R cost and writes the pickle, the rest wake up and
    read it — no duplicated work, no interleaved writes.  Degrades to a
    no-op where ``fcntl`` is unavailable (atomic rename still prevents
    torn files; work may then be duplicated, never corrupted).
    """
    if fcntl is None:
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _quarantine(path: Path) -> None:
    """Move a corrupt/stale pickle aside (kept for post-mortem, not retried)."""
    _count_cache("quarantine", path=path.name)
    try:
        os.replace(path, path.with_name(path.name + ".corrupt"))
    except OSError:
        path.unlink(missing_ok=True)


def _load_cached(path: Path) -> Optional[FlowResult]:
    """Load a pickled flow result; quarantine anything unreadable."""
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            result = pickle.load(handle)
        if not isinstance(result, FlowResult):
            raise TypeError(f"expected FlowResult, got {type(result)!r}")
        return result
    except Exception:
        _quarantine(path)
        return None


def _atomic_store(result: FlowResult, path: Path) -> None:
    """Write the pickle to a tmp file, then rename into place.

    ``os.replace`` is atomic on POSIX, so readers only ever observe a
    complete pickle even if the writer is killed mid-dump.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def run_flow(
    netlist: Netlist,
    arch: Optional[ArchParams] = None,
    seed: int = 7,
    placement_effort: float = 1.0,
    use_cache: bool = True,
    timing_driven: bool = False,
    thermal_weight: float = 0.0,
) -> FlowResult:
    """Pack, place and route ``netlist`` on the architecture.

    The layout is auto-sized to the design (VPR-style).  Deterministic for
    a given (netlist, arch, seed, thermal_weight).  ``timing_driven=True``
    weights the placement by structural net criticality
    (:mod:`repro.cad.criticality`), shortening deep register-to-register
    paths.  ``thermal_weight > 0`` blends the thermal proxy objective of
    :mod:`repro.cad.thermal_place` into the anneal (0 is the legacy
    wirelength/timing-only placement, bit-identical to before the knob
    existed).
    """
    arch = arch or ArchParams()
    cache_seed = seed + (_TIMING_DRIVEN_SEED_OFFSET if timing_driven else 0)
    key = (netlist.name, arch, cache_seed, thermal_weight)
    if use_cache and key in _FLOW_CACHE:
        _count_cache("hit", source="memory", netlist=netlist.name)
        return _FLOW_CACHE[key]
    disk_path = (
        _disk_cache_path(netlist, arch, cache_seed, thermal_weight)
        if use_cache
        else None
    )
    if disk_path is None:
        return _compute_flow(
            netlist, arch, seed, placement_effort, timing_driven,
            thermal_weight, memory_key=key if use_cache else None,
        )
    # Serialise compute-and-store per entry so parallel sweep workers share
    # one P&R instead of racing to duplicate (or corrupt) it.
    with _cache_lock(disk_path):
        result = _load_cached(disk_path)
        if result is not None:
            _count_cache("hit", source="disk", netlist=netlist.name)
        else:
            result = _compute_flow(
                netlist, arch, seed, placement_effort, timing_driven,
                thermal_weight, memory_key=None,
            )
            _atomic_store(result, disk_path)
    _FLOW_CACHE[key] = result
    return result


def _compute_flow(
    netlist: Netlist,
    arch: ArchParams,
    seed: int,
    placement_effort: float,
    timing_driven: bool,
    thermal_weight: float,
    memory_key: Optional[Tuple[str, ArchParams, int, float]],
) -> FlowResult:
    """The uncached pack -> place -> route -> STA pipeline."""
    _count_cache("miss", netlist=netlist.name, seed=seed)
    compute_span = observe.span(
        "flow.compute",
        netlist=netlist.name,
        seed=seed,
        timing_driven=timing_driven,
        thermal_weight=thermal_weight,
    )
    with compute_span:
        with observe.span("flow.pack"):
            packed = pack_netlist(netlist, arch)
        counts = {
            TileType.CLB: 0,
            TileType.BRAM: 0,
            TileType.DSP: 0,
            TileType.IO: 0,
        }
        for cluster in packed.clusters:
            counts[cluster.type] += 1
        layout = FabricLayout.for_netlist(
            arch,
            n_clb=counts[TileType.CLB],
            n_bram=counts[TileType.BRAM],
            n_dsp=counts[TileType.DSP],
            n_io=counts[TileType.IO],
        )
        with observe.span("flow.place", thermal_weight=thermal_weight):
            net_weights = criticality_weights(netlist) if timing_driven else None
            placement = place(
                packed, layout, seed=seed, effort=placement_effort,
                net_weights=net_weights, thermal_weight=thermal_weight,
            )
        # VPR-style channel-width adaptation: retry with wider channels when
        # PathFinder cannot resolve congestion.
        width = arch.routed_channel_tracks
        routing = None
        last_error: Optional[RoutingError] = None
        attempts = 0
        with observe.span("flow.route") as route_span:
            for _attempt in range(4):
                attempts += 1
                graph = build_rr_graph(
                    arch.with_changes(routed_channel_tracks=width), layout
                )
                try:
                    routing = route(packed, placement, graph)
                    break
                except RoutingError as error:
                    last_error = error
                    width = int(width * 1.5)
            route_span.set_attrs(attempts=attempts, tracks=width)
        if routing is None:
            raise RoutingError(
                f"{netlist.name}: unroutable even at {width} tracks"
            ) from last_error
        with observe.span("flow.sta_build"):
            timing = TimingAnalyzer(packed, placement, routing, layout)
        compute_span.set_attrs(n_tiles=layout.n_tiles)
    result = FlowResult(
        netlist, arch, layout, packed, placement, routing, timing,
        cache_key=flow_cache_key_for(
            netlist, arch, seed, timing_driven, thermal_weight
        ),
    )
    if memory_key is not None:
        _FLOW_CACHE[memory_key] = result
    return result
