"""End-to-end CAD flow driver: pack -> place -> route -> timing graph.

:func:`run_flow` produces a :class:`FlowResult`, the placed-and-routed
design object Algorithm 1 consumes.  Results are cached per
(netlist name, architecture, seed): the implementation is independent of
the temperature assumptions, so every experiment (guardbanding at several
ambients, corner-fabric comparisons) reuses the same mapping — exactly as
the paper evaluates one P&R per benchmark under different timing regimes.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.arch.layout import FabricLayout, TileType
from repro.arch.params import ArchParams
from repro.arch.rrgraph import RRGraph, build_rr_graph
from repro.cad.criticality import criticality_weights
from repro.cad.pack import PackedNetlist, pack_netlist
from repro.cad.place import Placement, place
from repro.cad.route import RoutingError, RoutingResult, route
from repro.cad.timing import TimingAnalyzer
from repro.netlists.netlist import BlockType, Netlist


@dataclass
class FlowResult:
    """A placed-and-routed design plus its timing analyzer."""

    netlist: Netlist
    arch: ArchParams
    layout: FabricLayout
    packed: PackedNetlist
    placement: Placement
    routing: RoutingResult
    timing: TimingAnalyzer

    @property
    def n_tiles(self) -> int:
        return self.layout.n_tiles


_FLOW_CACHE: Dict[Tuple[str, ArchParams, int], FlowResult] = {}

FLOW_CACHE_VERSION = 3
"""Bump to invalidate on-disk flow caches after algorithmic changes.

Version 3: TimingAnalyzer grew the flattened hot-loop element arrays
(``_build_flat_arrays``); older pickles lack them.
"""


def _disk_cache_path(netlist: Netlist, arch: ArchParams, seed: int) -> Optional[Path]:
    """Location of the pickled flow result, or ``None`` if caching is off.

    P&R of the full suite takes minutes; experiments re-use identical
    mappings, so results persist under ``$REPRO_CACHE_DIR`` (default
    ``~/.cache/repro-flows``).  Set ``REPRO_CACHE_DIR=off`` to disable.
    """
    root = os.environ.get("REPRO_CACHE_DIR", "")
    if root.lower() == "off":
        return None
    base = Path(root) if root else Path.home() / ".cache" / "repro-flows"
    key = (
        f"v{FLOW_CACHE_VERSION}_{netlist.name}_b{netlist.n_blocks}"
        f"_n{netlist.n_nets}_s{seed}_a{abs(hash(arch)) % 10**12}"
    )
    return base / f"{key}.pkl"


def run_flow(
    netlist: Netlist,
    arch: Optional[ArchParams] = None,
    seed: int = 7,
    placement_effort: float = 1.0,
    use_cache: bool = True,
    timing_driven: bool = False,
) -> FlowResult:
    """Pack, place and route ``netlist`` on the architecture.

    The layout is auto-sized to the design (VPR-style).  Deterministic for
    a given (netlist, arch, seed).  ``timing_driven=True`` weights the
    placement by structural net criticality (:mod:`repro.cad.criticality`),
    shortening deep register-to-register paths.
    """
    arch = arch or ArchParams()
    # timing_driven folds into the cache key through the seed namespace.
    key = (netlist.name, arch, seed + (1_000_003 if timing_driven else 0))
    if use_cache and key in _FLOW_CACHE:
        return _FLOW_CACHE[key]
    cache_seed = seed + (1_000_003 if timing_driven else 0)
    disk_path = _disk_cache_path(netlist, arch, cache_seed) if use_cache else None
    if disk_path is not None and disk_path.exists():
        try:
            with open(disk_path, "rb") as handle:
                result = pickle.load(handle)
            _FLOW_CACHE[key] = result
            return result
        except Exception:
            disk_path.unlink(missing_ok=True)  # stale/corrupt cache entry

    packed = pack_netlist(netlist, arch)
    counts = {
        TileType.CLB: 0,
        TileType.BRAM: 0,
        TileType.DSP: 0,
        TileType.IO: 0,
    }
    for cluster in packed.clusters:
        counts[cluster.type] += 1
    layout = FabricLayout.for_netlist(
        arch,
        n_clb=counts[TileType.CLB],
        n_bram=counts[TileType.BRAM],
        n_dsp=counts[TileType.DSP],
        n_io=counts[TileType.IO],
    )
    net_weights = criticality_weights(netlist) if timing_driven else None
    placement = place(
        packed, layout, seed=seed, effort=placement_effort,
        net_weights=net_weights,
    )
    # VPR-style channel-width adaptation: retry with wider channels when
    # PathFinder cannot resolve congestion.
    width = arch.routed_channel_tracks
    routing = None
    last_error: Optional[RoutingError] = None
    for _attempt in range(4):
        graph = build_rr_graph(
            arch.with_changes(routed_channel_tracks=width), layout
        )
        try:
            routing = route(packed, placement, graph)
            break
        except RoutingError as error:
            last_error = error
            width = int(width * 1.5)
    if routing is None:
        raise RoutingError(
            f"{netlist.name}: unroutable even at {width} tracks"
        ) from last_error
    timing = TimingAnalyzer(packed, placement, routing, layout)
    result = FlowResult(netlist, arch, layout, packed, placement, routing, timing)
    if use_cache:
        _FLOW_CACHE[key] = result
        if disk_path is not None:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            with open(disk_path, "wb") as handle:
                pickle.dump(result, handle)
    return result
