"""Packing: LUT/FF pairs into BLEs, BLEs into logic clusters.

Follows the classic AAPack/T-VPack recipe at reduced complexity:

1. A flip-flop whose data input is a LUT output shared with no other FF is
   fused with that LUT into one BLE (the LUT's output mux exposes both the
   combinational and the registered signal).
2. Clusters are grown greedily: seed with the highest-connectivity
   unclustered BLE, then repeatedly absorb the BLE sharing the most nets
   with the cluster, subject to the cluster-size (N) and cluster-input (I)
   constraints.

BRAM and DSP blocks become single-block clusters of their own tile type;
IO pads become single-pad IO clusters (several share one IO tile at
placement, per the tile capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.arch.layout import TileType
from repro.arch.params import ArchParams
from repro.netlists.netlist import BlockType, Netlist


@dataclass
class Ble:
    """Basic logic element: an optional LUT fused with an optional FF."""

    id: int
    lut: Optional[int]
    ff: Optional[int]


@dataclass
class Cluster:
    """A placeable unit: logic cluster, hard block, or IO pad group."""

    id: int
    type: TileType
    block_ids: List[int] = field(default_factory=list)
    input_nets: Set[int] = field(default_factory=set)
    """Nets entering the cluster from outside."""
    output_nets: Set[int] = field(default_factory=set)
    """Nets driven inside and consumed outside."""


@dataclass
class PackedNetlist:
    """Packing result: clusters plus block-to-cluster lookup."""

    netlist: Netlist
    arch: ArchParams
    clusters: List[Cluster]
    cluster_of_block: Dict[int, int]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for cluster in self.clusters:
            out[cluster.type.value] = out.get(cluster.type.value, 0) + 1
        return out

    def clusters_of_type(self, type_: TileType) -> List[Cluster]:
        return [c for c in self.clusters if c.type == type_]


def pack_netlist(netlist: Netlist, arch: ArchParams) -> PackedNetlist:
    """Pack a technology-mapped netlist for the given architecture."""
    netlist.validate()
    bles = _form_bles(netlist)
    clusters: List[Cluster] = []
    cluster_of_block: Dict[int, int] = {}

    # -- logic clusters -------------------------------------------------------
    unclustered: Set[int] = {b.id for b in bles}
    ble_nets = [_ble_nets(netlist, b) for b in bles]
    net_to_bles: Dict[int, Set[int]] = {}
    for ble in bles:
        for net_id in ble_nets[ble.id][0] | ble_nets[ble.id][1]:
            net_to_bles.setdefault(net_id, set()).add(ble.id)

    while unclustered:
        seed = max(
            unclustered,
            key=lambda b: (len(ble_nets[b][0]) + len(ble_nets[b][1]), -b),
        )
        members = [seed]
        unclustered.discard(seed)
        while len(members) < arch.cluster_size:
            candidate = _best_candidate(
                members, unclustered, ble_nets, net_to_bles, netlist, arch
            )
            if candidate is None:
                break
            members.append(candidate)
            unclustered.discard(candidate)
        cluster = _make_cluster(len(clusters), TileType.CLB, members, bles, netlist)
        clusters.append(cluster)
        for block_id in cluster.block_ids:
            cluster_of_block[block_id] = cluster.id

    # -- hard blocks and IO ----------------------------------------------------
    type_map = {
        BlockType.BRAM: TileType.BRAM,
        BlockType.DSP: TileType.DSP,
        BlockType.INPUT: TileType.IO,
        BlockType.OUTPUT: TileType.IO,
    }
    for block in netlist.blocks:
        if block.type not in type_map:
            continue
        cluster = Cluster(len(clusters), type_map[block.type], [block.id])
        cluster.input_nets = set(block.input_nets)
        cluster.output_nets = set(block.output_nets)
        clusters.append(cluster)
        cluster_of_block[block.id] = cluster.id

    packed = PackedNetlist(netlist, arch, clusters, cluster_of_block)
    _check_packing(packed)
    return packed


def _form_bles(netlist: Netlist) -> List[Ble]:
    """Fuse each FF with its driving LUT where possible."""
    bles: List[Ble] = []
    fused_ffs: Set[int] = set()
    claimed_luts: Dict[int, int] = {}

    for ff in netlist.blocks_of_type(BlockType.FF):
        driver_net = netlist.nets[ff.input_nets[0]]
        driver = netlist.blocks[driver_net.driver]
        # Strict T-VPack fusion: only when the FF is the sole consumer of
        # the LUT output, so the fused BLE exposes exactly one output and
        # the cluster never needs more than N output pins.
        if (
            driver.type == BlockType.LUT
            and driver.id not in claimed_luts
            and driver_net.sinks == [ff.id]
        ):
            claimed_luts[driver.id] = ff.id
            fused_ffs.add(ff.id)

    for lut in netlist.blocks_of_type(BlockType.LUT):
        bles.append(Ble(len(bles), lut.id, claimed_luts.get(lut.id)))
    for ff in netlist.blocks_of_type(BlockType.FF):
        if ff.id not in fused_ffs:
            bles.append(Ble(len(bles), None, ff.id))
    return bles


def _ble_nets(netlist: Netlist, ble: Ble) -> Tuple[Set[int], Set[int]]:
    """(external input nets, output nets) of a BLE."""
    inputs: Set[int] = set()
    outputs: Set[int] = set()
    internal: Set[int] = set()
    if ble.lut is not None:
        lut = netlist.blocks[ble.lut]
        inputs |= set(lut.input_nets)
        outputs |= set(lut.output_nets)
        if ble.ff is not None:
            internal |= set(lut.output_nets) & set(netlist.blocks[ble.ff].input_nets)
    if ble.ff is not None:
        ff = netlist.blocks[ble.ff]
        inputs |= set(ff.input_nets) - internal
        outputs |= set(ff.output_nets)
    return inputs, outputs


def _best_candidate(
    members: List[int],
    unclustered: Set[int],
    ble_nets: List[Tuple[Set[int], Set[int]]],
    net_to_bles: Dict[int, Set[int]],
    netlist: Netlist,
    arch: ArchParams,
) -> Optional[int]:
    """Highest-affinity feasible BLE to absorb next, or ``None``."""
    member_nets: Set[int] = set()
    for m in members:
        member_nets |= ble_nets[m][0] | ble_nets[m][1]
    candidates: Dict[int, int] = {}
    for net_id in member_nets:
        for ble_id in net_to_bles.get(net_id, ()):
            if ble_id in unclustered:
                candidates[ble_id] = candidates.get(ble_id, 0) + 1
    ordering = sorted(candidates.items(), key=lambda kv: (-kv[1], kv[0]))
    if not ordering:
        # Nothing connected: absorb any unclustered BLE to fill the cluster.
        ordering = [(min(unclustered), 0)] if unclustered else []
    for ble_id, _gain in ordering:
        if _inputs_after_adding(members + [ble_id], ble_nets) <= arch.cluster_inputs:
            return ble_id
    return None


def _inputs_after_adding(
    members: List[int], ble_nets: List[Tuple[Set[int], Set[int]]]
) -> int:
    inputs: Set[int] = set()
    outputs: Set[int] = set()
    for m in members:
        inputs |= ble_nets[m][0]
        outputs |= ble_nets[m][1]
    return len(inputs - outputs)


def _make_cluster(
    cluster_id: int,
    type_: TileType,
    members: List[int],
    bles: List[Ble],
    netlist: Netlist,
) -> Cluster:
    block_ids: List[int] = []
    inputs: Set[int] = set()
    outputs: Set[int] = set()
    for m in members:
        ble = bles[m]
        if ble.lut is not None:
            block_ids.append(ble.lut)
        if ble.ff is not None:
            block_ids.append(ble.ff)
    block_set = set(block_ids)
    for block_id in block_ids:
        block = netlist.blocks[block_id]
        for net_id in block.input_nets:
            if netlist.nets[net_id].driver not in block_set:
                inputs.add(net_id)
        for net_id in block.output_nets:
            if any(s not in block_set for s in netlist.nets[net_id].sinks):
                outputs.add(net_id)
    return Cluster(cluster_id, type_, block_ids, inputs, outputs)


def _check_packing(packed: PackedNetlist) -> None:
    """Every block in exactly one cluster; constraints respected."""
    seen: Set[int] = set()
    for cluster in packed.clusters:
        for block_id in cluster.block_ids:
            if block_id in seen:
                raise ValueError(
                    f"block {block_id} packed into multiple clusters"
                )
            seen.add(block_id)
        if cluster.type == TileType.CLB:
            n_luts = sum(
                1
                for b in cluster.block_ids
                if packed.netlist.blocks[b].type == BlockType.LUT
            )
            if n_luts > packed.arch.cluster_size:
                raise ValueError(
                    f"cluster {cluster.id} holds {n_luts} LUTs "
                    f"(N = {packed.arch.cluster_size})"
                )
            if len(cluster.input_nets) > packed.arch.cluster_inputs:
                raise ValueError(
                    f"cluster {cluster.id} needs {len(cluster.input_nets)} inputs "
                    f"(I = {packed.arch.cluster_inputs})"
                )
    if len(seen) != packed.netlist.n_blocks:
        raise ValueError("some blocks were not packed")
