"""Simulated-annealing placement (VPR-style).

Wirelength-driven anneal over cluster locations: half-perimeter wirelength
cost, adaptive temperature schedule driven by the acceptance rate, and a
shrinking range window.  Deterministic for a given seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.arch.layout import FabricLayout, TileType
from repro.cad.pack import Cluster, PackedNetlist


@dataclass
class Placement:
    """Cluster locations plus per-tile occupancy."""

    layout: FabricLayout
    location: Dict[int, Tuple[int, int]]
    """cluster id -> (x, y)."""
    occupants: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)

    def tile_of_cluster(self, cluster_id: int) -> Tuple[int, int]:
        return self.location[cluster_id]

    def validate(self, packed: PackedNetlist) -> None:
        for cluster in packed.clusters:
            if cluster.id not in self.location:
                raise ValueError(f"cluster {cluster.id} not placed")
            x, y = self.location[cluster.id]
            tile = self.layout.tile(x, y)
            if tile.type != cluster.type:
                raise ValueError(
                    f"cluster {cluster.id} ({cluster.type.value}) placed on "
                    f"{tile.type.value} tile ({x}, {y})"
                )
        for key, occupants in self.occupants.items():
            cap = self.layout.tile(*key).capacity
            if len(occupants) > cap:
                raise ValueError(
                    f"tile {key} over capacity: {len(occupants)} > {cap}"
                )


def place(
    packed: PackedNetlist,
    layout: FabricLayout,
    seed: int = 7,
    effort: float = 1.0,
    net_weights: Optional[Dict[int, float]] = None,
) -> Placement:
    """Anneal the clusters of ``packed`` onto ``layout``.

    ``effort`` scales the number of moves per temperature (1.0 is the
    VPR-like default; tests use less).  ``net_weights`` (netlist net id ->
    weight) enables timing-driven placement: weighted half-perimeter
    wirelength pulls timing-critical nets short at the expense of slack-rich
    ones (see :mod:`repro.cad.criticality`).
    """
    rng = np.random.default_rng(seed)
    placement = _initial_placement(packed, layout, rng)
    nets = _placement_nets(packed, net_weights)
    if not nets or len(packed.clusters) <= 1:
        return placement

    cost = sum(_net_hpwl(net, placement.location) for net in nets)
    nets_of_cluster: Dict[int, List[int]] = {}
    for net_index, (_weight, clusters) in enumerate(nets):
        for cluster_id in clusters:
            nets_of_cluster.setdefault(cluster_id, []).append(net_index)

    movable = [c.id for c in packed.clusters]
    n = len(movable)
    moves_per_t = max(16, int(effort * 5 * n**1.33))
    # Initial temperature: VPR heuristic — std-dev of a random-move sample.
    t = _initial_temperature(packed, layout, placement, nets, nets_of_cluster, rng)
    range_limit = float(max(layout.width, layout.height))

    while t > 0.002 * max(cost, 1e-9) / max(len(nets), 1):
        accepted = 0
        for _ in range(moves_per_t):
            delta, apply_move = _propose(
                packed, layout, placement, nets, nets_of_cluster, rng, range_limit
            )
            if apply_move is None:
                continue
            if delta <= 0 or rng.random() < math.exp(-delta / max(t, 1e-30)):
                apply_move()
                cost += delta
                accepted += 1
        rate = accepted / moves_per_t
        # VPR schedule: cool slowly in the productive 15-80 % band.
        if rate > 0.96:
            alpha = 0.5
        elif rate > 0.8:
            alpha = 0.9
        elif rate > 0.15:
            alpha = 0.95
        else:
            alpha = 0.8
        t *= alpha
        range_limit = min(
            float(max(layout.width, layout.height)),
            max(1.0, range_limit * (1.0 - 0.44 + rate)),
        )

    placement.validate(packed)
    return placement


def _initial_placement(
    packed: PackedNetlist, layout: FabricLayout, rng: np.random.Generator
) -> Placement:
    location: Dict[int, Tuple[int, int]] = {}
    occupants: Dict[Tuple[int, int], List[int]] = {}
    slots: Dict[TileType, List[Tuple[int, int]]] = {}
    for tile in layout.tiles():
        for _ in range(tile.capacity):
            slots.setdefault(tile.type, []).append((tile.x, tile.y))
    for type_, available in slots.items():
        rng.shuffle(available)
    cursor: Dict[TileType, int] = {t: 0 for t in slots}
    for cluster in packed.clusters:
        pool = slots.get(cluster.type, [])
        index = cursor.get(cluster.type, 0)
        if index >= len(pool):
            raise ValueError(
                f"not enough {cluster.type.value} tiles for cluster {cluster.id}"
            )
        xy = pool[index]
        cursor[cluster.type] = index + 1
        location[cluster.id] = xy
        occupants.setdefault(xy, []).append(cluster.id)
    return Placement(layout, location, occupants)


def _placement_nets(
    packed: PackedNetlist, net_weights: Optional[Dict[int, float]] = None
) -> List[Tuple[float, List[int]]]:
    """(weight, cluster ids) per net (single-cluster nets dropped)."""
    nets: List[Tuple[float, List[int]]] = []
    for net in packed.netlist.nets:
        clusters: Set[int] = {packed.cluster_of_block[net.driver]}
        clusters |= {packed.cluster_of_block[s] for s in net.sinks}
        if len(clusters) > 1:
            weight = 1.0 if net_weights is None else net_weights.get(net.id, 1.0)
            nets.append((weight, sorted(clusters)))
    return nets


def _net_hpwl(
    net: Tuple[float, List[int]], location: Dict[int, Tuple[int, int]]
) -> float:
    weight, clusters = net
    xs = [location[c][0] for c in clusters]
    ys = [location[c][1] for c in clusters]
    return weight * ((max(xs) - min(xs)) + (max(ys) - min(ys)))


def _initial_temperature(packed, layout, placement, nets, nets_of_cluster, rng):
    deltas = []
    for _ in range(min(200, 10 * len(packed.clusters))):
        delta, apply_move = _propose(
            packed, layout, placement, nets, nets_of_cluster, rng,
            float(max(layout.width, layout.height)),
        )
        if apply_move is not None:
            apply_move()  # VPR applies the sampling moves too
            deltas.append(delta)
    if not deltas:
        return 1.0
    return 20.0 * float(np.std(deltas)) + 1e-9


def _propose(packed, layout, placement, nets, nets_of_cluster, rng, range_limit):
    """Propose a move; returns (delta_cost, apply_callable | None)."""
    cluster = packed.clusters[int(rng.integers(0, len(packed.clusters)))]
    x0, y0 = placement.location[cluster.id]
    limit = max(1, int(range_limit))
    x1 = int(np.clip(x0 + rng.integers(-limit, limit + 1), 0, layout.width - 1))
    y1 = int(np.clip(y0 + rng.integers(-limit, limit + 1), 0, layout.height - 1))
    if (x1, y1) == (x0, y0):
        return 0.0, None
    target = layout.tile(x1, y1)
    if target.type != cluster.type:
        return 0.0, None

    occupants = placement.occupants.setdefault((x1, y1), [])
    swap_with: Optional[int] = None
    if len(occupants) >= target.capacity:
        swap_with = occupants[int(rng.integers(0, len(occupants)))]

    moved = [(cluster.id, (x0, y0), (x1, y1))]
    if swap_with is not None:
        moved.append((swap_with, (x1, y1), (x0, y0)))

    affected: Set[int] = set()
    for cluster_id, _old, _new in moved:
        affected |= set(nets_of_cluster.get(cluster_id, ()))
    before = sum(_net_hpwl(nets[i], placement.location) for i in affected)
    trial = dict(placement.location)
    for cluster_id, _old, new in moved:
        trial[cluster_id] = new
    after = sum(_net_hpwl(nets[i], trial) for i in affected)
    delta = after - before

    def apply_move() -> None:
        for cluster_id, old, new in moved:
            placement.location[cluster_id] = new
            placement.occupants[old].remove(cluster_id)
            placement.occupants.setdefault(new, []).append(cluster_id)

    return delta, apply_move
