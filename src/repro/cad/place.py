"""Simulated-annealing placement (VPR-style).

Wirelength-driven anneal over cluster locations: half-perimeter wirelength
cost, adaptive temperature schedule driven by the acceptance rate, and a
shrinking range window.  Deterministic for a given seed.

With ``thermal_weight > 0`` the objective blends in the incremental
thermal proxy of :mod:`repro.cad.thermal_place`, periodically calibrated
against the real thermal solver; ``thermal_weight=0`` takes exactly the
legacy wirelength-only code path (bit-identical placements).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.activity.ace import ActivityEstimate, estimate_activity
from repro.arch.layout import FabricLayout, TileType
from repro.cad.pack import Cluster, PackedNetlist
from repro.cad.thermal_place import ThermalPlaceStats, ThermalProxy

INTEGRITY_CHECK_INTERVAL = 8
"""Temperature levels between full-cost integrity recomputations."""

_INTEGRITY_REL_TOL = 1e-6
"""Allowed relative disagreement between the incrementally-maintained
cost and a from-scratch recomputation before the anneal fails loudly."""


class PlacementIntegrityError(RuntimeError):
    """Incrementally-maintained anneal cost drifted from the true cost.

    Raised instead of silently annealing a stale objective; indicates a
    bug in the incremental bookkeeping (HPWL or thermal proxy), never a
    property of the design."""


@dataclass
class Placement:
    """Cluster locations plus per-tile occupancy."""

    layout: FabricLayout
    location: Dict[int, Tuple[int, int]]
    """cluster id -> (x, y)."""
    occupants: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    thermal_stats: Optional[ThermalPlaceStats] = None
    """Proxy/calibration telemetry when thermal-aware (``None`` otherwise)."""

    def tile_of_cluster(self, cluster_id: int) -> Tuple[int, int]:
        return self.location[cluster_id]

    def validate(self, packed: PackedNetlist) -> None:
        for cluster in packed.clusters:
            if cluster.id not in self.location:
                raise ValueError(f"cluster {cluster.id} not placed")
            x, y = self.location[cluster.id]
            tile = self.layout.tile(x, y)
            if tile.type != cluster.type:
                raise ValueError(
                    f"cluster {cluster.id} ({cluster.type.value}) placed on "
                    f"{tile.type.value} tile ({x}, {y})"
                )
        for key, occupants in self.occupants.items():
            cap = self.layout.tile(*key).capacity
            if len(occupants) > cap:
                raise ValueError(
                    f"tile {key} over capacity: {len(occupants)} > {cap}"
                )


def place(
    packed: PackedNetlist,
    layout: FabricLayout,
    seed: int = 7,
    effort: float = 1.0,
    net_weights: Optional[Dict[int, float]] = None,
    thermal_weight: float = 0.0,
    activity: Optional[ActivityEstimate] = None,
) -> Placement:
    """Anneal the clusters of ``packed`` onto ``layout``.

    ``effort`` scales the number of moves per temperature (1.0 is the
    VPR-like default; tests use less).  ``net_weights`` (netlist net id ->
    weight) enables timing-driven placement: weighted half-perimeter
    wirelength pulls timing-critical nets short at the expense of slack-rich
    ones (see :mod:`repro.cad.criticality`).

    ``thermal_weight`` blends the incremental thermal proxy of
    :mod:`repro.cad.thermal_place` into the objective: the thermal term
    is normalised so that at weight ``w`` it contributes ``w`` times the
    initial wirelength cost.  The proxy is calibrated against the real
    thermal solver once per temperature level.  ``activity`` supplies the
    per-net switching activities the proxy's density map is built from
    (estimated from the netlist when omitted).  ``thermal_weight=0``
    bypasses the proxy entirely and is bit-identical to the legacy
    wirelength-only placer.
    """
    if not (math.isfinite(thermal_weight) and thermal_weight >= 0.0):
        raise ValueError(
            f"thermal_weight must be finite and >= 0, got {thermal_weight}"
        )
    rng = np.random.default_rng(seed)
    placement = _initial_placement(packed, layout, rng)
    nets = _placement_nets(packed, net_weights)
    if not nets or len(packed.clusters) <= 1:
        return placement

    hpwl = sum(_net_hpwl(net, placement.location) for net in nets)
    nets_of_cluster: Dict[int, List[int]] = {}
    for net_index, (_weight, clusters) in enumerate(nets):
        for cluster_id in clusters:
            nets_of_cluster.setdefault(cluster_id, []).append(net_index)

    proxy: Optional[ThermalProxy] = None
    if thermal_weight > 0.0:
        if activity is None:
            activity = estimate_activity(packed.netlist)
        proxy = ThermalProxy(layout, packed, activity, placement.location)
        proxy.calibrate(force=True)
        # Normalise: at weight w the thermal term starts at w x the
        # initial wirelength cost, so w is a dimensionless blend knob.
        proxy.weight = thermal_weight * hpwl / max(proxy.raw_cost, 1e-12)

    movable = [c.id for c in packed.clusters]
    n = len(movable)
    moves_per_t = max(16, int(effort * 5 * n**1.33))
    # Initial temperature: VPR heuristic — std-dev of a random-move sample.
    # The sampling moves are applied (as VPR does); their summed HPWL delta
    # keeps the tracked hpwl true for the integrity guard.
    hpwl0 = hpwl
    t, sampled_delta = _initial_temperature(
        packed, layout, placement, nets, nets_of_cluster, rng, proxy
    )
    hpwl += sampled_delta
    # Termination-threshold baseline: the legacy placer seeded ``cost``
    # before the sampling moves and never resynced, so thermal_weight=0
    # must keep that exact baseline to stay bit-identical.
    cost = hpwl0 if proxy is None else hpwl + proxy.weighted_cost()
    range_limit = float(max(layout.width, layout.height))

    levels = 0
    while t > 0.002 * max(cost, 1e-9) / max(len(nets), 1):
        accepted = 0
        for _ in range(moves_per_t):
            delta, hpwl_delta, apply_move = _propose(
                packed, layout, placement, nets, nets_of_cluster, rng,
                range_limit, proxy,
            )
            if apply_move is None:
                continue
            if delta <= 0 or rng.random() < math.exp(-delta / max(t, 1e-30)):
                apply_move()
                cost += delta
                hpwl += hpwl_delta
                accepted += 1
        rate = accepted / moves_per_t
        # VPR schedule: cool slowly in the productive 15-80 % band.
        if rate > 0.96:
            alpha = 0.5
        elif rate > 0.8:
            alpha = 0.9
        elif rate > 0.15:
            alpha = 0.95
        else:
            alpha = 0.8
        t *= alpha
        range_limit = _shrunk_range_limit(
            range_limit, rate, max(layout.width, layout.height)
        )
        levels += 1
        if proxy is not None:
            # One real solve per level: splu is factored once, each
            # calibration is a cheap back-substitution.
            proxy.calibrate()
        if levels % INTEGRITY_CHECK_INTERVAL == 0:
            _check_cost_integrity(hpwl, nets, placement.location, proxy)

    _check_cost_integrity(hpwl, nets, placement.location, proxy)
    if proxy is not None:
        proxy.calibrate()
        placement.thermal_stats = proxy.stats(thermal_weight)
    placement.validate(packed)
    return placement


def _shrunk_range_limit(
    range_limit: float, rate: float, max_dim: int | float
) -> float:
    """Next move-window radius from this level's acceptance rate.

    VPR's schedule: the window shrinks while acceptance is below 44 %
    and re-expands (clamped to the die) when moves are mostly accepted,
    holding the anneal near the productive acceptance band.
    """
    return min(
        float(max_dim),
        max(1.0, range_limit * (1.0 - 0.44 + rate)),
    )


def _check_cost_integrity(
    tracked_hpwl: float,
    nets: List[Tuple[float, List[int]]],
    location: Dict[int, Tuple[int, int]],
    proxy: Optional[ThermalProxy],
) -> None:
    """Fail loudly if the incremental cost drifted from a full recompute."""
    full_hpwl = sum(_net_hpwl(net, location) for net in nets)
    tolerance = _INTEGRITY_REL_TOL * max(1.0, abs(full_hpwl))
    if abs(tracked_hpwl - full_hpwl) > tolerance:
        raise PlacementIntegrityError(
            f"incremental HPWL {tracked_hpwl!r} drifted from recomputed "
            f"{full_hpwl!r} (tolerance {tolerance:g})"
        )
    if proxy is not None:
        full_raw = proxy.full_raw_cost()
        tolerance = _INTEGRITY_REL_TOL * max(1.0, abs(full_raw))
        if abs(proxy.raw_cost - full_raw) > tolerance:
            raise PlacementIntegrityError(
                f"incremental thermal proxy cost {proxy.raw_cost!r} drifted "
                f"from recomputed {full_raw!r} (tolerance {tolerance:g})"
            )


def _initial_placement(
    packed: PackedNetlist, layout: FabricLayout, rng: np.random.Generator
) -> Placement:
    location: Dict[int, Tuple[int, int]] = {}
    occupants: Dict[Tuple[int, int], List[int]] = {}
    slots: Dict[TileType, List[Tuple[int, int]]] = {}
    for tile in layout.tiles():
        for _ in range(tile.capacity):
            slots.setdefault(tile.type, []).append((tile.x, tile.y))
    for type_, available in slots.items():
        rng.shuffle(available)
    cursor: Dict[TileType, int] = {t: 0 for t in slots}
    for cluster in packed.clusters:
        pool = slots.get(cluster.type, [])
        index = cursor.get(cluster.type, 0)
        if index >= len(pool):
            raise ValueError(
                f"not enough {cluster.type.value} tiles for cluster {cluster.id}"
            )
        xy = pool[index]
        cursor[cluster.type] = index + 1
        location[cluster.id] = xy
        occupants.setdefault(xy, []).append(cluster.id)
    return Placement(layout, location, occupants)


def _placement_nets(
    packed: PackedNetlist, net_weights: Optional[Dict[int, float]] = None
) -> List[Tuple[float, List[int]]]:
    """(weight, cluster ids) per net (single-cluster nets dropped)."""
    nets: List[Tuple[float, List[int]]] = []
    for net in packed.netlist.nets:
        clusters: Set[int] = {packed.cluster_of_block[net.driver]}
        clusters |= {packed.cluster_of_block[s] for s in net.sinks}
        if len(clusters) > 1:
            weight = 1.0 if net_weights is None else net_weights.get(net.id, 1.0)
            nets.append((weight, sorted(clusters)))
    return nets


def _net_hpwl(
    net: Tuple[float, List[int]], location: Dict[int, Tuple[int, int]]
) -> float:
    weight, clusters = net
    xs = [location[c][0] for c in clusters]
    ys = [location[c][1] for c in clusters]
    return weight * ((max(xs) - min(xs)) + (max(ys) - min(ys)))


def _initial_temperature(
    packed, layout, placement, nets, nets_of_cluster, rng, proxy=None
):
    """(initial T, summed HPWL delta of the applied sampling moves)."""
    deltas = []
    applied_hpwl = 0.0
    for _ in range(min(200, 10 * len(packed.clusters))):
        delta, hpwl_delta, apply_move = _propose(
            packed, layout, placement, nets, nets_of_cluster, rng,
            float(max(layout.width, layout.height)), proxy,
        )
        if apply_move is not None:
            apply_move()  # VPR applies the sampling moves too
            deltas.append(delta)
            applied_hpwl += hpwl_delta
    if not deltas:
        return 1.0, applied_hpwl
    return 20.0 * float(np.std(deltas)) + 1e-9, applied_hpwl


def _propose(
    packed, layout, placement, nets, nets_of_cluster, rng, range_limit,
    proxy=None,
):
    """Propose a move; returns (delta_cost, delta_hpwl, apply | None).

    ``delta_cost`` is the blended objective change (HPWL plus the
    weighted thermal proxy term when one is active); ``delta_hpwl`` is
    its wirelength component alone, for the integrity guard's separate
    HPWL tracking.
    """
    cluster = packed.clusters[int(rng.integers(0, len(packed.clusters)))]
    x0, y0 = placement.location[cluster.id]
    limit = max(1, int(range_limit))
    x1 = int(np.clip(x0 + rng.integers(-limit, limit + 1), 0, layout.width - 1))
    y1 = int(np.clip(y0 + rng.integers(-limit, limit + 1), 0, layout.height - 1))
    if (x1, y1) == (x0, y0):
        return 0.0, 0.0, None
    target = layout.tile(x1, y1)
    if target.type != cluster.type:
        return 0.0, 0.0, None

    occupants = placement.occupants.setdefault((x1, y1), [])
    swap_with: Optional[int] = None
    if len(occupants) >= target.capacity:
        swap_with = occupants[int(rng.integers(0, len(occupants)))]

    moved = [(cluster.id, (x0, y0), (x1, y1))]
    if swap_with is not None:
        moved.append((swap_with, (x1, y1), (x0, y0)))

    affected: Set[int] = set()
    for cluster_id, _old, _new in moved:
        affected |= set(nets_of_cluster.get(cluster_id, ()))
    before = sum(_net_hpwl(nets[i], placement.location) for i in affected)
    trial = dict(placement.location)
    for cluster_id, _old, new in moved:
        trial[cluster_id] = new
    after = sum(_net_hpwl(nets[i], trial) for i in affected)
    delta = after - before
    hpwl_delta = delta
    if proxy is not None:
        delta = hpwl_delta + proxy.delta_for(moved)

    def apply_move() -> None:
        for cluster_id, old, new in moved:
            placement.location[cluster_id] = new
            placement.occupants[old].remove(cluster_id)
            placement.occupants.setdefault(new, []).append(cluster_id)
        if proxy is not None:
            proxy.apply(moved)

    return delta, hpwl_delta, apply_move
