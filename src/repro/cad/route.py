"""PathFinder negotiated-congestion routing.

Classic Ebeling/McMurchie PathFinder on the RR graph of
:mod:`repro.arch.rrgraph`: every net is maze-routed (Dijkstra expansion
seeded from the net's growing route tree) with a node cost of

``cost(n) = (base + history(n)) * present(n)``

where ``present`` penalizes current over-subscription and ``history``
accumulates persistent congestion.  Iterate rip-up-and-reroute with an
escalating present factor until no node is over capacity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.arch.rrgraph import RRGraph, RRNodeType
from repro.cad.pack import PackedNetlist
from repro.cad.place import Placement

PRES_FAC_FIRST = 0.6
PRES_FAC_MULT = 1.5
HIST_FAC = 0.4
MAX_ITERATIONS = 40
BBOX_MARGIN = 4


class RoutingError(RuntimeError):
    """Raised when the router cannot find a legal solution."""


@dataclass
class NetRoute:
    """Routing of one netlist net."""

    net_id: int
    source_node: int
    sink_paths: Dict[int, List[int]]
    """sink tile-key node -> node path from a tree node to that sink."""

    def all_nodes(self) -> Set[int]:
        nodes: Set[int] = {self.source_node}
        for path in self.sink_paths.values():
            nodes.update(path)
        return nodes


@dataclass
class RoutingResult:
    """All net routes plus convergence metadata."""

    graph: RRGraph
    routes: Dict[int, NetRoute]
    iterations: int
    overused_nodes: int

    def total_wire_nodes(self) -> int:
        total = 0
        for route in self.routes.values():
            for node_id in route.all_nodes():
                if self.graph.nodes[node_id].type in (
                    RRNodeType.CHANX,
                    RRNodeType.CHANY,
                ):
                    total += 1
        return total


def route(
    packed: PackedNetlist,
    placement: Placement,
    graph: RRGraph,
    max_iterations: int = MAX_ITERATIONS,
) -> RoutingResult:
    """Route every multi-tile net of the packed design."""
    nets = _routable_nets(packed, placement, graph)
    n_nodes = graph.n_nodes
    occupancy = [0] * n_nodes
    history = [0.0] * n_nodes
    capacity = [node.capacity for node in graph.nodes]
    routes: Dict[int, NetRoute] = {}
    pres_fac = PRES_FAC_FIRST
    overuse_trend: List[int] = []

    for iteration in range(1, max_iterations + 1):
        for net_id, source, sinks, bbox in nets:
            if net_id in routes:
                for node_id in routes[net_id].all_nodes():
                    occupancy[node_id] -= 1
            routes[net_id] = _route_net(
                graph, source, sinks, bbox, occupancy, history, capacity,
                pres_fac, net_id,
            )
            for node_id in routes[net_id].all_nodes():
                occupancy[node_id] += 1

        overused = [
            i for i in range(n_nodes) if occupancy[i] > capacity[i]
        ]
        if not overused:
            return RoutingResult(graph, routes, iteration, 0)
        overuse_trend.append(len(overused))
        # Bail early on hopeless congestion so the flow can retry with a
        # wider channel instead of burning all iterations here.
        if iteration >= 12 and min(overuse_trend[-4:]) >= overuse_trend[-8]:
            break
        for i in overused:
            history[i] += HIST_FAC * (occupancy[i] - capacity[i])
        pres_fac *= PRES_FAC_MULT

    raise RoutingError(
        f"routing did not converge after {max_iterations} iterations "
        f"({len(overused)} overused nodes); increase the channel width "
        f"(arch.routed_channel_tracks)"
    )


def _routable_nets(
    packed: PackedNetlist, placement: Placement, graph: RRGraph
) -> List[Tuple[int, int, List[int], Tuple[int, int, int, int]]]:
    """(net id, source node, sink nodes, bbox) for every multi-tile net,
    highest fanout first."""
    out = []
    for net in packed.netlist.nets:
        driver_cluster = packed.cluster_of_block[net.driver]
        src_xy = placement.location[driver_cluster]
        sink_tiles: Set[Tuple[int, int]] = set()
        for sink in net.sinks:
            xy = placement.location[packed.cluster_of_block[sink]]
            if xy != src_xy:
                sink_tiles.add(xy)
        if not sink_tiles:
            continue
        source = graph.source_of[src_xy]
        sinks = [graph.sink_of[xy] for xy in sorted(sink_tiles)]
        xs = [src_xy[0]] + [xy[0] for xy in sink_tiles]
        ys = [src_xy[1]] + [xy[1] for xy in sink_tiles]
        bbox = (
            max(0, min(xs) - BBOX_MARGIN),
            max(0, min(ys) - BBOX_MARGIN),
            min(placement.layout.width - 1, max(xs) + BBOX_MARGIN),
            min(placement.layout.height - 1, max(ys) + BBOX_MARGIN),
        )
        out.append((net.id, source, sinks, bbox))
    out.sort(key=lambda item: (-len(item[2]), item[0]))
    return out


def _node_cost(
    node_id: int,
    occupancy: Sequence[int],
    history: Sequence[float],
    capacity: Sequence[int],
    pres_fac: float,
) -> float:
    over = occupancy[node_id] + 1 - capacity[node_id]
    present = 1.0 + max(0, over) * pres_fac
    return (1.0 + history[node_id]) * present


def _route_net(
    graph: RRGraph,
    source: int,
    sinks: List[int],
    bbox: Tuple[int, int, int, int],
    occupancy: Sequence[int],
    history: Sequence[float],
    capacity: Sequence[int],
    pres_fac: float,
    net_id: int,
) -> NetRoute:
    """Route one net: A* expansion from the growing route tree to each sink.

    The heuristic is the Manhattan tile distance divided by the maximum
    wire span — a lower bound on the number of RR nodes still to traverse
    (each costs at least the base cost of 1), so the expansion stays
    optimal while exploring far fewer nodes than plain Dijkstra.
    """
    x_lo, y_lo, x_hi, y_hi = bbox
    tree_nodes: Set[int] = {source}
    sink_paths: Dict[int, List[int]] = {}
    nodes = graph.nodes
    out_edges = graph.out_edges
    max_span = 4.0

    for target in sinks:
        tx, ty = nodes[target].x, nodes[target].y

        def heuristic(node_id: int) -> float:
            node = nodes[node_id]
            return (abs(node.x - tx) + abs(node.y - ty)) / max_span

        dist: Dict[int, float] = {n: 0.0 for n in tree_nodes}
        prev: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [
            (heuristic(n), n) for n in tree_nodes
        ]
        heapq.heapify(heap)
        found = False
        while heap:
            f, u = heapq.heappop(heap)
            d = dist.get(u, float("inf"))
            if f > d + heuristic(u) + 1e-12:
                continue
            if u == target:
                found = True
                break
            for edge in out_edges[u]:
                v = edge.dst
                node = nodes[v]
                # Respect the bounding box (sinks are inside by construction)
                if not (x_lo <= node.x <= x_hi and y_lo <= node.y <= y_hi):
                    continue
                # Never route through another tile's SOURCE/SINK pins.
                if node.type == RRNodeType.SINK and v != target:
                    continue
                if node.type == RRNodeType.SOURCE:
                    continue
                nd = d + _node_cost(v, occupancy, history, capacity, pres_fac)
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd + heuristic(v), v))
        if not found:
            raise RoutingError(
                f"net {net_id}: no path from route tree to sink node {target}"
            )
        path = [target]
        while path[-1] not in tree_nodes:
            path.append(prev[path[-1]])
        path.reverse()
        tree_nodes.update(path)
        sink_paths[target] = path

    return NetRoute(net_id, source, sink_paths)
