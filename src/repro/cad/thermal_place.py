"""Thermal proxy cost for the simulated-annealing placer.

The guardband flow (Algorithm 1) treats placement as fixed: the annealer
in :mod:`repro.cad.place` minimises (weighted) half-perimeter wirelength
and the converged temperature map is whatever falls out.  This module
closes that loop.  It gives the annealer an *incremental thermal proxy
cost* — a per-tile power-density map derived from cluster switching
activity (:mod:`repro.activity`), spread by a local kernel that mimics
lateral heat conduction — so a move's thermal ΔCost is O(kernel
neighborhood), not a full thermal solve.

The proxy is periodically **recalibrated against the real solver**: one
:class:`~repro.thermal.hotspot.ThermalSolver` is built per anneal (its
``splu`` factorization is reused across every calibration solve) and the
proxy's spread field is fitted to the solver's temperature-rise field by
a least-squares gain ``gamma``.  When the freshly-fitted gain drifts
from the held one by more than ``drift_tolerance``, γ is refitted; when
even the best-fit gain leaves a *shape* mismatch above
``shape_tolerance``, the proxy is declared inadequate and the anneal
fails loudly (:class:`ThermalPlaceError`) instead of optimising a
fiction.

Density units are relative (the fit absorbs the overall scale): what the
objective needs is the *distribution* of heat, which is
corner-independent — the same placement is reused across fabric corners,
exactly as the flow cache assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import observe
from repro.activity.ace import ActivityEstimate
from repro.arch.layout import FabricLayout
from repro.cad.pack import PackedNetlist
from repro.netlists.netlist import BlockType

KERNEL_RADIUS = 2
"""Spreading-kernel half-width in tiles.  2 covers the 5x5 neighborhood
that dominates a tile's lateral conduction footprint on the 4-connected
thermal grid."""

KERNEL_DECAY_TILES = 1.3
"""e-folding distance (tiles) of the exponential spreading kernel."""

DRIFT_TOLERANCE = 0.25
"""Relative change between the held gain γ and a freshly least-squares
fitted one that triggers a refit — i.e. how stale the proxy's Celsius
scaling may get as the density distribution evolves."""

SHAPE_TOLERANCE = 0.75
"""Relative inf-norm residual the *best-fit* gain must leave between the
proxy field and the solver rise field; a larger residual means the
kernel cannot represent the conduction behaviour and the anneal must not
trust the proxy objective."""

_BLOCK_DENSITY_WEIGHT = {
    BlockType.LUT: 1.0,
    BlockType.FF: 0.35,
    BlockType.BRAM: 4.0,
    BlockType.DSP: 8.0,
    BlockType.INPUT: 0.25,
    BlockType.OUTPUT: 0.25,
}
"""Relative dynamic-power weight per block kind (one active LUT = 1.0).

Mirrors the ordering of the characterized per-instance dynamic powers in
:mod:`repro.power.model` (hard blocks dominate, registers are cheap)
without needing a characterized fabric at placement time — placement is
shared across fabric corners, so only the *relative* distribution can
matter here."""

STATIC_DENSITY_PER_RESOURCE = 0.002
"""Baseline density per leaky resource of a tile's inventory (relative
units).  Leakage accrues on the whole inventory whether used or not, so
every tile radiates a little; the constant field does not steer moves
(it is placement-invariant) but keeps calibration against the real
solver honest near the die edge."""


class ThermalPlaceError(RuntimeError):
    """The thermal proxy cannot track the real solver (or was corrupted).

    Raised instead of silently annealing a stale or unrepresentative
    thermal objective."""


@dataclass
class ThermalPlaceStats:
    """Telemetry of one thermal-aware anneal, attached to the Placement."""

    thermal_weight: float
    gamma: float
    """Final proxy→temperature-rise gain fitted against the solver."""
    n_calibrations: int
    """Real thermal solves spent checking the proxy."""
    n_recalibrations: int
    """How many of those checks refitted γ (drift above tolerance)."""
    n_proxy_evals: int
    """Incremental thermal ΔCost evaluations (one per proposed move)."""
    max_drift: float
    """Worst pre-refit relative drift observed across the anneal."""
    final_drift: float
    """Relative drift at the last calibration (post-refit if one ran)."""
    final_shape_error: float
    """Residual of the final γ fit (must be <= SHAPE_TOLERANCE)."""
    proxy_cost: float
    """Final weighted thermal cost term of the blended objective."""


def cluster_densities(
    packed: PackedNetlist, activity: ActivityEstimate
) -> Dict[int, float]:
    """Relative power density of every cluster from its signal activity.

    A cluster's density is the activity-weighted sum of its blocks'
    :data:`_BLOCK_DENSITY_WEIGHT` — the same "users x activity" quantity
    :class:`repro.power.model.PowerModel` charges dynamically, reduced to
    corner-independent relative units.
    """
    densities: Dict[int, float] = {}
    alpha = activity.alpha
    for cluster in packed.clusters:
        total = 0.0
        for block_id in cluster.block_ids:
            block = packed.netlist.blocks[block_id]
            if block.output_nets:
                a = float(np.mean([alpha[n] for n in block.output_nets]))
            elif block.input_nets:
                a = float(np.mean([alpha[n] for n in block.input_nets]))
            else:
                a = 0.0
            total += a * _BLOCK_DENSITY_WEIGHT.get(block.type, 0.0)
        densities[cluster.id] = total
    return densities


def static_tile_density(layout: FabricLayout) -> np.ndarray:
    """Placement-invariant per-tile baseline from the leaky inventory."""
    # Imported lazily: repro.power.model imports repro.cad.flow, which
    # imports the placer, which imports this module — a cycle at import
    # time but not at call time.
    from repro.power.model import tile_inventory

    base = np.zeros(layout.n_tiles)
    for tile in layout.tiles():
        counts = tile_inventory(layout.arch, tile.type)
        base[layout.tile_index(tile.x, tile.y)] = (
            STATIC_DENSITY_PER_RESOURCE * float(sum(counts.values()))
        )
    return base


def density_vector(
    packed: PackedNetlist,
    location: Dict[int, Tuple[int, int]],
    layout: FabricLayout,
    activity: ActivityEstimate,
    include_static: bool = True,
) -> np.ndarray:
    """Per-tile relative power density of one placement (for reporting)."""
    densities = cluster_densities(packed, activity)
    out = static_tile_density(layout) if include_static else np.zeros(layout.n_tiles)
    for cluster_id, (x, y) in location.items():
        out[layout.tile_index(x, y)] += densities[cluster_id]
    return out


def _spreading_kernel(
    radius: int, decay: float
) -> List[Tuple[int, int, float]]:
    """(dx, dy, weight) offsets of the exponential conduction kernel."""
    kernel: List[Tuple[int, int, float]] = []
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            w = math.exp(-math.hypot(dx, dy) / decay)
            kernel.append((dx, dy, w))
    total = sum(w for _, _, w in kernel)
    return [(dx, dy, w / total) for dx, dy, w in kernel]


class ThermalProxy:
    """Incrementally-maintained thermal cost of a placement in progress.

    State:

    - ``density`` — per-tile relative power density (static inventory
      baseline + the clusters currently on the tile);
    - ``spread`` — the kernel-convolved density field (the proxy for the
      temperature-rise *shape*);
    - ``raw_cost`` — ``sum(spread**2)``, a hotspot-concentration penalty
      (uniform heat minimises it at fixed total power);
    - ``gamma`` — the solver-fitted gain mapping ``spread`` to Celsius
      rise;
    - ``weight`` — the blend factor normalising the thermal term against
      the anneal's initial wirelength cost.

    Moving a cluster changes ``density`` at two tiles and ``spread``
    within the kernel footprint of each, so :meth:`delta_for` is
    O(kernel) per proposed move.
    """

    def __init__(
        self,
        layout: FabricLayout,
        packed: PackedNetlist,
        activity: ActivityEstimate,
        location: Dict[int, Tuple[int, int]],
        *,
        kernel_radius: int = KERNEL_RADIUS,
        kernel_decay: float = KERNEL_DECAY_TILES,
        drift_tolerance: float = DRIFT_TOLERANCE,
        shape_tolerance: float = SHAPE_TOLERANCE,
    ) -> None:
        self.layout = layout
        self.drift_tolerance = drift_tolerance
        self.shape_tolerance = shape_tolerance
        self._kernel = _spreading_kernel(kernel_radius, kernel_decay)
        self._radius = kernel_radius
        self._cluster_density = cluster_densities(packed, activity)

        self._density = static_tile_density(layout).reshape(
            layout.height, layout.width
        )
        for cluster_id, (x, y) in location.items():
            self._density[y, x] += self._cluster_density[cluster_id]
        self._spread = self._full_spread(self._density)
        self.raw_cost = float(np.sum(self._spread**2))

        self.gamma = 0.0
        self.weight = 0.0
        self.n_calibrations = 0
        self.n_recalibrations = 0
        self.n_proxy_evals = 0
        self.max_drift = 0.0
        self.final_drift = 0.0
        self.final_shape_error = 0.0
        # One solver per anneal: the splu factorization is paid once and
        # back-substituted by every calibration solve.
        self._solver: Optional[object] = None

    # -- construction helpers ---------------------------------------------

    def _full_spread(self, density: np.ndarray) -> np.ndarray:
        """Kernel-convolve the density field (zero-padded edges)."""
        h, w = density.shape
        r = self._radius
        padded = np.zeros((h + 2 * r, w + 2 * r))
        padded[r : r + h, r : r + w] = density
        spread = np.zeros((h, w))
        for dx, dy, kw in self._kernel:
            spread += kw * padded[r + dy : r + dy + h, r + dx : r + dx + w]
        return spread

    # -- incremental cost ---------------------------------------------------

    def _footprint(
        self, moved: List[Tuple[int, Tuple[int, int], Tuple[int, int]]]
    ) -> Dict[Tuple[int, int], float]:
        """spread-field deltas (by (y, x)) of a proposed move list."""
        deltas: Dict[Tuple[int, int], float] = {}
        h, w = self._spread.shape
        for cluster_id, (x0, y0), (x1, y1) in moved:
            d = self._cluster_density[cluster_id]
            if d == 0.0:
                continue
            for dx, dy, kw in self._kernel:
                contribution = kw * d
                ya, xa = y0 + dy, x0 + dx
                if 0 <= ya < h and 0 <= xa < w:
                    deltas[ya, xa] = deltas.get((ya, xa), 0.0) - contribution
                yb, xb = y1 + dy, x1 + dx
                if 0 <= yb < h and 0 <= xb < w:
                    deltas[yb, xb] = deltas.get((yb, xb), 0.0) + contribution
        return deltas

    def delta_for(
        self, moved: List[Tuple[int, Tuple[int, int], Tuple[int, int]]]
    ) -> float:
        """Weighted thermal ΔCost of moving ``moved`` clusters.

        ``moved`` entries are ``(cluster_id, (x0, y0), (x1, y1))`` — the
        same shape the placer's move proposal carries.
        """
        self.n_proxy_evals += 1
        raw_delta = 0.0
        for (y, x), d in self._footprint(moved).items():
            s = self._spread[y, x]
            raw_delta += d * (2.0 * s + d)
        return self.weight * raw_delta

    def apply(
        self, moved: List[Tuple[int, Tuple[int, int], Tuple[int, int]]]
    ) -> None:
        """Commit an accepted move to the density/spread/cost state."""
        raw_delta = 0.0
        for (y, x), d in self._footprint(moved).items():
            s = self._spread[y, x]
            raw_delta += d * (2.0 * s + d)
            self._spread[y, x] = s + d
        for cluster_id, (x0, y0), (x1, y1) in moved:
            d = self._cluster_density[cluster_id]
            self._density[y0, x0] -= d
            self._density[y1, x1] += d
        self.raw_cost += raw_delta

    def weighted_cost(self) -> float:
        """The thermal term of the blended anneal objective."""
        return self.weight * self.raw_cost

    def full_raw_cost(self) -> float:
        """Recompute ``sum(spread**2)`` from scratch (integrity guard)."""
        return float(np.sum(self._full_spread(self._density) ** 2))

    # -- calibration ---------------------------------------------------------

    def _solve_rise(self) -> np.ndarray:
        """Real steady-state rise field for the current density map.

        The solver is linear, so solving at ambient 0 with the relative
        density as the power vector yields the rise shape directly; γ
        absorbs the unit mismatch.
        """
        from repro.thermal.hotspot import ThermalSolver

        if self._solver is None:
            self._solver = ThermalSolver(self.layout)
        solver: ThermalSolver = self._solver  # type: ignore[assignment]
        return np.asarray(solver.solve(self._density.ravel(), 0.0))

    def calibrate(self, force: bool = False) -> float:
        """Check the proxy against the real solver; refit γ on drift.

        Drift is the relative change between the held γ and a fresh
        least-squares fit — how stale the proxy's Celsius scaling has
        become as the density distribution evolved.  Returns that drift.
        Raises :class:`ThermalPlaceError` when even the best-fit gain
        leaves a shape residual above ``shape_tolerance`` — the kernel
        cannot represent this die's conduction and the proxy objective
        must not be annealed on.
        """
        with observe.span("place.thermal.calibrate", force=force):
            rise = self._solve_rise()
            s = self._spread.ravel()
            scale = float(np.max(np.abs(rise)))
            self.n_calibrations += 1
            if scale <= 0.0:
                # A zero-power die has a flat (zero) rise field; the
                # proxy is trivially exact and there is nothing to fit.
                self.final_drift = 0.0
                self.final_shape_error = 0.0
                return 0.0
            ss = float(s @ s)
            gamma_fit = float(s @ rise / ss) if ss > 0.0 else 0.0
            drift = abs(gamma_fit - self.gamma) / max(abs(gamma_fit), 1e-30)
            if not force:
                # The forced initial fit starts from γ=0 (drift is
                # trivially 1); only track drift of live calibrations.
                self.max_drift = max(self.max_drift, drift)
            refit = force or drift > self.drift_tolerance
            if refit:
                self.gamma = gamma_fit
                self.n_recalibrations += 1
                observe.counter("place.thermal.recalibrations").inc()
            shape_error = float(
                np.max(np.abs(rise - gamma_fit * s)) / scale
            )
            self.final_shape_error = shape_error
            self.final_drift = drift
            observe.event(
                "place.thermal.drift",
                drift=drift,
                shape_error=shape_error,
                gamma=self.gamma,
                refit=refit,
            )
            if shape_error > self.shape_tolerance:
                raise ThermalPlaceError(
                    f"thermal proxy cannot track the solver: residual "
                    f"{shape_error:.3f} exceeds shape tolerance "
                    f"{self.shape_tolerance:.3f} even at the best-fit "
                    f"gain ({gamma_fit:.4g}); widen the spreading "
                    "kernel or disable thermal_weight for this design"
                )
            return drift

    def stats(self, thermal_weight: float) -> ThermalPlaceStats:
        observe.counter("place.thermal.proxy_evals").inc(self.n_proxy_evals)
        return ThermalPlaceStats(
            thermal_weight=thermal_weight,
            gamma=self.gamma,
            n_calibrations=self.n_calibrations,
            n_recalibrations=self.n_recalibrations,
            n_proxy_evals=self.n_proxy_evals,
            max_drift=self.max_drift,
            final_drift=self.final_drift,
            final_shape_error=self.final_shape_error,
            proxy_cost=self.weighted_cost(),
        )
