"""Temperature-aware static timing analysis.

This is the paper's modified VPR timing analyzer (Sec. IV-A): every delay
element on every path is tagged with the *tile* it occupies, and its delay
is evaluated from the fabric's characterized ``delay(resource, T)`` at that
tile's temperature.  Re-running the analysis under a new per-tile
temperature vector — the inner step of Algorithm 1 (line 4) — is therefore a
single vectorized pass; the entire netlist is re-probed every time because
the critical path itself moves with temperature (paper Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.arch.layout import FabricLayout
from repro.arch.rrgraph import RRGraph, RRNodeType
from repro.cad.pack import PackedNetlist
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.coffe.fabric import Fabric
from repro.netlists.netlist import BlockType

FF_CLK_TO_Q_S = 35e-12
FF_SETUP_S = 25e-12
"""Flip-flop constants (temperature dependence negligible vs. the fabric)."""


@dataclass
class TimingReport:
    """Result of one STA evaluation."""

    critical_path_s: float
    frequency_hz: float
    critical_endpoint: int
    """Block id of the failing endpoint."""
    critical_blocks: List[int]
    """Blocks on the critical path, startpoint first."""


class TimingAnalyzer:
    """Tile-tagged timing graph over a placed-and-routed design."""

    def __init__(
        self,
        packed: PackedNetlist,
        placement: Placement,
        routing: RoutingResult,
        layout: FabricLayout,
    ):
        self.packed = packed
        self.placement = placement
        self.layout = layout
        netlist = packed.netlist

        self.block_tile: List[int] = [0] * netlist.n_blocks
        for block in netlist.blocks:
            xy = placement.location[packed.cluster_of_block[block.id]]
            self.block_tile[block.id] = layout.tile_index(*xy)

        self._comb_order = netlist.combinational_order()
        # (net id, sink block) -> [(resource, tile index), ...]
        self.sink_elements: Dict[Tuple[int, int], List[Tuple[str, int]]] = {}
        # net id -> deduplicated elements for dynamic-power accounting
        self.net_power_elements: Dict[int, List[Tuple[str, int]]] = {}
        self._build_net_elements(routing)

    # -- construction -----------------------------------------------------------

    def _build_net_elements(self, routing: RoutingResult) -> None:
        packed = self.packed
        netlist = packed.netlist
        graph = routing.graph
        edge_resource: Dict[Tuple[int, int], str] = {}

        def resource_of(u: int, v: int) -> str:
            key = (u, v)
            if key not in edge_resource:
                for edge in graph.out_edges[u]:
                    edge_resource[(u, edge.dst)] = edge.resource
            return edge_resource[key]

        for net in netlist.nets:
            driver_cluster = packed.cluster_of_block[net.driver]
            src_xy = self.placement.location[driver_cluster]
            route = routing.routes.get(net.id)
            power_nodes: Set[int] = set()
            power_elements: List[Tuple[str, int]] = []

            # Parent pointers over the route tree, to rebuild full paths.
            parent: Dict[int, int] = {}
            if route is not None:
                for path in route.sink_paths.values():
                    for a, b in zip(path, path[1:]):
                        parent[b] = a

            for sink in net.sinks:
                sink_xy = self.placement.location[packed.cluster_of_block[sink]]
                sink_tile = self.layout.tile_index(*sink_xy)
                if sink_xy == src_xy:
                    # Intra-tile connection: feedback mux into the local mux.
                    self.sink_elements[(net.id, sink)] = [
                        ("feedback_mux", sink_tile),
                        ("local_mux", sink_tile),
                    ]
                    continue
                assert route is not None, f"net {net.id} missing a route"
                sink_node = routing.graph.sink_of[sink_xy]
                chain: List[int] = [sink_node]
                while chain[-1] != route.source_node:
                    chain.append(parent[chain[-1]])
                chain.reverse()
                elements: List[Tuple[str, int]] = []
                for u, v in zip(chain, chain[1:]):
                    node = graph.nodes[v]
                    tile = self.layout.tile_index(node.x, node.y)
                    elements.append((resource_of(u, v), tile))
                    if v not in power_nodes:
                        power_nodes.add(v)
                        power_elements.append((resource_of(u, v), tile))
                self.sink_elements[(net.id, sink)] = elements

            if power_elements:
                self.net_power_elements[net.id] = power_elements

    # -- evaluation ----------------------------------------------------------------

    def _resource_delays(
        self, fabric: Fabric, t_tiles: np.ndarray
    ) -> Dict[str, np.ndarray]:
        resources = (
            "sb_mux", "cb_mux", "local_mux", "feedback_mux", "output_mux",
            "lut", "bram", "dsp",
        )
        return {r: np.asarray(fabric.delay_s(r, t_tiles)) for r in resources}

    def _normalize_temps(self, t_tiles) -> np.ndarray:
        t_tiles = np.asarray(t_tiles, dtype=float)
        if t_tiles.ndim == 0:
            t_tiles = np.full(self.layout.n_tiles, float(t_tiles))
        if len(t_tiles) != self.layout.n_tiles:
            raise ValueError(
                f"temperature vector has {len(t_tiles)} entries, layout has "
                f"{self.layout.n_tiles} tiles"
            )
        return t_tiles

    def _arrival_pass(
        self, fabric: Fabric, t_tiles: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, Dict[int, float]]:
        """Full arrival-time propagation.

        Returns per-block input arrivals, worst-predecessor indices and a
        map endpoint block -> required-path delay (arrival + setup where
        applicable).
        """
        delays = self._resource_delays(fabric, t_tiles)
        netlist = self.packed.netlist
        n = netlist.n_blocks
        in_arrival = np.zeros(n)
        in_pred = np.full(n, -1, dtype=int)
        endpoints: Dict[int, float] = {}

        for block_id in self._comb_order:
            block = netlist.blocks[block_id]
            tile = self.block_tile[block_id]
            if block.type == BlockType.INPUT:
                t_out = 0.0
            elif block.type == BlockType.FF:
                t_out = FF_CLK_TO_Q_S
            elif block.type == BlockType.BRAM:
                t_out = float(delays["bram"][tile])
            elif block.type == BlockType.LUT:
                t_out = in_arrival[block_id] + float(delays["lut"][tile])
            elif block.type == BlockType.DSP:
                t_out = in_arrival[block_id] + float(delays["dsp"][tile])
            else:  # OUTPUT pad: endpoint only
                t_out = in_arrival[block_id]

            if block.type in (BlockType.FF, BlockType.BRAM):
                endpoints[block_id] = in_arrival[block_id] + FF_SETUP_S
            elif block.type == BlockType.OUTPUT:
                endpoints[block_id] = t_out

            for net_id in block.output_nets:
                net = netlist.nets[net_id]
                for sink in net.sinks:
                    elements = self.sink_elements[(net_id, sink)]
                    d_net = 0.0
                    for resource, elem_tile in elements:
                        d_net += float(delays[resource][elem_tile])
                    arr = t_out + d_net
                    if arr > in_arrival[sink]:
                        in_arrival[sink] = arr
                        in_pred[sink] = block_id
        return in_arrival, in_pred, endpoints

    def _chain_to(self, endpoint: int, in_pred: np.ndarray) -> List[int]:
        chain: List[int] = [endpoint]
        while in_pred[chain[-1]] >= 0:
            chain.append(int(in_pred[chain[-1]]))
        chain.reverse()
        return chain

    def critical_path(
        self, fabric: Fabric, t_tiles: np.ndarray
    ) -> TimingReport:
        """Longest register-to-register (or PI/PO) path delay.

        ``t_tiles`` is the per-tile temperature vector in Celsius (length =
        number of layout tiles).  A scalar broadcasts to a uniform die
        temperature.
        """
        t_tiles = self._normalize_temps(t_tiles)
        _, in_pred, endpoints = self._arrival_pass(fabric, t_tiles)
        if not endpoints:
            raise ValueError("design has no timing endpoints")
        best_endpoint = max(endpoints, key=lambda e: endpoints[e])
        best_cp = endpoints[best_endpoint]
        if best_cp <= 0.0:
            raise ValueError("design has no timing endpoints")
        return TimingReport(
            critical_path_s=best_cp,
            frequency_hz=1.0 / best_cp,
            critical_endpoint=best_endpoint,
            critical_blocks=self._chain_to(best_endpoint, in_pred),
        )

    def endpoint_slacks(
        self, fabric: Fabric, t_tiles: np.ndarray, clock_period_s: float
    ) -> Dict[int, float]:
        """Setup slack of every endpoint at a target clock period, seconds.

        Negative slack means the endpoint fails timing at that clock under
        the given thermal profile.
        """
        if clock_period_s <= 0.0:
            raise ValueError("clock period must be positive")
        t_tiles = self._normalize_temps(t_tiles)
        _, _, endpoints = self._arrival_pass(fabric, t_tiles)
        return {e: clock_period_s - d for e, d in endpoints.items()}

    def top_paths(
        self, fabric: Fabric, t_tiles: np.ndarray, k: int = 5
    ) -> List[TimingReport]:
        """The ``k`` worst endpoint paths, slowest first.

        One path per endpoint (the classic per-endpoint report); useful for
        inspecting near-critical paths whose ranking shifts with
        temperature (paper Sec. II's criticism of CP-sampling methods).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        t_tiles = self._normalize_temps(t_tiles)
        _, in_pred, endpoints = self._arrival_pass(fabric, t_tiles)
        worst = sorted(endpoints.items(), key=lambda kv: -kv[1])[:k]
        return [
            TimingReport(
                critical_path_s=delay,
                frequency_hz=1.0 / delay if delay > 0 else float("inf"),
                critical_endpoint=endpoint,
                critical_blocks=self._chain_to(endpoint, in_pred),
            )
            for endpoint, delay in worst
            if delay > 0.0
        ]

    def critical_path_resource_mix(
        self, fabric: Fabric, t_tiles: np.ndarray
    ) -> Dict[str, float]:
        """Fraction of the critical-path delay per resource type.

        Explains the per-benchmark spread of guardbanding gains (DSP-heavy
        paths gain most — paper Figs. 6-8).
        """
        t_tiles = np.asarray(t_tiles, dtype=float)
        if t_tiles.ndim == 0:
            t_tiles = np.full(self.layout.n_tiles, float(t_tiles))
        report = self.critical_path(fabric, t_tiles)
        delays = self._resource_delays(fabric, t_tiles)
        netlist = self.packed.netlist
        totals: Dict[str, float] = {}

        def add(resource: str, tile: int) -> None:
            totals[resource] = totals.get(resource, 0.0) + float(
                delays[resource][tile]
            )

        for prev, current in zip(report.critical_blocks, report.critical_blocks[1:]):
            # Net segment between prev and current.
            for net_id in netlist.blocks[prev].output_nets:
                if current in netlist.nets[net_id].sinks:
                    for resource, tile in self.sink_elements[(net_id, current)]:
                        add(resource, tile)
                    break
            block = netlist.blocks[current]
            if block.type == BlockType.LUT:
                add("lut", self.block_tile[current])
            elif block.type == BlockType.DSP:
                add("dsp", self.block_tile[current])
        start = netlist.blocks[report.critical_blocks[0]]
        if start.type == BlockType.BRAM:
            add("bram", self.block_tile[start.id])
        total = sum(totals.values()) or 1.0
        return {k: v / total for k, v in sorted(totals.items())}
