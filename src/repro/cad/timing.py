"""Temperature-aware static timing analysis.

This is the paper's modified VPR timing analyzer (Sec. IV-A): every delay
element on every path is tagged with the *tile* it occupies, and its delay
is evaluated from the fabric's characterized ``delay(resource, T)`` at that
tile's temperature.  Re-running the analysis under a new per-tile
temperature vector — the inner step of Algorithm 1 (line 4) — is therefore a
single vectorized pass; the entire netlist is re-probed every time because
the critical path itself moves with temperature (paper Sec. III-A).

Hot-loop data layout: at construction every per-sink ``(resource, tile)``
element list is flattened into three parallel arrays — ``_elem_resource``,
``_elem_tile`` and per-sink segment offsets — so one arrival pass evaluates
every net-segment delay with a single fancy-index gather into the
``(n_resources, n_tiles)`` delay matrix plus one ``np.add.reduceat``.  Only
the levelized block sweep (constant work per fanout edge) stays in Python.
See DESIGN.md, "Hot-loop data layout".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.arch.layout import FabricLayout
from repro.cad.pack import PackedNetlist
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.coffe.characterize import RESOURCE_NAMES, T_GRID_CELSIUS
from repro.coffe.fabric import Fabric, T_MAX_CELSIUS, T_MIN_CELSIUS
from repro.netlists.netlist import BlockType

FF_CLK_TO_Q_S = 35e-12
FF_SETUP_S = 25e-12
"""Flip-flop constants (temperature dependence negligible vs. the fabric)."""

_RES_INDEX = {name: i for i, name in enumerate(RESOURCE_NAMES)}
_LUT_ROW = _RES_INDEX["lut"]
_BRAM_ROW = _RES_INDEX["bram"]
_DSP_ROW = _RES_INDEX["dsp"]

# Integer block-kind codes for the arrival sweep (avoids per-block Enum
# attribute lookups in the hot loop).
_K_INPUT, _K_FF, _K_BRAM, _K_LUT, _K_DSP, _K_OUTPUT = range(6)
_BLOCK_KIND = {
    BlockType.INPUT: _K_INPUT,
    BlockType.FF: _K_FF,
    BlockType.BRAM: _K_BRAM,
    BlockType.LUT: _K_LUT,
    BlockType.DSP: _K_DSP,
    BlockType.OUTPUT: _K_OUTPUT,
}


def _uniform_unit_grid(grid: np.ndarray) -> bool:
    """True when ``grid`` is the canonical 0..100 C, 1-degree sweep."""
    return (
        grid.shape == T_GRID_CELSIUS.shape
        and bool(np.array_equal(grid, T_GRID_CELSIUS))
    )


@dataclass
class TimingReport:
    """Result of one STA evaluation."""

    critical_path_s: float
    frequency_hz: float
    critical_endpoint: int
    """Block id of the failing endpoint."""
    critical_blocks: List[int]
    """Blocks on the critical path, startpoint first."""


class TimingAnalyzer:
    """Tile-tagged timing graph over a placed-and-routed design."""

    def __init__(
        self,
        packed: PackedNetlist,
        placement: Placement,
        routing: RoutingResult,
        layout: FabricLayout,
    ):
        self.packed = packed
        self.placement = placement
        self.layout = layout
        netlist = packed.netlist

        self.block_tile: List[int] = [0] * netlist.n_blocks
        for block in netlist.blocks:
            xy = placement.location[packed.cluster_of_block[block.id]]
            self.block_tile[block.id] = layout.tile_index(*xy)

        self._comb_order = netlist.combinational_order()
        # (net id, sink block) -> [(resource, tile index), ...]
        self.sink_elements: Dict[Tuple[int, int], List[Tuple[str, int]]] = {}
        # net id -> deduplicated elements for dynamic-power accounting
        self.net_power_elements: Dict[int, List[Tuple[str, int]]] = {}
        self._build_net_elements(routing)
        self._build_flat_arrays()

    # Everything _build_flat_arrays derives from sink_elements is dropped
    # when pickling (the on-disk flow cache) and rebuilt on load, so cached
    # flows stay valid across changes to the hot-loop data layout.
    _DERIVED_SLOTS = (
        "_sink_segment", "_elem_resource", "_elem_tile", "_elem_flat",
        "_seg_starts", "_reduceat_ok", "_fanout", "_sweep",
        "_delay_cache_fabric", "_delay_cache_key", "_delay_cache_matrix",
        "_table_cache_fabric", "_table_cache",
    )

    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        for name in self._DERIVED_SLOTS:
            state.pop(name, None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._build_flat_arrays()

    # -- construction -----------------------------------------------------------

    def _build_net_elements(self, routing: RoutingResult) -> None:
        packed = self.packed
        netlist = packed.netlist
        graph = routing.graph
        edge_resource: Dict[Tuple[int, int], str] = {}

        def resource_of(net_id: int, u: int, v: int) -> str:
            key = (u, v)
            if key not in edge_resource:
                for edge in graph.out_edges[u]:
                    edge_resource[(u, edge.dst)] = edge.resource
            try:
                return edge_resource[key]
            except KeyError:
                net = netlist.nets[net_id]
                raise ValueError(
                    f"net {net_id} ({net.name!r}) is routed through edge "
                    f"{u}->{v} which does not exist in the RR graph"
                ) from None

        for net in netlist.nets:
            driver_cluster = packed.cluster_of_block[net.driver]
            src_xy = self.placement.location[driver_cluster]
            route = routing.routes.get(net.id)
            power_nodes: Set[int] = set()
            power_elements: List[Tuple[str, int]] = []

            # Parent pointers over the route tree, to rebuild full paths.
            parent: Dict[int, int] = {}
            if route is not None:
                for path in route.sink_paths.values():
                    for a, b in zip(path, path[1:]):
                        parent[b] = a

            for sink in net.sinks:
                sink_xy = self.placement.location[packed.cluster_of_block[sink]]
                sink_tile = self.layout.tile_index(*sink_xy)
                if sink_xy == src_xy:
                    # Intra-tile connection: feedback mux into the local mux.
                    self.sink_elements[(net.id, sink)] = [
                        ("feedback_mux", sink_tile),
                        ("local_mux", sink_tile),
                    ]
                    continue
                assert route is not None, f"net {net.id} missing a route"
                sink_node = routing.graph.sink_of[sink_xy]
                chain: List[int] = [sink_node]
                while chain[-1] != route.source_node:
                    try:
                        chain.append(parent[chain[-1]])
                    except KeyError:
                        raise ValueError(
                            f"net {net.id} ({net.name!r}) route tree is "
                            f"disconnected at node {chain[-1]}: no path back "
                            f"to source node {route.source_node}"
                        ) from None
                chain.reverse()
                elements: List[Tuple[str, int]] = []
                for u, v in zip(chain, chain[1:]):
                    node = graph.nodes[v]
                    tile = self.layout.tile_index(node.x, node.y)
                    elements.append((resource_of(net.id, u, v), tile))
                    if v not in power_nodes:
                        power_nodes.add(v)
                        power_elements.append((resource_of(net.id, u, v), tile))
                self.sink_elements[(net.id, sink)] = elements

            if power_elements:
                self.net_power_elements[net.id] = power_elements

    def _build_flat_arrays(self) -> None:
        """Flatten per-sink element lists into gather-ready index arrays.

        Each ``(net, sink)`` key becomes one *segment* of the flattened
        ``(_elem_resource, _elem_tile)`` arrays; ``_seg_starts`` marks
        segment boundaries for ``np.add.reduceat``.  ``_fanout`` stores, per
        driver block, the ``(sink block, segment)`` pairs its output nets
        feed, so the arrival sweep does constant work per fanout edge.
        """
        elem_resource: List[int] = []
        elem_tile: List[int] = []
        seg_starts: List[int] = []
        self._sink_segment: Dict[Tuple[int, int], int] = {}
        for key, elements in self.sink_elements.items():
            self._sink_segment[key] = len(seg_starts)
            seg_starts.append(len(elem_resource))
            for resource, tile in elements:
                elem_resource.append(_RES_INDEX[resource])
                elem_tile.append(tile)
        self._elem_resource = np.asarray(elem_resource, dtype=np.intp)
        self._elem_tile = np.asarray(elem_tile, dtype=np.intp)
        # Flat index into the raveled (n_resources, n_tiles) delay matrix.
        self._elem_flat = self._elem_resource * self.layout.n_tiles + self._elem_tile
        self._seg_starts = np.asarray(seg_starts, dtype=np.intp)
        seg_ends = np.append(self._seg_starts[1:], self._elem_resource.size)
        # reduceat needs every segment non-empty; routed paths always have
        # >= 1 element and intra-tile sinks exactly 2, but keep a safe path.
        self._reduceat_ok = bool(np.all(seg_ends > self._seg_starts))

        netlist = self.packed.netlist
        self._fanout: List[List[Tuple[int, int]]] = []
        for block in netlist.blocks:
            fanout: List[Tuple[int, int]] = []
            for net_id in block.output_nets:
                for sink in netlist.nets[net_id].sinks:
                    fanout.append((sink, self._sink_segment[(net_id, sink)]))
            self._fanout.append(fanout)

        # Sweep schedule: (block id, kind code, tile, fanout) in levelized
        # order, so the arrival pass touches no Block/Enum objects at all.
        self._sweep: List[Tuple[int, int, int, List[Tuple[int, int]]]] = [
            (
                block_id,
                _BLOCK_KIND[netlist.blocks[block_id].type],
                self.block_tile[block_id],
                self._fanout[block_id],
            )
            for block_id in self._comb_order
        ]

        self._delay_cache_fabric: Optional[Fabric] = None
        self._delay_cache_key: Optional[bytes] = None
        self._delay_cache_matrix: Optional[np.ndarray] = None
        self._table_cache_fabric: Optional[Fabric] = None
        self._table_cache: Optional[np.ndarray] = None

    # -- evaluation ----------------------------------------------------------------

    def _fabric_delay_table(self, fabric: Fabric) -> Optional[np.ndarray]:
        """Stacked ``(n_resources, n_grid)`` characterized delay rows.

        Only usable when every resource was characterized on the canonical
        0..100 C unit grid (always true for the COFFE flow); returns
        ``None`` otherwise and callers fall back to per-resource
        ``fabric.delay_s``.
        """
        if self._table_cache_fabric is fabric:
            return self._table_cache
        table: Optional[np.ndarray] = None
        if all(
            _uniform_unit_grid(np.asarray(fabric.resources[r].t_grid_celsius))
            for r in RESOURCE_NAMES
        ):
            table = np.vstack(
                [np.asarray(fabric.resources[r].delay_s) for r in RESOURCE_NAMES]
            )
        self._table_cache_fabric = fabric
        self._table_cache = table
        return table

    def _delay_matrix(self, fabric: Fabric, t_tiles: np.ndarray) -> np.ndarray:
        """The ``(n_resources, n_tiles)`` delay table at one thermal profile.

        Cached for the last (fabric, temperature-vector) pair: within one
        Algorithm 1 step several queries (critical path, resource mix,
        slacks) hit the same profile.  When the fabric was characterized on
        the canonical unit grid, all resources are interpolated in one
        batched lerp instead of eight ``np.interp`` calls.
        """
        key = t_tiles.tobytes()
        if (
            self._delay_cache_matrix is not None
            and self._delay_cache_fabric is fabric
            and self._delay_cache_key == key
        ):
            return self._delay_cache_matrix
        table = self._fabric_delay_table(fabric)
        if table is None:
            matrix = np.vstack(
                [np.asarray(fabric.delay_s(r, t_tiles)) for r in RESOURCE_NAMES]
            )
        else:
            t = np.clip(t_tiles, T_MIN_CELSIUS, T_MAX_CELSIUS)
            i0 = t.astype(np.intp)
            frac = t - i0
            i1 = np.minimum(i0 + 1, table.shape[1] - 1)
            matrix = table[:, i0] * (1.0 - frac) + table[:, i1] * frac
        self._delay_cache_fabric = fabric
        self._delay_cache_key = key
        self._delay_cache_matrix = matrix
        return matrix

    def _segment_delays(self, delay_matrix: np.ndarray) -> np.ndarray:
        """Total delay of every (net, sink) segment: one gather + reduceat."""
        if self._elem_resource.size == 0:
            return np.zeros(self._seg_starts.size)
        elem_delays = np.take(delay_matrix.ravel(), self._elem_flat)
        if self._reduceat_ok:
            return np.add.reduceat(elem_delays, self._seg_starts)
        cum = np.concatenate(([0.0], np.cumsum(elem_delays)))
        seg_ends = np.append(self._seg_starts[1:], elem_delays.size)
        return cum[seg_ends] - cum[self._seg_starts]

    def _delay_matrix_batch(
        self, fabric: Fabric, t_batch: np.ndarray
    ) -> np.ndarray:
        """Delay tables for a temperature batch: ``(n_cells, n_res, n_tiles)``.

        On the canonical unit grid all cells interpolate in one vectorized
        lerp; each ``[c]`` slice applies the identical arithmetic as
        :meth:`_delay_matrix` on ``t_batch[c]`` (bit-identical results).
        """
        table = self._fabric_delay_table(fabric)
        if table is None:
            return np.stack(
                [self._delay_matrix(fabric, t) for t in t_batch]
            )
        t = np.clip(t_batch, T_MIN_CELSIUS, T_MAX_CELSIUS)
        i0 = t.astype(np.intp)
        frac = t - i0
        i1 = np.minimum(i0 + 1, table.shape[1] - 1)
        # table[:, i0] gathers to (n_res, n_cells, n_tiles); the lerp
        # broadcasts frac (n_cells, n_tiles) across the resource axis.
        matrix = table[:, i0] * (1.0 - frac) + table[:, i1] * frac
        return np.moveaxis(matrix, 1, 0)

    def _segment_delays_batch(self, delay_matrices: np.ndarray) -> np.ndarray:
        """Per-cell segment delays: ``(n_cells, n_segments)`` in one pass."""
        n_cells = delay_matrices.shape[0]
        if self._elem_resource.size == 0:
            return np.zeros((n_cells, self._seg_starts.size))
        flat = delay_matrices.reshape(n_cells, -1)
        elem_delays = flat[:, self._elem_flat]
        if self._reduceat_ok:
            return np.add.reduceat(elem_delays, self._seg_starts, axis=1)
        cum = np.concatenate(
            [np.zeros((n_cells, 1)), np.cumsum(elem_delays, axis=1)], axis=1
        )
        seg_ends = np.append(self._seg_starts[1:], elem_delays.shape[1])
        return cum[:, seg_ends] - cum[:, self._seg_starts]

    def critical_path_batch(
        self,
        fabric: Fabric,
        t_batch: np.ndarray,
        delay_scale: Optional[np.ndarray] = None,
    ) -> List[TimingReport]:
        """One :class:`TimingReport` per row of a temperature batch.

        ``t_batch`` is ``(n_cells, n_tiles)`` — one per-tile thermal
        profile per sweep cell sharing this placed netlist.  The
        temperature-dependent work (delay interpolation, net-segment
        gather/reduce) is vectorized across the whole batch; only the
        levelized arrival sweep runs per cell.  Each report matches
        :meth:`critical_path` on the corresponding row.  ``delay_scale``
        optionally multiplies the per-cell delay matrices entrywise
        (shape ``(n_cells, n_resources, n_tiles)``) — the batched
        counterpart of the single-profile parameter.
        """
        t_batch = np.asarray(t_batch, dtype=float)
        if t_batch.ndim != 2 or t_batch.shape[1] != self.layout.n_tiles:
            raise ValueError(
                f"temperature batch shape {t_batch.shape} != "
                f"(n_cells, {self.layout.n_tiles})"
            )
        matrices = self._apply_delay_scale(
            self._delay_matrix_batch(fabric, t_batch), delay_scale
        )
        seg_delays = self._segment_delays_batch(matrices)
        reports: List[TimingReport] = []
        for cell in range(t_batch.shape[0]):
            _, in_pred, endpoints = self._sweep_arrivals(
                matrices[cell], seg_delays[cell]
            )
            if not endpoints:
                raise ValueError("design has no timing endpoints")
            best_endpoint = max(endpoints, key=lambda e: endpoints[e])
            best_cp = endpoints[best_endpoint]
            if best_cp <= 0.0:
                raise ValueError(
                    f"non-positive critical-path delay ({best_cp:g} s) at "
                    f"endpoint block {best_endpoint}"
                )
            reports.append(
                TimingReport(
                    critical_path_s=best_cp,
                    frequency_hz=1.0 / best_cp,
                    critical_endpoint=best_endpoint,
                    critical_blocks=self._chain_to(best_endpoint, in_pred),
                )
            )
        return reports

    def _resource_delays(
        self, fabric: Fabric, t_tiles: np.ndarray
    ) -> Dict[str, np.ndarray]:
        matrix = self._delay_matrix(fabric, t_tiles)
        return {r: matrix[i] for i, r in enumerate(RESOURCE_NAMES)}

    def _normalize_temps(self, t_tiles) -> np.ndarray:
        t_tiles = np.asarray(t_tiles, dtype=float)
        if t_tiles.ndim == 0:
            t_tiles = np.full(self.layout.n_tiles, float(t_tiles))
        if len(t_tiles) != self.layout.n_tiles:
            raise ValueError(
                f"temperature vector has {len(t_tiles)} entries, layout has "
                f"{self.layout.n_tiles} tiles"
            )
        return t_tiles

    def _apply_delay_scale(
        self, matrix: np.ndarray, delay_scale: Optional[np.ndarray]
    ) -> np.ndarray:
        """Multiply optional per-(resource, tile) factors into a delay matrix.

        Applied *after* the cached temperature interpolation, so the
        unscaled path and its (fabric, temperature) cache stay untouched;
        with ``delay_scale=None`` the matrix is returned as-is.
        """
        if delay_scale is None:
            return matrix
        delay_scale = np.asarray(delay_scale, dtype=float)
        if delay_scale.shape != matrix.shape:
            raise ValueError(
                f"delay_scale shape {delay_scale.shape} != delay matrix "
                f"shape {matrix.shape}"
            )
        return matrix * delay_scale

    def _arrival_pass(
        self,
        fabric: Fabric,
        t_tiles: np.ndarray,
        delay_scale: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[int, float]]:
        """Full arrival-time propagation.

        Returns per-block input arrivals, worst-predecessor indices and a
        map endpoint block -> required-path delay (arrival + setup where
        applicable).

        All net-segment delays are evaluated up front by
        :meth:`_segment_delays`; the levelized sweep then does constant
        work per fanout edge on plain Python floats.
        """
        delay_matrix = self._apply_delay_scale(
            self._delay_matrix(fabric, t_tiles), delay_scale
        )
        seg_delay = self._segment_delays(delay_matrix)
        return self._sweep_arrivals(delay_matrix, seg_delay)

    def _sweep_arrivals(
        self, delay_matrix: np.ndarray, seg_delays: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, Dict[int, float]]:
        """The levelized arrival sweep over pre-evaluated delays.

        Shared by the single-profile and batched entry points: everything
        temperature-dependent is already folded into ``delay_matrix`` /
        ``seg_delays``, so the sweep itself is pure graph traversal.
        """
        seg_delay = seg_delays.tolist()
        lut_d = delay_matrix[_LUT_ROW].tolist()
        bram_d = delay_matrix[_BRAM_ROW].tolist()
        dsp_d = delay_matrix[_DSP_ROW].tolist()

        n = self.packed.netlist.n_blocks
        in_arrival = [0.0] * n
        in_pred = [-1] * n
        endpoints: Dict[int, float] = {}

        for block_id, kind, tile, fanout in self._sweep:
            if kind == _K_LUT:
                t_out = in_arrival[block_id] + lut_d[tile]
            elif kind == _K_FF:
                endpoints[block_id] = in_arrival[block_id] + FF_SETUP_S
                t_out = FF_CLK_TO_Q_S
            elif kind == _K_INPUT:
                t_out = 0.0
            elif kind == _K_BRAM:
                endpoints[block_id] = in_arrival[block_id] + FF_SETUP_S
                t_out = bram_d[tile]
            elif kind == _K_DSP:
                t_out = in_arrival[block_id] + dsp_d[tile]
            else:  # OUTPUT pad: endpoint only
                t_out = in_arrival[block_id]
                endpoints[block_id] = t_out

            for sink, segment in fanout:
                arr = t_out + seg_delay[segment]
                if arr > in_arrival[sink]:
                    in_arrival[sink] = arr
                    in_pred[sink] = block_id
        return (
            np.asarray(in_arrival),
            np.asarray(in_pred, dtype=int),
            endpoints,
        )

    def _arrival_pass_reference(
        self,
        fabric: Fabric,
        t_tiles: np.ndarray,
        delay_scale: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[int, float]]:
        """Seed (pre-vectorization) arrival pass, kept verbatim.

        Walks the per-sink ``(resource, tile)`` element lists in Python.
        Used by the equivalence tests and as the hot-loop benchmark's
        baseline (see :mod:`repro.core.reference`).  ``delay_scale``
        multiplies each resource's per-tile delay row, mirroring the
        vectorized pass's voltage-scaling hook.
        """
        delays = {
            r: np.asarray(fabric.delay_s(r, t_tiles)) for r in RESOURCE_NAMES
        }
        if delay_scale is not None:
            scale = np.asarray(delay_scale, dtype=float)
            delays = {
                r: delays[r] * scale[i]
                for i, r in enumerate(RESOURCE_NAMES)
            }
        netlist = self.packed.netlist
        n = netlist.n_blocks
        in_arrival = np.zeros(n)
        in_pred = np.full(n, -1, dtype=int)
        endpoints: Dict[int, float] = {}

        for block_id in self._comb_order:
            block = netlist.blocks[block_id]
            tile = self.block_tile[block_id]
            if block.type == BlockType.INPUT:
                t_out = 0.0
            elif block.type == BlockType.FF:
                t_out = FF_CLK_TO_Q_S
            elif block.type == BlockType.BRAM:
                t_out = float(delays["bram"][tile])
            elif block.type == BlockType.LUT:
                t_out = in_arrival[block_id] + float(delays["lut"][tile])
            elif block.type == BlockType.DSP:
                t_out = in_arrival[block_id] + float(delays["dsp"][tile])
            else:  # OUTPUT pad: endpoint only
                t_out = in_arrival[block_id]

            if block.type in (BlockType.FF, BlockType.BRAM):
                endpoints[block_id] = in_arrival[block_id] + FF_SETUP_S
            elif block.type == BlockType.OUTPUT:
                endpoints[block_id] = t_out

            for net_id in block.output_nets:
                net = netlist.nets[net_id]
                for sink in net.sinks:
                    elements = self.sink_elements[(net_id, sink)]
                    d_net = 0.0
                    for resource, elem_tile in elements:
                        d_net += float(delays[resource][elem_tile])
                    arr = t_out + d_net
                    if arr > in_arrival[sink]:
                        in_arrival[sink] = arr
                        in_pred[sink] = block_id
        return in_arrival, in_pred, endpoints

    def _chain_to(self, endpoint: int, in_pred: np.ndarray) -> List[int]:
        chain: List[int] = [endpoint]
        while in_pred[chain[-1]] >= 0:
            chain.append(int(in_pred[chain[-1]]))
        chain.reverse()
        return chain

    def critical_path(
        self,
        fabric: Fabric,
        t_tiles: np.ndarray,
        delay_scale: Optional[np.ndarray] = None,
    ) -> TimingReport:
        """Longest register-to-register (or PI/PO) path delay.

        ``t_tiles`` is the per-tile temperature vector in Celsius (length =
        number of layout tiles).  A scalar broadcasts to a uniform die
        temperature.  ``delay_scale`` optionally multiplies the
        ``(n_resources, n_tiles)`` delay matrix entrywise — e.g. the
        supply-voltage factors of :mod:`repro.power.voltage` in the
        energy-mode objective.
        """
        t_tiles = self._normalize_temps(t_tiles)
        _, in_pred, endpoints = self._arrival_pass(fabric, t_tiles, delay_scale)
        if not endpoints:
            raise ValueError("design has no timing endpoints")
        best_endpoint = max(endpoints, key=lambda e: endpoints[e])
        best_cp = endpoints[best_endpoint]
        if best_cp <= 0.0:
            raise ValueError(
                f"non-positive critical-path delay ({best_cp:g} s) at "
                f"endpoint block {best_endpoint}"
            )
        return TimingReport(
            critical_path_s=best_cp,
            frequency_hz=1.0 / best_cp,
            critical_endpoint=best_endpoint,
            critical_blocks=self._chain_to(best_endpoint, in_pred),
        )

    def endpoint_slacks(
        self,
        fabric: Fabric,
        t_tiles: np.ndarray,
        clock_period_s: float,
        delay_scale: Optional[np.ndarray] = None,
    ) -> Dict[int, float]:
        """Setup slack of every endpoint at a target clock period, seconds.

        Negative slack means the endpoint fails timing at that clock under
        the given thermal profile (and optional per-(resource, tile)
        ``delay_scale`` factors, e.g. a scaled supply).
        """
        if clock_period_s <= 0.0:
            raise ValueError("clock period must be positive")
        t_tiles = self._normalize_temps(t_tiles)
        _, _, endpoints = self._arrival_pass(fabric, t_tiles, delay_scale)
        return {e: clock_period_s - d for e, d in endpoints.items()}

    def top_paths(
        self, fabric: Fabric, t_tiles: np.ndarray, k: int = 5
    ) -> List[TimingReport]:
        """The ``k`` worst endpoint paths, slowest first.

        One path per endpoint (the classic per-endpoint report); useful for
        inspecting near-critical paths whose ranking shifts with
        temperature (paper Sec. II's criticism of CP-sampling methods).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        t_tiles = self._normalize_temps(t_tiles)
        _, in_pred, endpoints = self._arrival_pass(fabric, t_tiles)
        worst = sorted(endpoints.items(), key=lambda kv: -kv[1])[:k]
        return [
            TimingReport(
                critical_path_s=delay,
                frequency_hz=1.0 / delay if delay > 0 else float("inf"),
                critical_endpoint=endpoint,
                critical_blocks=self._chain_to(endpoint, in_pred),
            )
            for endpoint, delay in worst
            if delay > 0.0
        ]

    def critical_path_resource_mix(
        self, fabric: Fabric, t_tiles: np.ndarray
    ) -> Dict[str, float]:
        """Fraction of the critical-path delay per resource type.

        Explains the per-benchmark spread of guardbanding gains (DSP-heavy
        paths gain most — paper Figs. 6-8).
        """
        t_tiles = self._normalize_temps(t_tiles)
        report = self.critical_path(fabric, t_tiles)
        delays = self._resource_delays(fabric, t_tiles)
        netlist = self.packed.netlist
        totals: Dict[str, float] = {}

        def add(resource: str, tile: int) -> None:
            totals[resource] = totals.get(resource, 0.0) + float(
                delays[resource][tile]
            )

        for prev, current in zip(report.critical_blocks, report.critical_blocks[1:]):
            # Net segment between prev and current.
            for net_id in netlist.blocks[prev].output_nets:
                if current in netlist.nets[net_id].sinks:
                    for resource, tile in self.sink_elements[(net_id, current)]:
                        add(resource, tile)
                    break
            block = netlist.blocks[current]
            if block.type == BlockType.LUT:
                add("lut", self.block_tile[current])
            elif block.type == BlockType.DSP:
                add("dsp", self.block_tile[current])
        start = netlist.blocks[report.critical_blocks[0]]
        if start.type == BlockType.BRAM:
            add("bram", self.block_tile[start.id])
        total = sum(totals.values()) or 1.0
        return {k: v / total for k, v in sorted(totals.items())}
