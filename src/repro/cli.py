"""The ``repro`` command-line interface — one shared parser module.

``python -m repro`` (see :mod:`repro.__main__`, a thin wrapper) and any
embedding tool resolve every subcommand, flag and exit-code convention
from here.

Commands:

- ``characterize [--corner C]`` — print the Table II-style fabric
  characterization for a design corner;
- ``guardband BENCH [--ambient T]`` — run Algorithm 1 on a VTR benchmark
  and compare against the worst-case margin;
- ``corners`` — print the Fig. 3-style corner-crossing summary;
- ``grades [--count K]`` — plan a temperature-grade portfolio (Sec. III-C
  extension);
- ``suite [--ambient T] [--workers N]`` — Fig. 6/7-style per-benchmark
  gains over the whole VTR-19 suite on the parallel sweep engine;
- ``sweep --benchmarks A,B --ambients T1,T2 [--corners C1,C2]`` — an
  arbitrary benchmarks x ambients x corners grid on the engine;
- ``report PATH`` — render a previously recorded sweep from its JSONL
  stream (or a ``--run-dir`` directory) without re-running anything;
- ``serve --store DIR`` — host the distributed sweep service
  (:mod:`repro.service`) over the versioned ``/v1`` HTTP wire API;
- ``submit SPEC --url URL`` — send a wire-envelope
  :class:`~repro.runner.spec.ExperimentSpec` to a running server
  (``--watch`` streams progress, ``--wait`` blocks for the result);
- ``status JOB --url URL`` — poll a submitted job (``--cells`` includes
  the per-cell records).

``suite`` and ``sweep`` checkpoint with ``--run-dir DIR`` (per-cell JSONL
stream plus a persistent result store under ``DIR``) and pick an
interrupted run back up with ``--resume DIR``, re-executing only the
cells that never finished.

CLI contract: every subcommand accepts ``--json`` (machine-readable
result on stdout) and exits non-zero on failure — errors are reported as
one diagnostic line (or a JSON error object), never a raw traceback.
Partially failed sweeps exit with code 1 and still report every
completed cell; a ``failed`` service job makes ``submit --wait`` and
``status`` exit 1.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Dict, Optional, Sequence

import numpy as np

from repro.api import (
    ArchParams,
    ExperimentSpec,
    GuardbandConfig,
    JobResult,
    SweepResult,
    build_fabric,
    corner_delay_curves,
    guardband_gain,
    observe,
    run_flow,
    run_sweep,
    thermal_aware_guardband,
    vtr_benchmark,
    worst_case_frequency,
)
from repro.core.grades import plan_temperature_grades
from repro.netlists.vtr_suite import benchmark_names
from repro.reporting.sweep import (
    format_sweep_energy_table,
    format_sweep_gains_chart,
    format_sweep_table,
)
from repro.reporting.tables import format_table


def _emit(args: argparse.Namespace, payload: Dict[str, object], text: str) -> None:
    """Write the command result: JSON when ``--json``, prose otherwise."""
    if getattr(args, "json", False):
        print(json.dumps(payload, sort_keys=False))
    else:
        print(text)


def _parse_floats(raw: str, flag: str) -> tuple:
    try:
        return tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError as error:
        raise SystemExit(f"error: {flag} expects comma-separated numbers, "
                         f"got {raw!r} ({error})")


def _cmd_characterize(args: argparse.Namespace) -> int:
    fabric = build_fabric(args.corner, ArchParams())
    rows = []
    records = []
    for name, char in fabric.resources.items():
        intercept, slope = char.delay_fit()
        leak_c, leak_k = char.leakage_fit()
        rows.append(
            (name, f"{char.area_um2:.1f}",
             f"{intercept * 1e12:.0f}+{slope * 1e12:.2f}T",
             f"{char.pdyn_w_base * 1e6:.2f}",
             f"{leak_c * 1e6:.2f}e^{leak_k:.3f}T")
        )
        records.append(
            {
                "resource": name,
                "area_um2": char.area_um2,
                "delay_intercept_s": intercept,
                "delay_slope_s_per_c": slope,
                "pdyn_w": char.pdyn_w_base,
                "plkg_coeff_w": leak_c,
                "plkg_exponent_per_c": leak_k,
            }
        )
    _emit(
        args,
        {"corner_celsius": args.corner, "resources": records},
        format_table(
            ["resource", "area um2", "delay ps", "Pdyn uW", "Plkg uW"],
            rows, title=f"D{args.corner:g} characterization",
        ),
    )
    return 0


def _cmd_guardband(args: argparse.Namespace) -> int:
    arch = ArchParams()
    fabric = build_fabric(25.0, arch)
    flow = run_flow(vtr_benchmark(args.benchmark), arch)
    result = thermal_aware_guardband(
        flow, fabric, args.ambient, config=GuardbandConfig()
    )
    f_wc = worst_case_frequency(flow, fabric)
    gain = guardband_gain(result.frequency_hz, f_wc)
    _emit(
        args,
        {
            "benchmark": args.benchmark,
            "t_ambient": args.ambient,
            "frequency_hz": result.frequency_hz,
            "worst_case_hz": f_wc,
            "gain": gain,
            "iterations": result.iterations,
            "mean_tile_celsius": float(result.tile_temperatures.mean()),
            "max_tile_celsius": float(result.tile_temperatures.max()),
        },
        f"{args.benchmark}: thermal-aware {result.frequency_hz / 1e6:.1f} MHz "
        f"vs worst-case {f_wc / 1e6:.1f} MHz "
        f"(+{gain * 100:.1f}%), "
        f"{result.iterations} iterations, "
        f"die {result.tile_temperatures.mean():.1f} C mean / "
        f"{result.tile_temperatures.max():.1f} C max",
    )
    return 0


def _cmd_corners(args: argparse.Namespace) -> int:
    curves = corner_delay_curves((0.0, 25.0, 100.0), "cp", ArchParams())
    rows = []
    records = []
    for t in np.arange(0.0, 101.0, 10.0):
        winner = curves.best_corner_at(float(t))
        rows.append((f"{t:.0f} C", f"D{winner:g}"))
        records.append({"operating_celsius": float(t), "corner": winner})
    _emit(
        args,
        {"winners": records},
        format_table(["operating T", "fastest device"], rows,
                     title="Fig. 3 corner winners"),
    )
    return 0


def _cmd_grades(args: argparse.Namespace) -> int:
    plan = plan_temperature_grades(args.count)
    rows = [
        (f"[{band.t_low:.0f}, {band.t_high:.0f}] C",
         f"D{band.corner_celsius:g}",
         f"{band.expected_delay_s * 1e12:.2f} ps")
        for band in plan.bands
    ]
    _emit(
        args,
        {
            "average_delay_s": plan.average_delay_s,
            "bands": [
                {
                    "t_low": band.t_low,
                    "t_high": band.t_high,
                    "corner_celsius": band.corner_celsius,
                    "expected_delay_s": band.expected_delay_s,
                }
                for band in plan.bands
            ],
        },
        format_table(
            ["band", "grade corner", "E[d]"],
            rows,
            title=f"{len(plan.bands)}-grade portfolio "
                  f"(range-average {plan.average_delay_s * 1e12:.2f} ps)",
        ),
    )
    return 0


def _run_engine(
    args: argparse.Namespace,
    spec: ExperimentSpec,
    chart_ambient: Optional[float],
) -> int:
    """Shared suite/sweep driver: engine run + report + exit code."""
    quiet = getattr(args, "json", False)

    # --resume DIR implies --run-dir DIR; a run dir lays out the
    # checkpointable artefacts (JSONL stream + result store) together.
    run_dir = getattr(args, "resume", None) or getattr(args, "run_dir", None)
    jsonl_path = getattr(args, "jsonl", None)
    store_path = None
    resume_from = None
    if run_dir is not None:
        os.makedirs(run_dir, exist_ok=True)
        if jsonl_path is None:
            jsonl_path = os.path.join(run_dir, "sweep.jsonl")
        store_path = os.path.join(run_dir, "store")
    if getattr(args, "resume", None) is not None:
        if jsonl_path is not None and os.path.exists(jsonl_path):
            resume_from = jsonl_path
        else:
            print(
                f"warning: nothing to resume at {jsonl_path!r}; "
                f"running the sweep from scratch",
                file=sys.stderr,
            )

    def progress(outcome, done, total):
        if quiet:
            return
        if isinstance(outcome, JobResult):
            if outcome.mode == "energy" and outcome.vdd_v is not None:
                saving = (
                    f" -{outcome.energy_saving * 100:.1f}% E"
                    if outcome.energy_saving is not None
                    else ""
                )
                print(
                    f"  [{done}/{total}] {outcome.job_id:28s} "
                    f"VDD {outcome.vdd_v:.3f} V{saving}",
                    flush=True,
                )
            else:
                print(
                    f"  [{done}/{total}] {outcome.job_id:28s} "
                    f"{outcome.gain * 100:5.1f}%",
                    flush=True,
                )
        else:
            print(
                f"  [{done}/{total}] {outcome.job_id:28s} "
                f"FAILED: {outcome.error_type}: {outcome.message}",
                flush=True,
            )

    trace_path = getattr(args, "trace", None)
    session = (
        observe.enabled(jsonl_path=trace_path)
        if trace_path
        else contextlib.nullcontext()
    )
    with session:
        sweep = run_sweep(
            spec,
            workers=args.workers,
            jsonl_path=jsonl_path,
            job_timeout=getattr(args, "timeout", None),
            progress=progress,
            store=store_path,
            resume_from=resume_from,
            batch=getattr(args, "batch", False),
        )
    if quiet:
        print(sweep.to_json())
    else:
        print()
        print(format_sweep_table(sweep))
        if any(r.mode == "energy" for r in sweep.results):
            print()
            print(format_sweep_energy_table(sweep))
        if chart_ambient is not None and sweep.results:
            print()
            print(
                format_sweep_gains_chart(
                    sweep,
                    t_ambient=chart_ambient,
                    title=f"guardbanding gain at Tamb={chart_ambient:g}C",
                )
            )
        if trace_path:
            print(
                f"\ntrace written to {trace_path} "
                f"(read it with: python -m repro.observe report {trace_path})"
            )
        if sweep.failures:
            print(
                f"\n{len(sweep.failures)} of {sweep.n_jobs} cells failed",
                file=sys.stderr,
            )
    return 0 if not sweep.failures else 1


def _objective_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Map the shared --mode/--target-frequency flags onto ExperimentSpec
    keyword arguments.  Validation (energy requires a target, frequency
    forbids one) lives in ExperimentSpec itself so the CLI, the wire
    decoder and library callers reject invalid combinations with the
    same diagnostic."""
    return {
        "mode": args.mode or "frequency",
        "target_frequency_hz": args.target_frequency,
    }


def _cmd_suite(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        benchmarks=tuple(benchmark_names()),
        ambients=(args.ambient,),
        corners=(25.0,),
        thermal_weight=args.thermal_weight,
        **_objective_kwargs(args),  # type: ignore[arg-type]
    )
    return _run_engine(args, spec, chart_ambient=args.ambient)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.benchmarks.strip().lower() == "all":
        benches: Sequence[str] = benchmark_names()
    else:
        benches = tuple(
            part.strip() for part in args.benchmarks.split(",") if part.strip()
        )
    spec = ExperimentSpec(
        benchmarks=tuple(benches),
        ambients=_parse_floats(args.ambients, "--ambients"),
        corners=_parse_floats(args.corners, "--corners"),
        thermal_weight=args.thermal_weight,
        **_objective_kwargs(args),  # type: ignore[arg-type]
    )
    chart = spec.ambients[0] if len(spec.ambients) == 1 else None
    return _run_engine(args, spec, chart_ambient=chart)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Host the sweep service until interrupted."""
    # Deferred imports: the service stack (asyncio server + runner
    # engine) loads only when serving, keeping `--help` and the
    # single-shot commands light.
    import asyncio

    from repro.observe.sinks import FanoutSink, JsonlSink, Sink
    from repro.service.events import ObserveBridge
    from repro.service.http import SweepServer
    from repro.service.scheduler import SweepScheduler
    from repro.store import open_store
    from typing import List

    scheduler = SweepScheduler(
        open_store(args.store),
        workers=args.workers,
        max_retries=args.max_retries,
        batch=not args.no_batch,
    )
    server = SweepServer(scheduler, host=args.host, port=args.port)
    sinks: List[Sink] = []
    if args.trace:
        sinks.append(JsonlSink(args.trace))
    sinks.append(ObserveBridge(scheduler.broker))

    async def amain() -> None:
        await server.start()
        host, port = server.address
        url = f"http://{host}:{port}"
        _emit(
            args,
            {"url": url, "store": scheduler.store_path,
             "workers": args.workers, "trace": args.trace},
            f"serving sweeps on {url} (store: {scheduler.store_path})",
        )
        sys.stdout.flush()
        try:
            await server.serve_forever()
        finally:
            await server.close()

    # The serving loop thread owns the process's observe session; every
    # record fans out to the trace file (when asked for) and to the live
    # per-job event bridge.
    with observe.enabled(sink=FanoutSink(sinks)):
        try:
            asyncio.run(amain())
        except KeyboardInterrupt:
            pass
    return 0


def _load_spec(path: str):
    """Read a wire-envelope ExperimentSpec from a file or stdin ('-')."""
    from repro.runner.spec import ExperimentSpec
    from repro.service.wire import from_wire

    raw = sys.stdin.read() if path == "-" else open(path, encoding="utf-8").read()
    spec = from_wire(json.loads(raw))
    if not isinstance(spec, ExperimentSpec):
        raise ValueError(
            f"submit takes an ExperimentSpec envelope, "
            f"got {type(spec).__name__}"
        )
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.service import SweepClient

    spec = _load_spec(args.spec)
    if args.thermal_weight is not None:
        spec = replace(spec, thermal_weight=args.thermal_weight)
    if args.mode is not None or args.target_frequency is not None:
        # An objective override replaces the pair wholesale: --mode
        # energy needs its own target, and --mode frequency must clear
        # any target the envelope carried (ExperimentSpec validation
        # rejects the leftovers otherwise).
        spec = replace(
            spec,
            mode=args.mode or spec.mode,
            target_frequency_hz=args.target_frequency,
        )
    client = SweepClient(url=args.url, timeout=args.timeout or 30.0)
    job_id = client.submit(spec)
    quiet = getattr(args, "json", False)
    if not quiet:
        print(f"submitted {job_id} to {args.url}", flush=True)
    if args.watch:
        for record in client.stream(job_id):
            if quiet:
                continue  # --json emits exactly one object: the result
            attrs = record.get("attrs", {})
            detail = attrs.get("job_id") or attrs.get("cell") or ""
            print(f"  {record.get('name')} {detail}".rstrip(), flush=True)
    if args.watch or args.wait:
        result = client.wait(job_id, timeout=args.timeout)
        _emit(
            args,
            result,
            f"{job_id}: {result['status']} "
            f"({result['n_done']}/{result['n_cells']} cells, "
            f"{result['n_failed']} failed, "
            f"{result['n_store_hits']} store hits, "
            f"{result['n_deduped']} deduped)",
        )
        return 0 if result["status"] == "done" else 1
    if quiet:
        _emit(args, {"job_id": job_id, "url": args.url}, "")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import SweepClient

    client = SweepClient(url=args.url)
    payload = (
        client.result(args.job_id) if args.cells
        else client.status(args.job_id)
    )
    _emit(
        args,
        payload,
        f"{payload['job_id']}: {payload['status']} "
        f"({payload['n_done']}/{payload['n_cells']} cells, "
        f"{payload['n_failed']} failed, "
        f"{payload['n_store_hits']} store hits, "
        f"{payload['n_deduped']} deduped)",
    )
    return 1 if payload["status"] == "failed" else 0


def _cmd_report(args: argparse.Namespace) -> int:
    path = args.jsonl
    if os.path.isdir(path):
        path = os.path.join(path, "sweep.jsonl")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no sweep records at {path!r}")
    sweep = SweepResult.from_jsonl(path)
    _emit(
        args,
        sweep.to_dict(),
        format_sweep_table(sweep, title=f"recorded sweep: {path}"),
    )
    return 0 if not sweep.failures else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal-aware FPGA design and flow (DATE'19 reproduction)",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON result on stdout",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", parents=[common],
                       help="Table II-style characterization")
    p.add_argument("--corner", type=float, default=25.0)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("guardband", parents=[common],
                       help="Algorithm 1 on one benchmark")
    p.add_argument("benchmark", choices=benchmark_names())
    p.add_argument("--ambient", type=float, default=25.0)
    p.set_defaults(func=_cmd_guardband)

    p = sub.add_parser("corners", parents=[common],
                       help="corner-crossing summary (Fig. 3)")
    p.set_defaults(func=_cmd_corners)

    p = sub.add_parser("grades", parents=[common],
                       help="temperature-grade portfolio")
    p.add_argument("--count", type=int, default=3)
    p.set_defaults(func=_cmd_grades)

    engine = argparse.ArgumentParser(add_help=False)
    engine.add_argument(
        "--workers", type=int, default=1,
        help="parallel worker processes (default 1 = serial)",
    )
    engine.add_argument(
        "--jsonl", type=str, default=None,
        help="stream one JSON record per finished cell to this file",
    )
    engine.add_argument(
        "--timeout", type=float, default=None,
        help="per-job timeout in seconds (parallel mode)",
    )
    engine.add_argument(
        "--trace", type=str, default=None,
        help="write a repro.observe span/event trace (JSONL) to this file; "
             "summarise it with 'python -m repro.observe report PATH'",
    )
    engine.add_argument(
        "--run-dir", type=str, default=None, metavar="DIR",
        help="checkpoint the run under DIR: per-cell records in "
             "DIR/sweep.jsonl and converged results in DIR/store "
             "(overridden by an explicit --jsonl)",
    )
    engine.add_argument(
        "--resume", type=str, default=None, metavar="DIR",
        help="resume an interrupted run from DIR (implies --run-dir DIR): "
             "completed cells are reloaded from DIR/sweep.jsonl and only "
             "the remainder is executed",
    )
    engine.add_argument(
        "--batch", action="store_true",
        help="solve same-flow cells (an ambient sweep over one placed "
             "benchmark) as one joint batched fixed point; per-cell "
             "records and store/resume semantics are unchanged",
    )
    engine.add_argument(
        "--thermal-weight", type=float, default=0.0, metavar="W",
        help="thermal-aware placement: blend the thermal proxy objective "
             "into the anneal at weight W relative to the wirelength cost "
             "(0 = legacy wirelength-only placement)",
    )

    # One objective flag group shared by every command that builds or
    # amends an ExperimentSpec (suite/sweep/submit), so the energy knob
    # spells and validates identically everywhere.  Defaults are None so
    # `submit` can distinguish "not given" from an explicit override;
    # suite/sweep map None to the spec defaults.
    objective = argparse.ArgumentParser(add_help=False)
    objective.add_argument(
        "--mode", type=str, choices=("frequency", "energy"), default=None,
        help="objective: 'frequency' (default) maximises the guardbanded "
             "clock at nominal supply; 'energy' scales the supply down "
             "until timing just closes at --target-frequency",
    )
    objective.add_argument(
        "--target-frequency", type=float, default=None, metavar="HZ",
        dest="target_frequency",
        help="iso-frequency clock for --mode energy, in Hz (e.g. 100e6); "
             "invalid with --mode frequency",
    )

    p = sub.add_parser("suite", parents=[common, engine, objective],
                       help="Fig. 6/7-style suite gains on the sweep engine")
    p.add_argument("--ambient", type=float, default=25.0)
    p.set_defaults(func=_cmd_suite)

    p = sub.add_parser("sweep", parents=[common, engine, objective],
                       help="benchmarks x ambients x corners grid")
    p.add_argument(
        "--benchmarks", type=str, required=True,
        help='comma-separated VTR benchmark names, or "all"',
    )
    p.add_argument("--ambients", type=str, default="25")
    p.add_argument("--corners", type=str, default="25")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("report", parents=[common],
                       help="render a recorded sweep (JSONL or run dir)")
    p.add_argument(
        "jsonl", type=str,
        help="path to a sweep JSONL stream, or a --run-dir directory",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "serve", parents=[common],
        help="host the sweep service over the /v1 HTTP wire API",
    )
    p.add_argument(
        "--store", type=str, required=True, metavar="DIR",
        help="result-store directory every converged cell persists to "
             "(created if missing); repeat queries are served from it",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8023,
        help="listening port (0 picks a free one, printed at startup)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="worker processes computing store misses (default 2)",
    )
    p.add_argument(
        "--max-retries", type=int, default=1,
        help="extra attempts per work unit on retryable errors",
    )
    p.add_argument(
        "--no-batch", action="store_true",
        help="dispatch each cell alone instead of batching same-flow "
             "cells into joint fixed points",
    )
    p.add_argument(
        "--trace", type=str, default=None,
        help="write the service's repro.observe trace (JSONL) here; "
             "summarise it with 'python -m repro.observe report PATH'",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", parents=[common, objective],
        help="submit a wire-envelope ExperimentSpec to a sweep server",
    )
    p.add_argument(
        "spec", type=str,
        help="path to a JSON wire envelope (repro.service.wire.to_wire), "
             "or '-' for stdin",
    )
    p.add_argument(
        "--url", type=str, required=True,
        help="server endpoint, e.g. http://127.0.0.1:8023",
    )
    p.add_argument(
        "--watch", action="store_true",
        help="stream the job's progress events until it finishes "
             "(implies --wait)",
    )
    p.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and report the result "
             "(exit 1 when the job failed)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="give up waiting after this many seconds",
    )
    p.add_argument(
        "--thermal-weight", type=float, default=None, metavar="W",
        help="override the spec's thermal-aware placement weight before "
             "submitting (default: use the spec's value)",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "status", parents=[common],
        help="poll a submitted job on a sweep server",
    )
    p.add_argument("job_id", type=str)
    p.add_argument(
        "--url", type=str, required=True,
        help="server endpoint, e.g. http://127.0.0.1:8023",
    )
    p.add_argument(
        "--cells", action="store_true",
        help="include the per-cell records accumulated so far",
    )
    p.set_defaults(func=_cmd_status)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not a failure of ours.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except Exception as error:  # CLI contract: diagnostics, not tracebacks
        if getattr(args, "json", False):
            print(
                json.dumps(
                    {"error": type(error).__name__, "message": str(error)}
                )
            )
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
