"""COFFE stand-in: automatic transistor sizing and resource characterization.

Given an architecture description (:class:`repro.arch.params.ArchParams`) and
a *design corner temperature*, this package sizes the transistors of every
FPGA resource (routing multiplexers, LUT, BRAM, DSP) for minimum area-delay
product at that corner, then characterizes the sized fabric across the whole
0..100 Celsius junction range:

- ``delay(T)`` linear fits (paper Table II delay column, Fig. 1),
- ``leakage(T)`` exponential fits (Table II Plkg column),
- dynamic power per access and silicon area.

The result is a :class:`repro.coffe.fabric.Fabric` — the per-corner device
model consumed by the CAD flow and by Algorithm 1.
"""

from repro.coffe.characterize import (
    ResourceCharacterization,
    characterize_fabric,
    characterize_resource,
)
from repro.coffe.fabric import (
    CP_WEIGHTS,
    Fabric,
    ResourceType,
    build_fabric,
)
from repro.coffe.sizing import SizingResult, size_subcircuit
from repro.coffe.subcircuits import (
    LutModel,
    MuxModel,
    SizableCircuit,
    WireLoad,
    soft_fabric_circuits,
)
from repro.coffe.bram import BramModel
from repro.coffe.dsp import DspModel

__all__ = [
    "BramModel",
    "CP_WEIGHTS",
    "DspModel",
    "Fabric",
    "LutModel",
    "MuxModel",
    "ResourceCharacterization",
    "ResourceType",
    "SizableCircuit",
    "SizingResult",
    "WireLoad",
    "build_fabric",
    "characterize_fabric",
    "characterize_resource",
    "size_subcircuit",
    "soft_fabric_circuits",
]
