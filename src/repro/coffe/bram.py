"""Block RAM model (paper Sec. IV-A, following Yazdanshenas et al.).

The BRAM core uses the low-power (high-Vth) device flavour at the boosted
``Vdd_low_power`` supply.  Its read path is

``predecoder -> wordline driver -> bitline development -> sense amp -> output``

**Why the BRAM shows the strongest design-corner effect** (paper Fig. 2: a
100 C-optimized BRAM is 1.35x slower at 0 C than a 0 C-optimized one, and a
0 C-optimized one is 1.19x slower at 100 C):

The bitline development time is rated against the *weakest* Monte-Carlo
cell's leakage (paper Sec. IV-A), and that leakage — subthreshold plus
DIBL/GIDL components of the 1000+ unaccessed cells — grows steeply with
temperature while the accessed cell's read current shrinks.  At a hot
design corner the bitline therefore dominates the read path and the sizing
optimizer moves silicon into the access devices and sense amplifier at the
expense of the wordline/output stages; at a cold corner the balance is
reversed.  Operating a fabric away from its corner exposes the mismatch,
producing the strongly asymmetric delay curves of paper Fig. 2.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.coffe.subcircuits import (
    DRIVER_MEDIUM,
    DRIVER_ROUTING,
    SRAM_CELL_AREA_UM2,
    SizableCircuit,
    WireLoad,
    inverter_input_cap,
    inverter_leakage,
    inverter_output_cap,
    transistor_area_um2,
)
from repro.spice.devices import (
    drain_capacitance,
    drain_current,
    effective_resistance,
    gate_capacitance,
    off_current,
)
from repro.spice.montecarlo import sram_cell_leakage, sram_weakest_cell_leakage
from repro.technology.ptm22 import LP_NMOS, LP_PMOS

SENSE_OFFSET_V = 0.050
"""Sense-amp input offset for a unit-width amp; shrinks as 1/sqrt(width)."""

SENSE_OFFSET_FLOOR_V = 0.012
"""Systematic (size-independent) component of the required bitline swing."""

CELL_READ_DERATE = 0.08
"""Cell read current relative to a lone access device: the series
pull-down/access stack and wordline underdrive limit the read current to a
small fraction of the device's saturation current."""

CELL_BODY_FACTOR = 1.20
"""Threshold increase of the access device due to the raised cell node."""

BITLINE_LEAK_FACTOR = 9.0
"""Off-state bitline current per cell relative to the bare subthreshold
off-current.  Lumps DIBL, gate-induced drain leakage and junction leakage of
the access device at full bitline bias — the components that erode read
swing in deep-nano SRAMs but are absent from the simple alpha-power channel
model.  Calibrated so the (weakest-cell) bitline leakage of an unbanked
1024-row bitline approaches half the cell read current at 100 C,
reproducing the corner asymmetry of paper Fig. 2."""

BANK_CHOICES = (1, 2, 4)
"""Bitline banking options the corner optimizer chooses between.  Splitting
the array into banks shortens the local bitlines (1/banks of the leakage and
wire), at the cost of per-bank sense amplifiers and a global-bitline mux
stage.  Hot-corner designs bank aggressively; cold-corner designs keep the
flat single-bank array — the second first-order corner mechanism of paper
Fig. 2 (BRAM shows the strongest corner dependence)."""


class BramModel(SizableCircuit):
    """A ``rows x width`` BRAM (1024 x 32 bit by default, paper Table I)."""

    def __init__(
        self,
        name: str,
        vdd_lp: float,
        design_corner_kelvin: float,
        n_rows: int = 1024,
        n_cols: int = 32,
        mc_cells: int = 1500,
        n_banks: int = 1,
    ):
        if n_rows < 2 or n_cols < 1:
            raise ValueError(f"{name}: bad BRAM geometry {n_rows}x{n_cols}")
        if n_banks not in BANK_CHOICES or n_rows % n_banks:
            raise ValueError(f"{name}: bad bank count {n_banks} for {n_rows} rows")
        self.name = name
        self.vdd = vdd_lp
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.n_banks = n_banks
        self.design_corner_kelvin = design_corner_kelvin
        self.wl_wire = WireLoad(
            resistance_ohms=6.0 * n_cols, capacitance_farads=0.05e-15 * n_cols
        )
        rows_local = n_rows // n_banks
        self.bl_wire = WireLoad(
            resistance_ohms=2.0 * rows_local, capacitance_farads=0.04e-15 * rows_local
        )
        self.global_wire = WireLoad(
            resistance_ohms=1.5 * n_rows, capacitance_farads=0.09e-15 * n_rows
        )
        self.decode_wire = WireLoad(
            resistance_ohms=2.0 * n_rows, capacitance_farads=0.03e-15 * n_rows
        )
        # Weakest-vs-mean cell leakage ratio at the design corner
        # (Monte-Carlo over Vth variation) — paper Sec. IV-A.
        sample = sram_weakest_cell_leakage(
            LP_NMOS, LP_PMOS, vdd_lp, design_corner_kelvin, n_cells=mc_cells
        )
        self.weak_factor = sample.weakest_amps / sample.mean_amps

    def variants(self) -> Tuple[SizableCircuit, ...]:
        return tuple(
            BramModel(
                self.name,
                self.vdd,
                self.design_corner_kelvin,
                n_rows=self.n_rows,
                n_cols=self.n_cols,
                n_banks=banks,
            )
            for banks in BANK_CHOICES
            if self.n_rows % banks == 0
        )

    @property
    def rows_per_bank(self) -> int:
        return self.n_rows // self.n_banks

    @property
    def size_names(self) -> Tuple[str, ...]:
        return ("w_access", "w_wl", "w_sense", "w_out")

    @property
    def default_sizes(self) -> Dict[str, float]:
        return {"w_access": 1.5, "w_wl": 8.0, "w_sense": 4.0, "w_out": 6.0}

    # -- read-path pieces ---------------------------------------------------

    def _bitline_cap(self, w_access: float, w_sense: float) -> float:
        return (
            self.rows_per_bank * 0.5 * drain_capacitance(LP_NMOS, w_access)
            + self.bl_wire.capacitance_farads
            + gate_capacitance(LP_NMOS, 2.0 * w_sense)
        )

    def _cell_current(self, w_access: float, t_kelvin: float) -> float:
        """Read current of the accessed cell through the access device."""
        dev = LP_NMOS.scaled(vth0=LP_NMOS.vth0 * CELL_BODY_FACTOR)
        i_dev = drain_current(dev, self.vdd, self.vdd / 2.0, w_access, t_kelvin)
        return CELL_READ_DERATE * i_dev

    def _bitline_leakage(
        self, w_access: float, t_kelvin: float, weak: bool
    ) -> float:
        """Aggregate off-state current of the unaccessed bitline cells.

        ``weak=True`` applies the Monte-Carlo weakest-cell factor — the
        design-time pessimism the trigger is provisioned against.
        """
        i_off = off_current(LP_NMOS, self.vdd, w_access, t_kelvin)
        total = (self.rows_per_bank - 1) * BITLINE_LEAK_FACTOR * i_off
        return total * self.weak_factor if weak else total

    def _swing_volts(self, w_sense: float) -> float:
        """Bitline swing needed by the sense amp: its input offset."""
        return SENSE_OFFSET_FLOOR_V + SENSE_OFFSET_V / max(w_sense, 1e-6) ** 0.5

    def develop_time_seconds(
        self, sizes: Mapping[str, float], t_kelvin: float, weak: bool = False
    ) -> float:
        """Bitline development time at the operating temperature.

        ``weak=True`` rates the development against the weakest Monte-Carlo
        cell's bitline leakage — the pessimism the *design* flow must absorb
        (paper Sec. IV-A); ``weak=False`` is the nominal behaviour Table II
        characterizes.  The bitline is the temperature-critical BRAM stage:
        the cell read current degrades with T while the leakage eroding it
        grows steeply.
        """
        w_a, w_sa = sizes["w_access"], sizes["w_sense"]
        c_bl = self._bitline_cap(w_a, w_sa)
        net = self._cell_current(w_a, t_kelvin) - self._bitline_leakage(
            w_a, t_kelvin, weak=weak
        )
        i_floor = 0.02 * self._cell_current(w_a, t_kelvin)
        net = max(net, i_floor)
        return c_bl * self._swing_volts(w_sa) / net

    def design_delay_seconds(
        self, sizes: Mapping[str, float], t_kelvin: float
    ) -> float:
        """Read delay under weakest-cell pessimism (drives corner design)."""
        return self._delay(sizes, t_kelvin, weak=True)

    def delay_seconds(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        """Nominal read delay (what the characterization sweep reports)."""
        return self._delay(sizes, t_kelvin, weak=False)

    def _delay(
        self, sizes: Mapping[str, float], t_kelvin: float, weak: bool
    ) -> float:
        self.validate_sizes(sizes)
        w_a, w_wl = sizes["w_access"], sizes["w_wl"]
        w_sa, w_o = sizes["w_sense"], sizes["w_out"]

        # Predecoder drives the row-decoder wire spanning the array height,
        # then the selected wordline driver fires the row.
        c_dec = self.decode_wire.capacitance_farads + inverter_input_cap(
            DRIVER_MEDIUM, w_wl
        )
        r_dec = effective_resistance(DRIVER_MEDIUM, self.vdd, w_wl, t_kelvin)
        t_dec = (
            r_dec * c_dec
            + self.decode_wire.resistance_at(t_kelvin)
            * self.decode_wire.capacitance_farads
            / 2.0
        )
        c_wl = (
            self.n_cols * gate_capacitance(LP_NMOS, w_a)
            + self.wl_wire.capacitance_farads
        )
        r_wl = effective_resistance(DRIVER_MEDIUM, self.vdd, w_wl, t_kelvin)
        t_wl = t_dec + (
            r_wl * (inverter_output_cap(DRIVER_MEDIUM, w_wl) + c_wl)
            + self.wl_wire.resistance_at(t_kelvin) * c_wl / 2.0
        )

        t_bl = self.develop_time_seconds(sizes, t_kelvin, weak=weak)

        # Sense amplifier regeneration + output buffer.
        r_sa = effective_resistance(LP_NMOS, self.vdd, w_sa, t_kelvin)
        t_sa = 3.0 * r_sa * (
            drain_capacitance(LP_NMOS, w_sa) * 2.0
            + inverter_input_cap(DRIVER_MEDIUM, w_o)
        )
        r_o = effective_resistance(DRIVER_MEDIUM, self.vdd, w_o, t_kelvin)
        t_out = r_o * (inverter_output_cap(DRIVER_MEDIUM, w_o) + 25e-15)

        # Banked arrays pay a global-bitline stage: the bank's sense output
        # drives a device-height wire through the bank mux.
        t_bank = 0.0
        if self.n_banks > 1:
            c_gl = self.global_wire.capacitance_farads + self.n_banks * (
                inverter_output_cap(DRIVER_MEDIUM, w_o)
            )
            # The global stage is wire-dominated and driven by a large,
            # velocity-saturated driver: nearly temperature-flat.
            r_gl_drv = effective_resistance(DRIVER_ROUTING, self.vdd, w_o, t_kelvin)
            t_bank = (
                r_gl_drv * c_gl
                + self.global_wire.resistance_at(t_kelvin)
                * self.global_wire.capacitance_farads
                / 2.0
            )
        return t_wl + t_bl + t_sa + t_out + t_bank

    def area_um2(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        cell_area = (
            self.n_rows
            * self.n_cols
            * (SRAM_CELL_AREA_UM2 + 2.0 * transistor_area_um2(sizes["w_access"]))
        )
        periphery = (
            self.n_rows * transistor_area_um2(sizes["w_wl"]) * (1.0 + 1.8)
            + self.n_cols
            * (
                self.n_banks * 4.0 * transistor_area_um2(sizes["w_sense"])
                + (1.0 + 1.8) * transistor_area_um2(sizes["w_out"])
            )
        )
        if self.n_banks > 1:
            periphery += (
                self.n_banks * self.n_cols * 2.0 * transistor_area_um2(sizes["w_out"])
            )
        return cell_area + periphery

    def leakage_watts(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        self.validate_sizes(sizes)
        cell_leak = sram_cell_leakage(
            LP_NMOS, LP_PMOS, self.vdd, t_kelvin, include_gate=True
        )
        p_cells = self.n_rows * self.n_cols * cell_leak * self.vdd
        p_periph = self.n_cols * (
            inverter_leakage(DRIVER_MEDIUM, sizes["w_out"], self.vdd, t_kelvin)
            + self.n_banks
            * inverter_leakage(LP_NMOS, sizes["w_sense"], self.vdd, t_kelvin)
        ) + self.n_rows * 0.02 * inverter_leakage(
            DRIVER_MEDIUM, sizes["w_wl"], self.vdd, t_kelvin
        )
        return p_cells + p_periph

    def switched_cap_farads(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        c_wl = self.n_cols * gate_capacitance(LP_NMOS, sizes["w_access"])
        c_bl = (
            self.n_cols
            * self._bitline_cap(sizes["w_access"], sizes["w_sense"])
            * 0.15
        )
        c_out = self.n_cols * (
            inverter_input_cap(DRIVER_MEDIUM, sizes["w_out"])
            + inverter_output_cap(DRIVER_MEDIUM, sizes["w_out"])
        )
        return c_wl + c_bl + c_out
