"""Fabric characterization: delay(T), leakage(T), dynamic power and area.

Mirrors the paper's Sec. IV-A flow: size every resource at the design-corner
temperature, then sweep the junction temperature 0..100 Celsius in 1-degree
steps and fit the observed behaviour (Table II reports linear delay fits and
exponential leakage fits obtained exactly this way).

Calibration: the analytical device model produces the right *shapes* but its
absolute scale is not HSPICE-on-PTM.  We therefore calibrate one
multiplicative factor per resource and per quantity (delay, area, leakage,
dynamic power) such that the **25 C-corner fabric evaluated at 25 C** matches
the paper's published Table II characterization.  The same frozen factors
are applied to every other design corner, so corner-to-corner differences
(paper Figs. 2-3) and temperature behaviour are genuine model outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.arch.params import ArchParams
from repro.coffe.bram import BramModel
from repro.coffe.dsp import DspModel
from repro.coffe.sizing import (
    SizingResult,
    size_subcircuit,
    size_subcircuit_budgeted,
)
from repro.coffe.subcircuits import SizableCircuit, soft_fabric_circuits
from repro.technology.temperature import celsius_to_kelvin

T_GRID_CELSIUS = np.arange(0.0, 101.0, 1.0)
"""Characterization sweep: 0..100 C in 1 C steps (paper Sec. IV-A)."""

BASE_FREQUENCY_HZ = 100e6
"""Dynamic power is reported at 100 MHz and alpha = 1 (paper Table II)."""

RESOURCE_NAMES = (
    "sb_mux",
    "cb_mux",
    "local_mux",
    "feedback_mux",
    "output_mux",
    "lut",
    "bram",
    "dsp",
)


@dataclass(frozen=True)
class Table2Row:
    """Published Table II entry for one resource."""

    area_um2: float
    delay_intercept_ps: float
    delay_slope_ps_per_c: float
    pdyn_uw: float
    plkg_fit: Callable[[float], float]
    """Published leakage fit, microwatts as a function of Celsius."""

    def delay_ps(self, t_celsius: float) -> float:
        return self.delay_intercept_ps + self.delay_slope_ps_per_c * t_celsius


TABLE2: Dict[str, Table2Row] = {
    "sb_mux": Table2Row(2.8, 166.0, 0.67, 5.74, lambda t: 0.28 * math.exp(0.014 * t)),
    "cb_mux": Table2Row(5.7, 112.0, 0.70, 0.64, lambda t: 0.26 * math.exp(0.014 * t)),
    "local_mux": Table2Row(1.2, 65.0, 0.35, 0.15, lambda t: 0.06 * math.exp(0.015 * t)),
    "feedback_mux": Table2Row(
        0.9, 100.0, 0.54, 0.63, lambda t: 0.23 * math.exp(0.014 * t)
    ),
    "output_mux": Table2Row(
        0.6, 31.0, 0.17, 0.30, lambda t: 0.24 * math.exp(0.014 * t)
    ),
    "lut": Table2Row(33.0, 163.0, 1.40, 1.60, lambda t: 2.5 * math.exp(0.015 * t)),
    "bram": Table2Row(7811.0, 902.0, 6.74, 6.85, lambda t: 6.2 + (t / 70.0) ** 2),
    "dsp": Table2Row(5338.0, 547.0, 4.42, 879.0, lambda t: 24.4 * math.exp(0.01 * t)),
}

SOFT_TILE_AREA_UM2 = 1196.0
"""Area of one full soft-fabric tile (paper Sec. IV-A)."""


@dataclass
class ResourceCharacterization:
    """Characterized behaviour of one sized resource across temperature."""

    name: str
    corner_celsius: float
    sizes: Dict[str, float]
    t_grid_celsius: np.ndarray
    delay_s: np.ndarray
    """Delay at each grid temperature, seconds."""
    leakage_w: np.ndarray
    """Static power at each grid temperature, watts."""
    area_um2: float
    pdyn_w_base: float
    """Dynamic power at 100 MHz, alpha = 1, watts."""

    def delay_fit(self) -> Tuple[float, float]:
        """Least-squares linear fit ``(intercept_s, slope_s_per_c)``."""
        slope, intercept = np.polyfit(self.t_grid_celsius, self.delay_s, 1)
        return float(intercept), float(slope)

    def leakage_fit(self) -> Tuple[float, float]:
        """Exponential fit ``leak(T) = c * exp(k T)`` as ``(c_watts, k)``."""
        log_leak = np.log(self.leakage_w)
        k, log_c = np.polyfit(self.t_grid_celsius, log_leak, 1)
        return float(math.exp(log_c)), float(k)

    def delay_at(self, t_celsius) -> np.ndarray:
        """Interpolated delay at arbitrary temperatures, seconds."""
        return np.interp(t_celsius, self.t_grid_celsius, self.delay_s)

    def leakage_at(self, t_celsius) -> np.ndarray:
        """Interpolated leakage at arbitrary temperatures, watts."""
        return np.interp(t_celsius, self.t_grid_celsius, self.leakage_w)


def build_circuits(
    arch: ArchParams, corner_celsius: float
) -> Dict[str, SizableCircuit]:
    """Instantiate all Table II resources for a given design corner."""
    circuits: Dict[str, SizableCircuit] = dict(soft_fabric_circuits(arch))
    circuits["bram"] = BramModel(
        "bram",
        arch.vdd_low_power,
        design_corner_kelvin=celsius_to_kelvin(corner_celsius),
        n_rows=arch.bram_rows,
        n_cols=arch.bram_width_bits,
    )
    circuits["dsp"] = DspModel("dsp", arch.vdd)
    return circuits


REFERENCE_CORNER_CELSIUS = 25.0
"""Corner fixing the per-resource area budget and the reference sizing."""

AREA_BUDGET_HEADROOM = 1.30
"""Family floorplan slack over the reference area-delay-product sizing.

Real tile floorplans leave headroom over the lean ADP optimum; the corner
optimizer may spend it (e.g. on transmission-gate topologies or larger
drivers) where the corner temperature justifies it."""

_BUDGET_CACHE: Dict[ArchParams, Dict[str, SizingResult]] = {}


def reference_sizings(arch: ArchParams) -> Dict[str, SizingResult]:
    """Area-delay-product sizing of every resource at the reference corner.

    Fixes the common silicon (area) budget all corner fabrics must respect —
    the floorplan of a device family does not change between grades.  Cached
    per architecture.
    """
    if arch in _BUDGET_CACHE:
        return _BUDGET_CACHE[arch]
    refs = {
        name: size_subcircuit(circuit, celsius_to_kelvin(REFERENCE_CORNER_CELSIUS))
        for name, circuit in build_circuits(arch, REFERENCE_CORNER_CELSIUS).items()
    }
    _BUDGET_CACHE[arch] = refs
    return refs


def corner_sizing(
    arch: ArchParams, circuit: SizableCircuit, corner_celsius: float
) -> Tuple[SizableCircuit, SizingResult]:
    """Minimum-delay sizing of a resource at a corner under the area budget.

    Every topology variant of the circuit (e.g. NMOS-pass vs.
    transmission-gate muxes) is sized under the common budget; the variant
    fastest *at the corner* wins — the corner decides the topology, exactly
    as it decides the widths.
    """
    ref = reference_sizings(arch)[circuit.name]
    best: Optional[Tuple[SizableCircuit, SizingResult]] = None
    for variant in circuit.variants():
        try:
            sizing = size_subcircuit_budgeted(
                variant,
                celsius_to_kelvin(corner_celsius),
                area_budget_um2=ref.area_um2 * AREA_BUDGET_HEADROOM,
                initial_sizes=ref.sizes,
            )
        except ValueError:
            # Variant cannot fit the family floorplan even at minimum
            # widths (e.g. a transmission-gate mux under a tight budget).
            continue
        if best is None or sizing.delay_seconds < best[1].delay_seconds:
            best = (variant, sizing)
    if best is None:
        raise ValueError(
            f"{circuit.name}: no topology variant fits the "
            f"{ref.area_um2:.3g} um2 area budget at corner {corner_celsius} C"
        )
    return best


def characterize_resource(
    circuit: SizableCircuit,
    corner_celsius: float,
    sizing: SizingResult,
    t_grid_celsius: np.ndarray = T_GRID_CELSIUS,
) -> ResourceCharacterization:
    """Sweep a sized resource across the temperature grid (raw units)."""
    sizes = sizing.sizes
    delays = np.array(
        [
            circuit.delay_seconds(sizes, celsius_to_kelvin(t))
            for t in t_grid_celsius
        ]
    )
    leaks = np.array(
        [
            circuit.leakage_watts(sizes, celsius_to_kelvin(t))
            for t in t_grid_celsius
        ]
    )
    c_sw = circuit.switched_cap_farads(sizes)
    pdyn = 0.5 * c_sw * circuit.vdd**2 * BASE_FREQUENCY_HZ
    return ResourceCharacterization(
        name=circuit.name,
        corner_celsius=corner_celsius,
        sizes=dict(sizes),
        t_grid_celsius=t_grid_celsius.copy(),
        delay_s=delays,
        leakage_w=leaks,
        area_um2=circuit.area_um2(sizes),
        pdyn_w_base=pdyn,
    )


@dataclass(frozen=True)
class CalibrationScales:
    """Per-resource multiplicative calibration factors (see module docstring)."""

    delay: Mapping[str, float]
    area: Mapping[str, float]
    leakage: Mapping[str, float]
    pdyn: Mapping[str, float]


_CALIBRATION_CACHE: Dict[ArchParams, CalibrationScales] = {}


def calibration_scales(arch: ArchParams) -> CalibrationScales:
    """Calibration factors anchoring the 25 C corner to paper Table II.

    Computed once per architecture and cached: characterize the raw model at
    the 25 C corner and take the ratio to the published Table II values at
    25 C.
    """
    if arch in _CALIBRATION_CACHE:
        return _CALIBRATION_CACHE[arch]
    delay_scales: Dict[str, float] = {}
    area_scales: Dict[str, float] = {}
    leak_scales: Dict[str, float] = {}
    pdyn_scales: Dict[str, float] = {}
    for name, circuit in build_circuits(arch, 25.0).items():
        variant, sizing = corner_sizing(arch, circuit, 25.0)
        raw = characterize_resource(variant, 25.0, sizing)
        target = TABLE2[name]
        raw_d25 = float(raw.delay_at(25.0))
        raw_l25 = float(raw.leakage_at(25.0))
        delay_scales[name] = target.delay_ps(25.0) * 1e-12 / raw_d25
        area_scales[name] = target.area_um2 / raw.area_um2
        leak_scales[name] = target.plkg_fit(25.0) * 1e-6 / raw_l25
        pdyn_scales[name] = target.pdyn_uw * 1e-6 / raw.pdyn_w_base
    scales = CalibrationScales(delay_scales, area_scales, leak_scales, pdyn_scales)
    _CALIBRATION_CACHE[arch] = scales
    return scales


def characterize_fabric(
    arch: ArchParams,
    corner_celsius: float,
    calibrated: bool = True,
) -> Dict[str, ResourceCharacterization]:
    """Characterize every resource of a fabric sized at ``corner_celsius``.

    With ``calibrated=True`` (default) the per-resource calibration factors
    anchored at the 25 C corner are applied, yielding Table II units.
    """
    scales = calibration_scales(arch) if calibrated else None
    out: Dict[str, ResourceCharacterization] = {}
    for name, circuit in build_circuits(arch, corner_celsius).items():
        variant, sizing = corner_sizing(arch, circuit, corner_celsius)
        char = characterize_resource(variant, corner_celsius, sizing)
        if scales is not None:
            char.delay_s = char.delay_s * scales.delay[name]
            char.leakage_w = char.leakage_w * scales.leakage[name]
            char.area_um2 = char.area_um2 * scales.area[name]
            char.pdyn_w_base = char.pdyn_w_base * scales.pdyn[name]
        out[name] = char
    return out
