"""Stratix-like DSP block model (paper Sec. IV-A).

The paper characterizes a Stratix-like DSP (Boutros et al., FPL'18)
synthesized from NanGate standard cells with per-temperature liberty
libraries (SiliconSmart + Design Compiler).  We reproduce the aggregate
behaviour with a gate-level critical-path model: a multiplier/adder chain of
stacked-CMOS stages built from minimum-size-class logic devices plus
inter-cell wire.  Minimum-size logic devices are phonon-mobility dominated,
which gives the DSP the steepest delay-vs-temperature curve of paper Fig. 1
(up to ~84 % at 100 C).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.coffe.subcircuits import (
    DRIVER_MEDIUM,
    LOGIC_MIN,
    SizableCircuit,
    WireLoad,
    inverter_input_cap,
    inverter_leakage,
    inverter_output_cap,
    transistor_area_um2,
)
from repro.spice.devices import drain_capacitance, effective_resistance

STACK_BODY_FACTOR = 1.12
"""Effective Vth increase of a device inside a 2-high CMOS stack."""

N_LOGIC_STAGES = 14
"""Gate stages on the multiplier-adder critical path."""

FANOUT_PER_STAGE = 2.4
EQUIVALENT_GATES = 9000
"""Total gate count for area/leakage/power accounting (27x27 mult + adders)."""


class DspModel(SizableCircuit):
    """Critical-path + aggregate model of the DSP hard block."""

    def __init__(self, name: str, vdd: float):
        self.name = name
        self.vdd = vdd
        self.cell_wire = WireLoad(resistance_ohms=45.0, capacitance_farads=0.35e-15)
        self.stage_device = LOGIC_MIN.scaled(
            name="dsp_stage", vth0=LOGIC_MIN.vth0 * STACK_BODY_FACTOR
        )

    @property
    def size_names(self) -> Tuple[str, ...]:
        return ("w_gate", "w_drive")

    @property
    def default_sizes(self) -> Dict[str, float]:
        return {"w_gate": 2.0, "w_drive": 6.0}

    def delay_seconds(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        self.validate_sizes(sizes)
        w_g, w_d = sizes["w_gate"], sizes["w_drive"]
        # A 2-stack pulls through twice the single-device resistance.
        r_stage = 2.0 * effective_resistance(self.stage_device, self.vdd, w_g, t_kelvin)
        c_stage = (
            2.0 * drain_capacitance(self.stage_device, w_g)
            + FANOUT_PER_STAGE * inverter_input_cap(self.stage_device, w_g)
            + self.cell_wire.capacitance_farads
        )
        t_stage = (
            r_stage * c_stage
            + self.cell_wire.resistance_at(t_kelvin)
            * self.cell_wire.capacitance_farads
            / 2.0
        )
        t_logic = N_LOGIC_STAGES * t_stage
        # Pipeline/output driver stage.
        r_d = effective_resistance(DRIVER_MEDIUM, self.vdd, w_d, t_kelvin)
        t_drive = r_d * (inverter_output_cap(DRIVER_MEDIUM, w_d) + 10e-15)
        return t_logic + t_drive

    def area_um2(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        gate_area = EQUIVALENT_GATES * 4.0 * transistor_area_um2(sizes["w_gate"])
        driver_area = 64.0 * (1.0 + 1.8) * transistor_area_um2(sizes["w_drive"])
        return gate_area + driver_area

    def leakage_watts(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        self.validate_sizes(sizes)
        # A stacked-off gate leaks far less than a lone device; 0.35 folds in
        # the average stacking factor across the gate population.
        p_gates = 0.35 * EQUIVALENT_GATES * inverter_leakage(
            self.stage_device, sizes["w_gate"], self.vdd, t_kelvin
        )
        p_drivers = 64.0 * inverter_leakage(
            DRIVER_MEDIUM, sizes["w_drive"], self.vdd, t_kelvin
        )
        return p_gates + p_drivers

    def switched_cap_farads(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        c_gate = (
            inverter_input_cap(self.stage_device, sizes["w_gate"])
            + 2.0 * drain_capacitance(self.stage_device, sizes["w_gate"])
            + self.cell_wire.capacitance_farads
        )
        # A multiply toggles a large share of the gate population.
        return 0.30 * EQUIVALENT_GATES * c_gate
