"""The :class:`Fabric` — a fully characterized FPGA device at one design corner.

A Fabric answers, for every resource type and any junction temperature in
the supported 0..100 Celsius range:

- ``delay_s(resource, T)`` — propagation delay (drives the temperature-aware
  STA of :mod:`repro.cad.timing`),
- ``leakage_w(resource, T)`` — static power (drives the power model),
- ``dynamic_power_w(resource, f, alpha)`` — dynamic power,
- ``area_um2(resource)``,
- ``cp_delay_s(T)`` — the paper's *representative critical path*: a weighted
  average of the soft resources by their occurrence probability on real
  critical paths (paper Fig. 1).

Fabrics at different corners are the subject of the paper's thermal-aware
design study (Figs. 2-3) and architecture proposal (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.params import ArchParams
from repro.coffe.characterize import (
    RESOURCE_NAMES,
    ResourceCharacterization,
    TABLE2,
    T_GRID_CELSIUS,
    characterize_fabric,
)

ResourceType = str
"""Resource identifier: one of ``repro.coffe.characterize.RESOURCE_NAMES``."""

CP_WEIGHTS: Dict[str, float] = {
    "sb_mux": 0.55,
    "cb_mux": 0.17,
    "lut": 0.11,
    "local_mux": 0.09,
    "output_mux": 0.05,
    "feedback_mux": 0.03,
}
"""Occurrence weight of each soft resource on a representative critical path
(routing-dominated, as in real designs — paper Fig. 1 / footnote [23])."""

BASE_FREQUENCY_HZ = 100e6
T_MIN_CELSIUS = 0.0
T_MAX_CELSIUS = 100.0


@dataclass
class Fabric:
    """Characterized FPGA device optimized for one temperature corner."""

    corner_celsius: float
    arch: ArchParams
    resources: Dict[str, ResourceCharacterization]
    label: str = ""

    def __post_init__(self) -> None:
        missing = set(RESOURCE_NAMES) - set(self.resources)
        if missing:
            raise ValueError(f"fabric missing resources: {sorted(missing)}")
        if not self.label:
            self.label = f"D{self.corner_celsius:g}"

    # -- queries -------------------------------------------------------------

    def delay_s(self, resource: ResourceType, t_celsius) -> np.ndarray:
        """Delay of a resource at the given temperature(s), seconds."""
        char = self._resource(resource)
        t = np.clip(t_celsius, T_MIN_CELSIUS, T_MAX_CELSIUS)
        return char.delay_at(t)

    def leakage_w(self, resource: ResourceType, t_celsius) -> np.ndarray:
        """Static power of one resource instance at temperature(s), watts."""
        char = self._resource(resource)
        t = np.clip(t_celsius, T_MIN_CELSIUS, T_MAX_CELSIUS)
        return char.leakage_at(t)

    def dynamic_power_w(
        self, resource: ResourceType, frequency_hz: float, activity: float
    ) -> float:
        """Dynamic power of one instance at frequency and activity, watts.

        Linear scaling from the characterized 100 MHz / alpha=1 base point
        (``p = 1/2 alpha C V^2 f``, paper Sec. IV-A).
        """
        if frequency_hz < 0.0 or activity < 0.0:
            raise ValueError("frequency and activity must be non-negative")
        base = self._resource(resource).pdyn_w_base
        return base * (frequency_hz / BASE_FREQUENCY_HZ) * activity

    def area_um2(self, resource: ResourceType) -> float:
        return self._resource(resource).area_um2

    def sizes(self, resource: ResourceType) -> Dict[str, float]:
        return dict(self._resource(resource).sizes)

    def cp_delay_s(self, t_celsius) -> np.ndarray:
        """Representative soft-fabric critical-path delay, seconds."""
        t = np.clip(t_celsius, T_MIN_CELSIUS, T_MAX_CELSIUS)
        total = None
        for name, weight in CP_WEIGHTS.items():
            part = self._resource(name).delay_at(t) * weight
            total = part if total is None else total + part
        return total

    def delay_increase_fraction(self, resource_or_cp: str, t_celsius) -> np.ndarray:
        """Fractional delay increase relative to 0 Celsius (paper Fig. 1)."""
        if resource_or_cp == "cp":
            d = self.cp_delay_s(t_celsius)
            d0 = self.cp_delay_s(0.0)
        else:
            d = self.delay_s(resource_or_cp, t_celsius)
            d0 = self.delay_s(resource_or_cp, 0.0)
        return d / d0 - 1.0

    def _resource(self, resource: ResourceType) -> ResourceCharacterization:
        try:
            return self.resources[resource]
        except KeyError:
            known = ", ".join(sorted(self.resources))
            raise KeyError(
                f"unknown resource {resource!r}; known resources: {known}"
            ) from None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_published_table2(cls, arch: Optional[ArchParams] = None) -> "Fabric":
        """The paper's published 25 C-corner characterization (Table II).

        Builds the fabric directly from the published fits instead of the
        sizing flow — useful as a reference and in tests.
        """
        arch = arch or ArchParams()
        resources: Dict[str, ResourceCharacterization] = {}
        for name, row in TABLE2.items():
            grid = T_GRID_CELSIUS
            delays = (
                row.delay_intercept_ps + row.delay_slope_ps_per_c * grid
            ) * 1e-12
            leaks = np.array([row.plkg_fit(t) for t in grid]) * 1e-6
            resources[name] = ResourceCharacterization(
                name=name,
                corner_celsius=25.0,
                sizes={},
                t_grid_celsius=grid.copy(),
                delay_s=delays,
                leakage_w=leaks,
                area_um2=row.area_um2,
                pdyn_w_base=row.pdyn_uw * 1e-6,
            )
        return cls(25.0, arch, resources, label="D25-published")


_FABRIC_CACHE: Dict[Tuple[ArchParams, float], Fabric] = {}


def build_fabric(
    corner_celsius: float,
    arch: Optional[ArchParams] = None,
    use_cache: bool = True,
) -> Fabric:
    """Size and characterize a fabric at a design-corner temperature.

    This is the main entry point of the COFFE layer.  Results are cached per
    (architecture, corner) because sizing plus the 1-degree characterization
    sweep is the most expensive part of the stack.
    """
    if not (T_MIN_CELSIUS <= corner_celsius <= T_MAX_CELSIUS):
        raise ValueError(
            f"design corner {corner_celsius} C outside supported "
            f"[{T_MIN_CELSIUS:g}, {T_MAX_CELSIUS:g}] C junction range"
        )
    arch = arch or ArchParams()
    key = (arch, corner_celsius)
    if use_cache and key in _FABRIC_CACHE:
        return _FABRIC_CACHE[key]
    resources = characterize_fabric(arch, corner_celsius)
    fabric = Fabric(corner_celsius, arch, resources)
    if use_cache:
        _FABRIC_CACHE[key] = fabric
    return fabric
