"""Automated transistor sizing at a design-corner temperature.

Two-phase scheme, mirroring how a fabric family is engineered:

1. **Reference sizing** (:func:`size_subcircuit`): minimize the COFFE-style
   area-delay product at the 25 C base corner.  This fixes the silicon *area
   budget* of each resource — the tile floorplan is common to all speed/
   temperature grades of a device family.
2. **Corner sizing** (:func:`size_subcircuit_budgeted`): at each design
   corner temperature, minimize *delay at that corner* subject to the common
   area budget.

Because every corner device spends the same silicon, the corner-T device is
by construction the fastest *at its own corner*, and the delay-vs-T curves
of differently-optimized fabrics cross exactly as in paper Figs. 2-3: the
relative speed of a subcircuit's stages (pass-transistor tree vs. large
velocity-saturated driver vs. metal wire) shifts with temperature, so the
optimal width allocation — and hence the sized fabric — is
corner-dependent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.coffe.subcircuits import SizableCircuit

MIN_WIDTH = 1.0
MAX_WIDTH = 80.0
GRID_POINTS_PER_OCTAVE = 16
MAX_SWEEPS = 16
RELATIVE_TOLERANCE = 1e-6


@dataclass
class SizingResult:
    """Outcome of sizing one subcircuit at a design corner."""

    circuit_name: str
    corner_kelvin: float
    sizes: Dict[str, float]
    delay_seconds: float
    area_um2: float
    cost: float
    sweeps: int
    area_budget_um2: Optional[float] = None


def _candidate_widths(current: float, half_octaves: int = 2) -> list:
    """Geometric grid spanning ``2^-half_octaves .. 2^half_octaves`` x current."""
    step = 2.0 ** (1.0 / GRID_POINTS_PER_OCTAVE)
    n_steps = GRID_POINTS_PER_OCTAVE * half_octaves
    candidates = set()
    for k in range(-n_steps, n_steps + 1):
        w = current * step**k
        candidates.add(min(max(w, MIN_WIDTH), MAX_WIDTH))
    return sorted(candidates)


def size_subcircuit(
    circuit: SizableCircuit,
    t_kelvin: float,
    area_exponent: float = 1.0,
    initial_sizes: Optional[Mapping[str, float]] = None,
    max_sweeps: int = MAX_SWEEPS,
) -> SizingResult:
    """Reference sizing: minimize ``delay * area^area_exponent`` at a corner.

    Deterministic coordinate descent over a geometric width grid.
    """
    if t_kelvin <= 0.0:
        raise ValueError(f"corner temperature must be positive, got {t_kelvin} K")
    sizes: Dict[str, float] = dict(initial_sizes or circuit.default_sizes)
    circuit.validate_sizes(sizes)

    def cost_of(s: Mapping[str, float]) -> float:
        delay = circuit.design_delay_seconds(s, t_kelvin)
        return delay * circuit.area_um2(s) ** area_exponent

    best_cost = cost_of(sizes)
    sweeps_done = 0
    for sweep in range(max_sweeps):
        sweeps_done = sweep + 1
        improved = False
        for name in circuit.size_names:
            best_w = sizes[name]
            for w in _candidate_widths(sizes[name]):
                if w == sizes[name]:
                    continue
                trial = dict(sizes)
                trial[name] = w
                c = cost_of(trial)
                if c < best_cost * (1.0 - RELATIVE_TOLERANCE):
                    best_cost = c
                    best_w = w
            if best_w != sizes[name]:
                sizes[name] = best_w
                improved = True
        if not improved:
            break

    return SizingResult(
        circuit_name=circuit.name,
        corner_kelvin=t_kelvin,
        sizes=sizes,
        delay_seconds=circuit.design_delay_seconds(sizes, t_kelvin),
        area_um2=circuit.area_um2(sizes),
        cost=best_cost,
        sweeps=sweeps_done,
    )


def size_subcircuit_budgeted(
    circuit: SizableCircuit,
    t_kelvin: float,
    area_budget_um2: float,
    initial_sizes: Optional[Mapping[str, float]] = None,
    max_sweeps: int = MAX_SWEEPS,
) -> SizingResult:
    """Corner sizing: minimize delay at ``t_kelvin`` with area <= budget.

    Coordinate descent restricted to feasible moves, interleaved with a
    uniform-rescale step that re-inflates all widths to exhaust the budget
    (the unconstrained delay optimum always wants more area, so the budget
    binds and coordinate moves trade width between stages along it).
    """
    if t_kelvin <= 0.0:
        raise ValueError(f"corner temperature must be positive, got {t_kelvin} K")
    if area_budget_um2 <= 0.0:
        raise ValueError(f"area budget must be positive, got {area_budget_um2}")
    sizes: Dict[str, float] = dict(initial_sizes or circuit.default_sizes)
    circuit.validate_sizes(sizes)
    sizes = _rescale_to_budget(circuit, sizes, area_budget_um2)
    if circuit.area_um2(sizes) > area_budget_um2 * (1.0 + 1e-9):
        raise ValueError(
            f"{circuit.name}: area budget {area_budget_um2:.3g} um2 infeasible "
            f"even at minimum widths"
        )

    best_delay = circuit.design_delay_seconds(sizes, t_kelvin)
    area_coeff = _area_coefficients(circuit, sizes)
    sweeps_done = 0
    for sweep in range(max_sweeps):
        sweeps_done = sweep + 1
        improved = False
        # Single-variable moves (shrinking always stays feasible).
        for name in circuit.size_names:
            best_w = sizes[name]
            for w in _candidate_widths(sizes[name]):
                if w == sizes[name]:
                    continue
                trial = dict(sizes)
                trial[name] = w
                if circuit.area_um2(trial) > area_budget_um2:
                    continue
                d = circuit.design_delay_seconds(trial, t_kelvin)
                if d < best_delay * (1.0 - RELATIVE_TOLERANCE):
                    best_delay = d
                    best_w = w
            if best_w != sizes[name]:
                sizes[name] = best_w
                improved = True
        # Pairwise width transfers: grow one variable and shrink another so
        # the area stays exactly on budget.  These are the moves that walk
        # *along* a tight budget; single-variable moves deadlock there.
        names = list(circuit.size_names)
        for i, grow in enumerate(names):
            for shrink in names:
                if shrink == grow or area_coeff[shrink] <= 0.0:
                    continue
                for w_grow in _candidate_widths(sizes[grow], half_octaves=1):
                    if w_grow <= sizes[grow]:
                        continue
                    extra = (w_grow - sizes[grow]) * area_coeff[grow]
                    w_shrink = sizes[shrink] - extra / area_coeff[shrink]
                    if w_shrink < MIN_WIDTH:
                        continue
                    trial = dict(sizes)
                    trial[grow] = w_grow
                    trial[shrink] = w_shrink
                    if circuit.area_um2(trial) > area_budget_um2 * (1.0 + 1e-9):
                        continue
                    d = circuit.design_delay_seconds(trial, t_kelvin)
                    if d < best_delay * (1.0 - RELATIVE_TOLERANCE):
                        best_delay = d
                        sizes = trial
                        improved = True
        # Exhaust any slack the coordinate moves opened up.
        rescaled = _rescale_to_budget(circuit, sizes, area_budget_um2)
        d = circuit.design_delay_seconds(rescaled, t_kelvin)
        if d < best_delay * (1.0 - RELATIVE_TOLERANCE):
            sizes = rescaled
            best_delay = d
            improved = True
        if not improved:
            break

    return SizingResult(
        circuit_name=circuit.name,
        corner_kelvin=t_kelvin,
        sizes=sizes,
        delay_seconds=best_delay,
        area_um2=circuit.area_um2(sizes),
        cost=best_delay,
        sweeps=sweeps_done,
        area_budget_um2=area_budget_um2,
    )


def _area_coefficients(
    circuit: SizableCircuit, sizes: Mapping[str, float]
) -> Dict[str, float]:
    """Per-variable area slope d(area)/d(width).

    All area models in :mod:`repro.coffe` are affine in the widths, so a
    single finite difference per variable is exact.
    """
    base = circuit.area_um2(sizes)
    coeffs: Dict[str, float] = {}
    delta = 1.0
    for name in circuit.size_names:
        trial = dict(sizes)
        trial[name] = sizes[name] + delta
        coeffs[name] = (circuit.area_um2(trial) - base) / delta
    return coeffs


def _rescale_to_budget(
    circuit: SizableCircuit,
    sizes: Mapping[str, float],
    area_budget_um2: float,
) -> Dict[str, float]:
    """Uniformly scale all widths so the area lands on (just under) budget."""
    lo, hi = 1e-3, 1e3

    def area_at(scale: float) -> float:
        scaled = {
            k: min(max(v * scale, MIN_WIDTH), MAX_WIDTH) for k, v in sizes.items()
        }
        return circuit.area_um2(scaled)

    if area_at(hi) <= area_budget_um2:
        scale = hi
    elif area_at(lo) > area_budget_um2:
        scale = lo
    else:
        for _ in range(60):
            mid = math.sqrt(lo * hi)
            if area_at(mid) > area_budget_um2:
                hi = mid
            else:
                lo = mid
        scale = lo
    return {k: min(max(v * scale, MIN_WIDTH), MAX_WIDTH) for k, v in sizes.items()}
