"""Sizable subcircuit models of the FPGA soft fabric.

Every resource of paper Table II is modelled as an Elmore-delay RC network
whose resistances come from the alpha-power device model
(:mod:`repro.spice.devices`) evaluated at the operating temperature.  The
models therefore expose exactly the knobs the paper's flow exploits:

- transistor widths (the sizing variables COFFE optimizes at a design
  corner),
- the operating temperature (delay and leakage of the *same* sizing move
  with T),
- circuit structure (pass-transistor trees vs. large velocity-saturated
  routing drivers vs. metal wire RC), which is what differentiates the
  temperature sensitivity of the resources in paper Fig. 1 — e.g. the SB mux
  drives a long length-4 metal wire and is the least sensitive, while the
  LUT is a pure minimum-size pass-transistor tree and is the most sensitive.

Device variants: large routing drivers operate deep in velocity saturation,
where the effective mobility exponent is much smaller (drift velocity ~
T^-1) than for minimum-size devices dominated by phonon-scattering mobility
(~ T^-2 .. T^-2.3).  We encode this as per-role variants of the HP device.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.arch.params import ArchParams
from repro.spice.devices import (
    drain_capacitance,
    effective_resistance,
    gate_capacitance,
    leakage_current,
    pass_gate_resistance,
)
from repro.technology.ptm22 import HP_NMOS, HP_PMOS, DeviceParams
from repro.technology.temperature import T_REFERENCE_K, celsius_to_kelvin

PN_RATIO = 1.8
"""PMOS/NMOS width ratio of inverters."""

PASS_BODY_FACTOR = 1.25
"""Body-effect threshold increase factor for pass transistors."""

WIRE_TEMPCO_PER_K = 0.0039
"""Copper resistance temperature coefficient, 1/K (relative to 25 C)."""

TRANSISTOR_AREA_BASE_UM2 = 0.035
TRANSISTOR_AREA_PER_W_UM2 = 0.020
SRAM_CELL_AREA_UM2 = 0.18

# Device variants by circuit role (see module docstring).
PASS_ROUTING = HP_NMOS.scaled(name="hp_nmos_pass", mu_exp=2.00)
PASS_LUT = HP_NMOS.scaled(name="hp_nmos_lut_pass", mu_exp=2.30)
DRIVER_ROUTING = HP_NMOS.scaled(name="hp_nmos_rdrv", mu_exp=0.95, alpha=1.05)
DRIVER_MEDIUM = HP_NMOS.scaled(name="hp_nmos_mdrv", mu_exp=1.50, alpha=1.15)
LOGIC_MIN = HP_NMOS.scaled(name="hp_nmos_logic", mu_exp=2.15)
LOGIC_MIN_P = HP_PMOS.scaled(name="hp_pmos_logic", mu_exp=2.10)
PASS_TGATE = HP_NMOS.scaled(name="hp_tgate", mu_exp=1.00)
"""Effective device of a CMOS transmission gate: the complementary PMOS
covers the NMOS's weak (body-affected, low-overdrive) region, so the pair's
resistance is much flatter over temperature than an NMOS-only pass gate."""

TGATE_COLD_PENALTY = 1.05
"""Transmission-gate resistance at 0 C relative to an equal-width NMOS pass
gate, folding in the PMOS's extra diffusion load.  At elevated temperatures
the flatter temperature curve wins: the design corner decides which topology
COFFE picks, which is a first-order contributor to the corner-optimized
fabric differences of paper Figs. 2-3."""

TGATE_AREA_FACTOR = 1.25
"""Area factor of a transmission gate vs. an NMOS pass.  The complementary
PMOS folds into the same diffusion strip and reuses the existing SRAM
complement output, so the layout cost is far below 2x."""

TGATE_LEAK_FACTOR = 1.6
"""Off-state leakage factor of a transmission gate vs. an NMOS pass."""

PASS_STYLES = ("nmos", "tgate")


@dataclass(frozen=True)
class WireLoad:
    """Lumped metal wire: total resistance and capacitance at 25 Celsius."""

    resistance_ohms: float
    capacitance_farads: float

    def resistance_at(self, t_kelvin: float) -> float:
        """Wire resistance with the copper temperature coefficient applied."""
        return self.resistance_ohms * (
            1.0 + WIRE_TEMPCO_PER_K * (t_kelvin - T_REFERENCE_K)
        )


NO_WIRE = WireLoad(0.0, 0.0)


def transistor_area_um2(width: float) -> float:
    """Layout area of one transistor of the given width, square micrometres."""
    return TRANSISTOR_AREA_BASE_UM2 + TRANSISTOR_AREA_PER_W_UM2 * width


def inverter_input_cap(device: DeviceParams, width: float) -> float:
    """Input capacitance of an inverter with NMOS width ``width``."""
    return gate_capacitance(device, width) * (1.0 + PN_RATIO)


def inverter_output_cap(device: DeviceParams, width: float) -> float:
    """Self (drain) capacitance of an inverter with NMOS width ``width``."""
    return drain_capacitance(device, width) * (1.0 + PN_RATIO)


def tgate_resistance(vdd: float, width: float, t_kelvin: float) -> float:
    """Effective resistance of a transmission gate, ohms.

    Anchored at ``TGATE_COLD_PENALTY`` times the equal-width NMOS pass gate
    at 0 Celsius, with the (flat) temperature shape of :data:`PASS_TGATE`.
    """
    t_cold = celsius_to_kelvin(0.0)
    r_nmos_cold = pass_gate_resistance(PASS_ROUTING, vdd, width, t_cold)
    shape = pass_gate_resistance(
        PASS_TGATE, vdd, width, t_kelvin, body_factor=1.0
    ) / pass_gate_resistance(PASS_TGATE, vdd, width, t_cold, body_factor=1.0)
    return TGATE_COLD_PENALTY * r_nmos_cold * shape


def inverter_leakage(
    device: DeviceParams, width: float, vdd: float, t_kelvin: float
) -> float:
    """Average leakage power of one inverter, watts.

    Half the time the NMOS leaks, half the time the (PN_RATIO-wide) PMOS;
    we fold both into the NMOS off-current for simplicity.
    """
    i_off = leakage_current(device, vdd, width, t_kelvin)
    return 0.5 * (1.0 + PN_RATIO) * i_off * vdd


class SizableCircuit(ABC):
    """A transistor-sizable FPGA subcircuit.

    ``sizes`` maps sizing-variable names to widths in minimum-width units.
    """

    name: str
    vdd: float

    @property
    @abstractmethod
    def size_names(self) -> Tuple[str, ...]:
        """Names of the sizing variables."""

    @property
    @abstractmethod
    def default_sizes(self) -> Dict[str, float]:
        """Starting point for the sizing optimizer."""

    @abstractmethod
    def delay_seconds(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        """Propagation delay through the subcircuit at temperature ``t_kelvin``."""

    @abstractmethod
    def area_um2(self, sizes: Mapping[str, float]) -> float:
        """Layout area, square micrometres."""

    @abstractmethod
    def leakage_watts(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        """Static power at temperature ``t_kelvin``."""

    @abstractmethod
    def switched_cap_farads(self, sizes: Mapping[str, float]) -> float:
        """Total capacitance toggled per output transition (dynamic energy)."""

    def variants(self) -> Tuple["SizableCircuit", ...]:
        """Topology alternatives the corner optimizer may choose between."""
        return (self,)

    def design_delay_seconds(
        self, sizes: Mapping[str, float], t_kelvin: float
    ) -> float:
        """Delay as the *design-time* optimizer evaluates it.

        Defaults to the nominal delay; circuits whose design must absorb
        worst-case (e.g. weakest Monte-Carlo SRAM cell) pessimism override
        this — the pessimism shapes the corner's sizing/topology decisions
        without appearing in the characterized nominal behaviour.
        """
        return self.delay_seconds(sizes, t_kelvin)

    def validate_sizes(self, sizes: Mapping[str, float]) -> None:
        for name in self.size_names:
            if name not in sizes:
                raise KeyError(f"{self.name}: missing sizing variable {name!r}")
            if sizes[name] <= 0.0:
                raise ValueError(f"{self.name}: size {name!r} must be positive")


def _two_level_split(n_inputs: int) -> Tuple[int, int]:
    """COFFE-style two-level mux decomposition sizes (level1, level2)."""
    n1 = max(2, int(math.ceil(math.sqrt(n_inputs))))
    n2 = int(math.ceil(n_inputs / n1))
    return n1, n2


class MuxModel(SizableCircuit):
    """Two-level pass-transistor multiplexer with a two-stage output buffer.

    Structure (paper Fig. 4d): an ``n1 x n2`` NMOS pass tree selected by
    one-hot SRAM cells, followed by an inverter pair that restores the level
    and drives the load (metal wire plus downstream input capacitance).
    """

    def __init__(
        self,
        name: str,
        n_inputs: int,
        vdd: float,
        wire: WireLoad = NO_WIRE,
        fanout_cap_farads: float = 0.0,
        pass_device: DeviceParams = PASS_ROUTING,
        driver_device: DeviceParams = DRIVER_MEDIUM,
        pass_style: str = "nmos",
    ):
        if n_inputs < 2:
            raise ValueError(f"{name}: mux needs >= 2 inputs, got {n_inputs}")
        if pass_style not in PASS_STYLES:
            raise ValueError(f"{name}: unknown pass style {pass_style!r}")
        self.name = name
        self.n_inputs = n_inputs
        self.vdd = vdd
        self.wire = wire
        self.fanout_cap_farads = fanout_cap_farads
        self.pass_device = pass_device
        self.driver_device = driver_device
        self.pass_style = pass_style
        self.level1, self.level2 = _two_level_split(n_inputs)

    def variants(self) -> Tuple["SizableCircuit", ...]:
        return tuple(
            MuxModel(
                self.name,
                self.n_inputs,
                self.vdd,
                wire=self.wire,
                fanout_cap_farads=self.fanout_cap_farads,
                pass_device=self.pass_device,
                driver_device=self.driver_device,
                pass_style=style,
            )
            for style in PASS_STYLES
        )

    def _pass_resistance(self, width: float, t_kelvin: float) -> float:
        if self.pass_style == "tgate":
            return tgate_resistance(self.vdd, width, t_kelvin)
        return pass_gate_resistance(
            self.pass_device, self.vdd, width, t_kelvin, PASS_BODY_FACTOR
        )

    @property
    def size_names(self) -> Tuple[str, ...]:
        return ("w_pass", "w_inv1", "w_inv2")

    @property
    def default_sizes(self) -> Dict[str, float]:
        return {"w_pass": 2.0, "w_inv1": 3.0, "w_inv2": 10.0}

    @property
    def n_sram_cells(self) -> int:
        return self.level1 + self.level2

    def delay_seconds(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        self.validate_sizes(sizes)
        w_p = sizes["w_pass"]
        w_1 = sizes["w_inv1"]
        w_2 = sizes["w_inv2"]
        r_pass = self._pass_resistance(w_p, t_kelvin)
        c_d_pass = drain_capacitance(self.pass_device, w_p)
        # Node between the two pass levels: the selected group's level-1
        # drains merge there, plus the level-2 device's source diffusion.
        c_group = self.level1 * c_d_pass + c_d_pass
        # Mux output node: level-2 drains plus the buffer input.
        c_out = self.level2 * c_d_pass + inverter_input_cap(self.driver_device, w_1)
        t_pass = r_pass * (c_group + c_out) + r_pass * c_out

        r_1 = effective_resistance(self.driver_device, self.vdd, w_1, t_kelvin)
        t_inv1 = r_1 * (
            inverter_output_cap(self.driver_device, w_1)
            + inverter_input_cap(self.driver_device, w_2)
        )

        r_2 = effective_resistance(self.driver_device, self.vdd, w_2, t_kelvin)
        c_load = self.fanout_cap_farads + self.wire.capacitance_farads
        t_inv2 = r_2 * (inverter_output_cap(self.driver_device, w_2) + c_load)
        t_wire = self.wire.resistance_at(t_kelvin) * (
            self.wire.capacitance_farads / 2.0 + self.fanout_cap_farads
        )
        return t_pass + t_inv1 + t_inv2 + t_wire

    def area_um2(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        pass_area = self.n_inputs * transistor_area_um2(sizes["w_pass"])
        # Level-2 pass devices sit on the group nodes.
        pass_area += self.level2 * transistor_area_um2(sizes["w_pass"])
        if self.pass_style == "tgate":
            pass_area *= TGATE_AREA_FACTOR
        buf_area = (1.0 + PN_RATIO) * (
            transistor_area_um2(sizes["w_inv1"]) + transistor_area_um2(sizes["w_inv2"])
        )
        sram_area = self.n_sram_cells * SRAM_CELL_AREA_UM2
        return pass_area + buf_area + sram_area

    def leakage_watts(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        self.validate_sizes(sizes)
        # Unselected pass transistors leak; on average half of them block a
        # full-rail difference.
        n_off = self.n_inputs - 1 + self.level2 - 1
        i_pass = leakage_current(self.pass_device, self.vdd, sizes["w_pass"], t_kelvin)
        if self.pass_style == "tgate":
            i_pass *= TGATE_LEAK_FACTOR
        p_pass = 0.5 * n_off * i_pass * self.vdd
        p_buf = inverter_leakage(
            self.driver_device, sizes["w_inv1"], self.vdd, t_kelvin
        ) + inverter_leakage(self.driver_device, sizes["w_inv2"], self.vdd, t_kelvin)
        return p_pass + p_buf

    def switched_cap_farads(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        w_p = sizes["w_pass"]
        c_d_pass = drain_capacitance(self.pass_device, w_p)
        c_internal = (self.level1 + self.level2 + 1) * c_d_pass
        c_buffers = (
            inverter_input_cap(self.driver_device, sizes["w_inv1"])
            + inverter_output_cap(self.driver_device, sizes["w_inv1"])
            + inverter_input_cap(self.driver_device, sizes["w_inv2"])
            + inverter_output_cap(self.driver_device, sizes["w_inv2"])
        )
        return (
            c_internal
            + c_buffers
            + self.wire.capacitance_farads
            + self.fanout_cap_farads
        )


class LutModel(SizableCircuit):
    """K-input LUT: a 2^K pass-transistor tree with a mid-tree buffer.

    The critical (A-input) path traverses all K pass levels.  A buffer is
    inserted after level ``ceil(K/2)`` (as COFFE does) and an output buffer
    drives the BLE feedback/output muxes.  All devices are minimum-size-class
    (strong phonon-limited mobility temperature dependence), which is what
    makes the LUT the most temperature-sensitive soft resource (paper: +69 %
    over 0..100 C vs. +39 % for the SB).
    """

    def __init__(
        self,
        name: str,
        k: int,
        vdd: float,
        fanout_cap_farads: float = 0.0,
        pass_device: DeviceParams = PASS_LUT,
        buffer_device: DeviceParams = LOGIC_MIN,
        pass_style: str = "nmos",
    ):
        if k < 2:
            raise ValueError(f"{name}: LUT size must be >= 2, got {k}")
        if pass_style not in PASS_STYLES:
            raise ValueError(f"{name}: unknown pass style {pass_style!r}")
        self.name = name
        self.k = k
        self.vdd = vdd
        self.fanout_cap_farads = fanout_cap_farads
        self.pass_device = pass_device
        self.buffer_device = buffer_device
        self.pass_style = pass_style
        self.first_half = (k + 1) // 2
        self.second_half = k - self.first_half

    def variants(self) -> Tuple["SizableCircuit", ...]:
        return tuple(
            LutModel(
                self.name,
                self.k,
                self.vdd,
                fanout_cap_farads=self.fanout_cap_farads,
                pass_device=self.pass_device,
                buffer_device=self.buffer_device,
                pass_style=style,
            )
            for style in PASS_STYLES
        )

    @property
    def size_names(self) -> Tuple[str, ...]:
        return ("w_pass", "w_mid", "w_out")

    @property
    def default_sizes(self) -> Dict[str, float]:
        return {"w_pass": 1.5, "w_mid": 2.5, "w_out": 4.0}

    def _tree_delay(
        self, levels: int, w_pass: float, c_end: float, t_kelvin: float
    ) -> float:
        """Elmore delay of ``levels`` chained pass transistors.

        Each internal node carries the two merging drain diffusions of the
        level below; the final node additionally carries ``c_end``.
        """
        if self.pass_style == "tgate":
            r_p = tgate_resistance(self.vdd, w_pass, t_kelvin)
        else:
            r_p = pass_gate_resistance(
                self.pass_device, self.vdd, w_pass, t_kelvin, PASS_BODY_FACTOR
            )
        c_node = 2.0 * drain_capacitance(self.pass_device, w_pass)
        # Elmore: node j (after the j-th pass device) sees resistance j*R.
        total = 0.0
        for j in range(1, levels + 1):
            c_here = c_node + (c_end if j == levels else 0.0)
            total += j * r_p * c_here
        return total

    def delay_seconds(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        self.validate_sizes(sizes)
        w_p, w_m, w_o = sizes["w_pass"], sizes["w_mid"], sizes["w_out"]
        c_mid_in = inverter_input_cap(self.buffer_device, w_m)
        t_tree1 = self._tree_delay(self.first_half, w_p, c_mid_in, t_kelvin)
        r_m = effective_resistance(self.buffer_device, self.vdd, w_m, t_kelvin)
        t_mid = r_m * (
            inverter_output_cap(self.buffer_device, w_m)
            + drain_capacitance(self.pass_device, w_p)
        )
        c_out_in = inverter_input_cap(self.buffer_device, w_o)
        t_tree2 = self._tree_delay(self.second_half, w_p, c_out_in, t_kelvin)
        r_o = effective_resistance(self.buffer_device, self.vdd, w_o, t_kelvin)
        t_out = r_o * (
            inverter_output_cap(self.buffer_device, w_o) + self.fanout_cap_farads
        )
        return t_tree1 + t_mid + t_tree2 + t_out

    def area_um2(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        n_pass = 2 ** (self.k + 1) - 2  # full binary tree of pass devices
        pass_area = n_pass * transistor_area_um2(sizes["w_pass"])
        if self.pass_style == "tgate":
            pass_area *= TGATE_AREA_FACTOR
        buf_area = (1.0 + PN_RATIO) * (
            transistor_area_um2(sizes["w_mid"]) + transistor_area_um2(sizes["w_out"])
        )
        sram_area = (2**self.k) * SRAM_CELL_AREA_UM2
        return pass_area + buf_area + sram_area

    def leakage_watts(self, sizes: Mapping[str, float], t_kelvin: float) -> float:
        self.validate_sizes(sizes)
        # Roughly half the tree's pass transistors are off with full Vds.
        n_pass = 2 ** (self.k + 1) - 2
        i_pass = leakage_current(self.pass_device, self.vdd, sizes["w_pass"], t_kelvin)
        if self.pass_style == "tgate":
            i_pass *= TGATE_LEAK_FACTOR
        p_pass = 0.25 * n_pass * i_pass * self.vdd
        p_buf = inverter_leakage(
            self.buffer_device, sizes["w_mid"], self.vdd, t_kelvin
        ) + inverter_leakage(self.buffer_device, sizes["w_out"], self.vdd, t_kelvin)
        return p_pass + p_buf

    def switched_cap_farads(self, sizes: Mapping[str, float]) -> float:
        self.validate_sizes(sizes)
        c_node = 2.0 * drain_capacitance(self.pass_device, sizes["w_pass"])
        c_tree = self.k * c_node
        c_buffers = (
            inverter_input_cap(self.buffer_device, sizes["w_mid"])
            + inverter_output_cap(self.buffer_device, sizes["w_mid"])
            + inverter_input_cap(self.buffer_device, sizes["w_out"])
            + inverter_output_cap(self.buffer_device, sizes["w_out"])
        )
        return c_tree + c_buffers + self.fanout_cap_farads


def soft_fabric_circuits(arch: ArchParams) -> Dict[str, SizableCircuit]:
    """The six sizable soft-fabric resources of paper Table II.

    Wire loads and fanouts reflect the island-style structure: the SB mux
    drives a length-4 metal segment fanning out to downstream SB/CB muxes;
    the CB and local muxes drive short intra-cluster wires; the LUT drives
    the BLE output/feedback muxes.
    """
    vdd = arch.vdd
    c_in_pass = gate_capacitance(PASS_ROUTING, 2.0)  # typical downstream pin

    sb_wire = WireLoad(resistance_ohms=520.0, capacitance_farads=22e-15)
    cb_wire = WireLoad(resistance_ohms=120.0, capacitance_farads=4e-15)
    local_wire = WireLoad(resistance_ohms=40.0, capacitance_farads=1.2e-15)

    return {
        "sb_mux": MuxModel(
            "sb_mux",
            arch.sb_mux_size,
            vdd,
            wire=sb_wire,
            fanout_cap_farads=6.0 * c_in_pass,
            pass_device=PASS_ROUTING,
            driver_device=DRIVER_ROUTING,
        ),
        "cb_mux": MuxModel(
            "cb_mux",
            arch.cb_mux_size,
            vdd,
            wire=cb_wire,
            fanout_cap_farads=4.0 * c_in_pass,
            pass_device=PASS_ROUTING,
            driver_device=DRIVER_MEDIUM,
        ),
        "local_mux": MuxModel(
            "local_mux",
            arch.local_mux_size,
            vdd,
            wire=local_wire,
            fanout_cap_farads=2.0 * c_in_pass,
            pass_device=PASS_ROUTING,
            driver_device=DRIVER_MEDIUM,
        ),
        "feedback_mux": MuxModel(
            "feedback_mux",
            arch.feedback_mux_size,
            vdd,
            wire=local_wire,
            fanout_cap_farads=2.0 * c_in_pass,
            pass_device=PASS_ROUTING,
            driver_device=DRIVER_MEDIUM,
        ),
        "output_mux": MuxModel(
            "output_mux",
            arch.output_mux_size,
            vdd,
            wire=NO_WIRE,
            fanout_cap_farads=2.0 * c_in_pass,
            pass_device=PASS_ROUTING,
            driver_device=DRIVER_MEDIUM,
        ),
        "lut": LutModel(
            "lut",
            arch.lut_size,
            vdd,
            fanout_cap_farads=3.0 * c_in_pass,
        ),
    }
