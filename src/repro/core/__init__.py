"""The paper's contribution: thermal-aware guardbanding, design, architecture.

- :mod:`repro.core.guardband` — Algorithm 1: the timing/power/thermal fixed
  point that replaces the worst-case margin with a minimal sufficient one.
- :mod:`repro.core.margins` — the conventional worst-case (Tworst = 100 C)
  baseline.
- :mod:`repro.core.design` — thermal-aware design: how fabrics optimized at
  different corners behave across the temperature range (Figs. 2-3).
- :mod:`repro.core.architecture` — thermal-aware architecture: Eq. 1
  expected delay and design-corner selection for a foreknown field range.
"""

from repro.core.architecture import (
    CornerChoice,
    expected_delay,
    select_design_corner,
)
from repro.core.design import CornerCurves, corner_delay_curves
from repro.core.grades import GradeBand, GradePlan, plan_temperature_grades
from repro.core.guardband import (
    BatchCell,
    GuardbandError,
    GuardbandResult,
    thermal_aware_guardband,
    thermal_aware_guardband_batch,
)
from repro.core.margins import worst_case_frequency

__all__ = [
    "BatchCell",
    "CornerChoice",
    "CornerCurves",
    "GradeBand",
    "GradePlan",
    "GuardbandError",
    "GuardbandResult",
    "corner_delay_curves",
    "expected_delay",
    "plan_temperature_grades",
    "select_design_corner",
    "thermal_aware_guardband",
    "thermal_aware_guardband_batch",
    "worst_case_frequency",
]
