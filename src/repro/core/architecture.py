"""Thermal-aware architecture selection (paper Sec. III-C, Eq. 1).

A single fabric cannot win at every temperature (Sec. III-B), but FPGAs are
usually deployed in foreknown field conditions.  Assuming a uniformly
distributed operating temperature over ``[Tmin, Tmax]``, pick the design
corner that minimizes the expected delay

    E[d] = integral_{Tmin}^{Tmax} d(T) dT / (Tmax - Tmin).

This is the basis for the paper's proposed temperature grades (e.g. a
70 C-optimized grade for datacenter accelerators whose junction runs near
100 C next to 68 C CPUs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.arch.params import ArchParams
from repro.coffe.fabric import Fabric, build_fabric

DEFAULT_CANDIDATE_CORNERS = (0.0, 25.0, 50.0, 70.0, 85.0, 100.0)


def expected_delay(
    fabric: Fabric,
    t_min: float,
    t_max: float,
    component: str = "cp",
    n_samples: int = 201,
) -> float:
    """Eq. 1: expected delay over a uniform ``[t_min, t_max]`` range, seconds."""
    if t_max < t_min:
        raise ValueError(f"t_max ({t_max}) < t_min ({t_min})")
    # Degenerate-range check: endpoints are caller-specified, not computed.
    if t_max == t_min:  # repro-lint: ignore[float-equality]
        grid = np.array([t_min])
    else:
        grid = np.linspace(t_min, t_max, n_samples)
    if component == "cp":
        delays = np.asarray(fabric.cp_delay_s(grid))
    else:
        delays = np.asarray(fabric.delay_s(component, grid))
    if t_max == t_min:  # repro-lint: ignore[float-equality]
        return float(delays[0])
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(delays, grid) / (t_max - t_min))


@dataclass
class CornerChoice:
    """Result of a design-corner selection."""

    corner_celsius: float
    expected_delay_s: float
    expected_delays: Dict[float, float]
    """Eq. 1 value for every candidate corner."""
    t_min: float
    t_max: float

    def advantage_over(self, corner: float) -> float:
        """Fractional E[d] advantage of the winner over another candidate."""
        return self.expected_delays[corner] / self.expected_delay_s - 1.0


def select_design_corner(
    t_min: float,
    t_max: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATE_CORNERS,
    component: str = "cp",
    arch: Optional[ArchParams] = None,
) -> CornerChoice:
    """Pick the candidate corner minimizing Eq. 1 over the field range.

    This is the paper's thermal-aware architecture proposal: a datacenter
    accelerator living at 60..100 C junction gets a hot-corner grade, an
    outdoor unit spanning 0..50 C a cool one.
    """
    arch = arch or ArchParams()
    if not candidates:
        raise ValueError("need at least one candidate corner")
    expected: Dict[float, float] = {}
    for corner in candidates:
        fabric = build_fabric(float(corner), arch)
        expected[float(corner)] = expected_delay(fabric, t_min, t_max, component)
    winner = min(expected, key=lambda c: expected[c])
    return CornerChoice(
        corner_celsius=winner,
        expected_delay_s=expected[winner],
        expected_delays=expected,
        t_min=t_min,
        t_max=t_max,
    )
