"""Comparison baselines from the related work (paper Sec. II).

Besides the conventional worst-case margin (:mod:`repro.core.margins`), the
paper discusses two prior families it improves upon:

- **Online sensor-based scaling** ([10] Levine, [12] Zhao): measure *one*
  chip temperature (e.g. a ring-oscillator sensor) and scale the clock for
  it.  This ignores on-chip variation — "this approach assumes the same
  temperature across the entire chip (and the entire CP) while the
  temperature variation can reach above 20 C" — so a sensor away from the
  hotspot yields an *optimistic* (unsafe) clock unless extra margin is
  added.
- **Oracle retiming**: re-time at the exact converged per-tile profile with
  no compensation margin at all — the unreachable upper bound that bounds
  Algorithm 1's delta_t cost from above.

These functions quantify both against a converged
:class:`~repro.core.guardband.GuardbandResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cad.flow import FlowResult
from repro.coffe.fabric import Fabric
from repro.core.guardband import GuardbandResult


@dataclass
class SensorBaseline:
    """Outcome of single-sensor uniform-temperature scaling."""

    frequency_hz: float
    """Clock chosen from the sensor reading (plus margin)."""
    sensor_celsius: float
    true_critical_path_s: float
    """Critical path under the real per-tile profile."""
    is_safe: bool
    """Whether the chosen clock period covers the true critical path."""


def oracle_frequency(
    flow: FlowResult, fabric: Fabric, result: GuardbandResult
) -> float:
    """Upper bound: exact per-tile retiming with zero margin, hertz."""
    report = flow.timing.critical_path(fabric, result.tile_temperatures)
    return report.frequency_hz


def sensor_uniform_baseline(
    flow: FlowResult,
    fabric: Fabric,
    result: GuardbandResult,
    sensor_tile: int = 0,
    sensor_margin_celsius: float = 0.0,
) -> SensorBaseline:
    """Single-sensor DVFS baseline at a converged operating point.

    The sensor sits in ``sensor_tile`` (prior work inserts RO sensors in
    *unused* resources, which may be far from the hotspots); the whole die
    is assumed to be at that reading plus ``sensor_margin_celsius``.
    Safety is judged against the true per-tile profile.
    """
    temps = result.tile_temperatures
    if not (0 <= sensor_tile < len(temps)):
        raise ValueError(f"sensor tile {sensor_tile} out of range")
    if sensor_margin_celsius < 0.0:
        raise ValueError("sensor margin must be non-negative")
    reading = float(temps[sensor_tile]) + sensor_margin_celsius
    assumed = np.full(flow.layout.n_tiles, reading)
    chosen = flow.timing.critical_path(fabric, assumed)
    true = flow.timing.critical_path(fabric, temps)
    return SensorBaseline(
        frequency_hz=chosen.frequency_hz,
        sensor_celsius=reading,
        true_critical_path_s=true.critical_path_s,
        is_safe=1.0 / chosen.frequency_hz >= true.critical_path_s - 1e-15,
    )


def coldest_tile(result: GuardbandResult) -> int:
    """Index of the coolest tile — the adversarial sensor location."""
    return int(np.argmin(result.tile_temperatures))


def hottest_tile(result: GuardbandResult) -> int:
    """Index of the hottest tile — the conservative sensor location."""
    return int(np.argmax(result.tile_temperatures))
