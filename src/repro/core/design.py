"""Thermal-aware design analysis (paper Sec. III-B, Figs. 2-3).

Builds fabrics optimized at different corner temperatures and compares
their delay across the operating range: each corner device is fastest near
its own corner, and the curves cross — the observation motivating
thermal-aware architecture selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.arch.params import ArchParams
from repro.coffe.fabric import build_fabric

DEFAULT_CORNERS = (0.0, 25.0, 100.0)
"""The corners of paper Figs. 2-3 (D0, D25, D100)."""

FIG2_OPERATING_POINTS = (0.0, 25.0, 100.0)
FIG2_COMPONENTS = ("cp", "bram", "dsp")


@dataclass
class CornerCurves:
    """Delay-vs-temperature curves of fabrics at several design corners."""

    t_grid_celsius: np.ndarray
    curves: Dict[float, np.ndarray]
    """design corner -> delay (seconds) over the grid."""
    component: str

    def best_corner_at(self, t_celsius: float) -> float:
        """Design corner with the lowest delay at an operating temperature."""
        best = None
        for corner, delays in self.curves.items():
            d = float(np.interp(t_celsius, self.t_grid_celsius, delays))
            if best is None or d < best[1]:
                best = (corner, d)
        assert best is not None
        return best[0]

    def crossover_ratio(
        self, corner_a: float, corner_b: float, t_celsius: float
    ) -> float:
        """Delay ratio ``D_a / D_b`` at an operating temperature."""
        da = float(np.interp(t_celsius, self.t_grid_celsius, self.curves[corner_a]))
        db = float(np.interp(t_celsius, self.t_grid_celsius, self.curves[corner_b]))
        return da / db


def corner_delay_curves(
    corners: Sequence[float] = DEFAULT_CORNERS,
    component: str = "cp",
    arch: Optional[ArchParams] = None,
    t_grid: Optional[np.ndarray] = None,
) -> CornerCurves:
    """Delay(T) of the chosen component for fabrics at several corners.

    ``component`` is ``"cp"`` (the representative soft-fabric critical
    path), ``"bram"``, ``"dsp"``, or any Table II resource name.
    Reproduces paper Fig. 3 (component = cp) and the data behind Fig. 2.
    """
    arch = arch or ArchParams()
    grid = np.arange(0.0, 101.0, 1.0) if t_grid is None else np.asarray(t_grid)
    curves: Dict[float, np.ndarray] = {}
    for corner in corners:
        fabric = build_fabric(float(corner), arch)
        if component == "cp":
            delays = np.asarray(fabric.cp_delay_s(grid))
        else:
            delays = np.asarray(fabric.delay_s(component, grid))
        curves[float(corner)] = delays
    return CornerCurves(grid, curves, component)


def fig2_normalized_delays(
    corners: Sequence[float] = DEFAULT_CORNERS,
    operating_points: Sequence[float] = FIG2_OPERATING_POINTS,
    components: Sequence[str] = FIG2_COMPONENTS,
    arch: Optional[ArchParams] = None,
) -> Dict[str, Dict[float, Dict[float, float]]]:
    """Paper Fig. 2: per-component delays normalized within each chunk.

    Returns ``{component: {operating_T: {corner: normalized delay}}}`` where
    each operating-temperature chunk is normalized to its fastest corner.
    """
    arch = arch or ArchParams()
    out: Dict[str, Dict[float, Dict[float, float]]] = {}
    for component in components:
        curves = corner_delay_curves(corners, component, arch)
        per_point: Dict[float, Dict[float, float]] = {}
        for t_op in operating_points:
            raw = {
                corner: float(
                    np.interp(t_op, curves.t_grid_celsius, curves.curves[corner])
                )
                for corner in curves.curves
            }
            fastest = min(raw.values())
            per_point[float(t_op)] = {c: d / fastest for c, d in raw.items()}
        out[component] = per_point
    return out
