"""Temperature-grade portfolio planning (extension of paper Sec. III-C).

The paper proposes defining new FPGA *temperature grades* — devices of the
same architecture sized for different thermal corners — the way vendors
already ship speed grades.  This module answers the vendor-side question:
given that we can afford ``k`` grades, which design corners should they use
and which part of the supported junction range should each serve?

We partition ``[t_min, t_max]`` into contiguous bands and assign each band
the candidate corner minimizing Eq. 1 expected delay over that band,
choosing the partition that minimizes the range-wide average expected
delay.  Solved exactly by dynamic programming over a discrete grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.params import ArchParams
from repro.coffe.fabric import build_fabric


@dataclass(frozen=True)
class GradeBand:
    """One temperature grade: the band it serves and its design corner."""

    t_low: float
    t_high: float
    corner_celsius: float
    expected_delay_s: float


@dataclass
class GradePlan:
    """A full grade portfolio over the supported range."""

    bands: Tuple[GradeBand, ...]
    average_delay_s: float
    """Expected delay averaged over the whole range (uniform T)."""

    def grade_for(self, t_celsius: float) -> GradeBand:
        """The grade serving an operating temperature."""
        for band in self.bands:
            if band.t_low - 1e-9 <= t_celsius <= band.t_high + 1e-9:
                return band
        raise ValueError(
            f"{t_celsius} C outside the planned range "
            f"[{self.bands[0].t_low}, {self.bands[-1].t_high}]"
        )


def plan_temperature_grades(
    n_grades: int,
    t_min: float = 0.0,
    t_max: float = 100.0,
    candidates: Sequence[float] = (0.0, 25.0, 50.0, 70.0, 85.0, 100.0),
    arch: Optional[ArchParams] = None,
    component: str = "cp",
    grid_step: float = 5.0,
) -> GradePlan:
    """Optimal ``n_grades``-way partition of the junction range.

    Returns the bands, their corners and the achieved range-average delay.
    With ``n_grades=1`` this degenerates to the paper's single-corner
    selection (Eq. 1); more grades monotonically reduce the average delay.
    """
    if n_grades < 1:
        raise ValueError(f"need at least one grade, got {n_grades}")
    if t_max <= t_min:
        raise ValueError(f"bad range [{t_min}, {t_max}]")
    if not candidates:
        raise ValueError("need at least one candidate corner")
    arch = arch or ArchParams()

    # Discretize the range; integrate delay per (segment, corner) once.
    edges = np.arange(t_min, t_max + grid_step / 2, grid_step)
    if edges[-1] < t_max:
        edges = np.append(edges, t_max)
    n_seg = len(edges) - 1
    n_grades = min(n_grades, n_seg)

    # seg_cost[c][i] = integral of delay over segment i for corner c.
    seg_cost: Dict[float, np.ndarray] = {}
    for corner in candidates:
        fabric = build_fabric(float(corner), arch)
        costs = np.empty(n_seg)
        for i in range(n_seg):
            grid = np.linspace(edges[i], edges[i + 1], 9)
            if component == "cp":
                delays = np.asarray(fabric.cp_delay_s(grid))
            else:
                delays = np.asarray(fabric.delay_s(component, grid))
            trapezoid = getattr(np, "trapezoid", None) or np.trapz
            costs[i] = float(trapezoid(delays, grid))
        seg_cost[float(corner)] = costs

    # band_cost[i][j] = best (cost, corner) covering segments i..j-1.
    prefix = {c: np.concatenate(([0.0], np.cumsum(k))) for c, k in seg_cost.items()}

    def best_band(i: int, j: int) -> Tuple[float, float]:
        options = [(prefix[c][j] - prefix[c][i], c) for c in prefix]
        return min(options)

    INF = float("inf")
    # dp[g][j]: minimal cost of covering segments 0..j-1 with g bands.
    dp = [[INF] * (n_seg + 1) for _ in range(n_grades + 1)]
    cut: List[List[Optional[Tuple[int, float]]]] = [
        [None] * (n_seg + 1) for _ in range(n_grades + 1)
    ]
    dp[0][0] = 0.0
    for g in range(1, n_grades + 1):
        for j in range(1, n_seg + 1):
            for i in range(g - 1, j):
                if dp[g - 1][i] == INF:
                    continue
                cost, corner = best_band(i, j)
                total = dp[g - 1][i] + cost
                if total < dp[g][j]:
                    dp[g][j] = total
                    cut[g][j] = (i, corner)

    best_g = min(range(1, n_grades + 1), key=lambda g: dp[g][n_seg])
    bands: List[GradeBand] = []
    j = n_seg
    g = best_g
    while j > 0:
        entry = cut[g][j]
        assert entry is not None
        i, corner = entry
        width = edges[j] - edges[i]
        cost, _ = best_band(i, j)
        bands.append(
            GradeBand(
                t_low=float(edges[i]),
                t_high=float(edges[j]),
                corner_celsius=corner,
                expected_delay_s=cost / width,
            )
        )
        j, g = i, g - 1
    bands.reverse()
    return GradePlan(
        bands=tuple(bands),
        average_delay_s=dp[best_g][n_seg] / (t_max - t_min),
    )
