"""Thermal-aware guardbanding — the paper's Algorithm 1.

Given a placed-and-routed design, its fabric characterization, the signal
activities and the ambient temperature, iterate

1. ``f = T(netlist, T_vec)`` — temperature-aware STA over the whole netlist
   (the critical path can move between iterations);
2. ``p = p_dyn(netlist, alpha, f) + p_lkg(T_vec)`` — per-tile power;
3. ``T_vec = HotSpot(p)`` — steady-state thermal solve;

until the per-tile temperature change satisfies ``||dT||_inf <= delta_t``,
then re-time the design once more at ``T_vec + delta_t`` so the small
convergence error is covered by margin rather than optimism.  The resulting
frequency replaces the conventional worst-case (Tworst) clock.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import observe
from repro.activity.ace import ActivityEstimate, estimate_activity
from repro.cad.flow import FlowResult
from repro.cad.timing import TimingReport
from repro.coffe.fabric import Fabric
from repro.power.model import PowerBreakdown, PowerModel
from repro.power.voltage import (
    VDD_MIN_V,
    VDD_TOLERANCE_V,
    VoltageScaling,
    resource_delay_scale,
)
from repro.technology.ptm22 import VDD_NOMINAL
from repro.thermal.hotspot import ThermalSolver
from repro.thermal.package import ThermalPackage

DELTA_T_CELSIUS = 2.0
"""Convergence threshold and compensation margin (Algorithm 1's delta_T)."""

MAX_ITERATIONS = 25
"""The paper observes convergence in fewer than ten iterations."""

BASE_ACTIVITY_DEFAULT = 0.15
"""Default mean primary-input switching activity for the ACE estimate."""


class GuardbandError(RuntimeError):
    """Raised when the temperature-power fixed point does not converge.

    Carries the partial fixed-point state so a diverging sweep cell is
    debuggable without a re-run: the per-iteration ``history`` telemetry,
    the ``last_temperatures`` vector the loop stopped at, and the
    ``iterations`` spent.  All diagnostics default to empty so the
    exception still constructs from a bare message.
    """

    def __init__(
        self,
        message: str,
        *,
        history: Optional[List["GuardbandIteration"]] = None,
        last_temperatures: Optional[np.ndarray] = None,
        iterations: int = 0,
        t_ambient: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.history: List["GuardbandIteration"] = list(history or [])
        self.last_temperatures = last_temperatures
        self.iterations = iterations
        self.t_ambient = t_ambient

    @property
    def last_max_delta_celsius(self) -> Optional[float]:
        """The final iteration's ``||dT||_inf``, when any iteration ran."""
        if not self.history:
            return None
        return self.history[-1].max_delta_celsius


@dataclass(frozen=True)
class GuardbandConfig:
    """Algorithm 1 knobs, grouped so sweeps can carry them as one value.

    Frozen (hashable, picklable): an :class:`~repro.runner.ExperimentSpec`
    embeds one per job and ships it across process boundaries unchanged.
    """

    delta_t: float = DELTA_T_CELSIUS
    """Convergence threshold and compensation margin, Celsius."""
    max_iterations: int = MAX_ITERATIONS
    """Iteration budget before :class:`GuardbandError`."""
    base_activity: float = BASE_ACTIVITY_DEFAULT
    """Mean primary-input activity for the default ACE estimate."""
    package: Optional[ThermalPackage] = None
    """Thermal package override; ``None`` uses the solver default."""
    warm_start_policy: str = "off"
    """Fixed-point seeding policy for sweeps: ``"off"`` starts every cell
    from ambient (Algorithm 1 line 1); ``"nearest"`` lets the sweep
    engine seed each cell with the converged per-tile profile of the
    nearest completed neighbour from the result store (falling back to
    ambient when none exists).  Warm starts converge to the same fixed
    point within the ``delta_t`` tolerance — see DESIGN.md §11."""
    thermal_weight: float = 0.0
    """Thermal-aware placement blend: weight of the thermal proxy term in
    the placer's objective (:mod:`repro.cad.thermal_place`), relative to
    the initial wirelength cost.  0 keeps the legacy wirelength/timing
    placement (bit-identical); folded into the flow cache key, so cells
    with different weights never share a mapping."""
    mode: str = "frequency"
    """Objective of Algorithm 1.  ``"frequency"`` (the default, the
    paper's flow) maximises the guardbanded clock at nominal supply;
    ``"energy"`` holds ``target_frequency_hz`` fixed and bisects the
    soft-fabric supply down until timing just closes at the converged
    thermal profile (arXiv:1911.07187), reporting the savings in
    :attr:`GuardbandResult.energy`."""
    target_frequency_hz: Optional[float] = None
    """Iso-frequency clock for ``mode="energy"``, hertz.  Required
    (positive, finite) in energy mode; must stay ``None`` in frequency
    mode, where the clock is an output of the flow, not an input."""

    def __post_init__(self) -> None:
        if self.delta_t <= 0.0:
            raise ValueError(f"delta_t must be positive, got {self.delta_t}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be at least 1, got {self.max_iterations}"
            )
        if not (0.0 < self.base_activity <= 1.0):
            raise ValueError(
                f"base_activity must be in (0, 1], got {self.base_activity}"
            )
        if self.warm_start_policy not in ("off", "nearest"):
            raise ValueError(
                'warm_start_policy must be "off" or "nearest", '
                f"got {self.warm_start_policy!r}"
            )
        if not (
            math.isfinite(self.thermal_weight) and self.thermal_weight >= 0.0
        ):
            raise ValueError(
                "thermal_weight must be finite and >= 0, "
                f"got {self.thermal_weight}"
            )
        if self.mode not in ("frequency", "energy"):
            raise ValueError(
                f'mode must be "frequency" or "energy", got {self.mode!r}'
            )
        if self.mode == "energy":
            if self.target_frequency_hz is None:
                raise ValueError(
                    'mode="energy" requires target_frequency_hz — the '
                    "iso-frequency clock (Hz) to close timing at while "
                    "scaling the supply down"
                )
            if not (
                math.isfinite(self.target_frequency_hz)
                and self.target_frequency_hz > 0.0
            ):
                raise ValueError(
                    "target_frequency_hz must be positive and finite, "
                    f"got {self.target_frequency_hz}"
                )
        elif self.target_frequency_hz is not None:
            raise ValueError(
                'target_frequency_hz is only meaningful with mode="energy" '
                "(the frequency objective derives the clock); got "
                f"target_frequency_hz={self.target_frequency_hz} with "
                f'mode="frequency"'
            )

    def with_changes(self, **changes: object) -> "GuardbandConfig":
        """Return a copy with some knobs replaced."""
        return replace(self, **changes)


@dataclass
class GuardbandIteration:
    """Telemetry of one Algorithm 1 iteration."""

    frequency_hz: float
    total_power_w: float
    max_tile_celsius: float
    mean_tile_celsius: float
    max_delta_celsius: float
    phase_seconds: Optional[Dict[str, float]] = None
    """Seconds per phase ("sta", "power", "thermal"), derived from the
    iteration's :mod:`repro.observe` phase spans when observability is
    enabled; ``None`` otherwise."""


@dataclass
class EnergyReport:
    """Per-cell energy accounting of one ``mode="energy"`` run.

    At iso-frequency, energy per cycle is ``power / f``, so the
    fractional power saving *is* the fractional energy saving; both
    totals are reported so tables can show either axis.  The nominal
    baseline is the same design converged at the same target frequency
    and ambient but at nominal supply.
    """

    vdd_v: float
    """Closing supply: the lowest trial VDD at which timing still closes
    (within :data:`~repro.power.voltage.VDD_TOLERANCE_V`)."""
    vdd_nominal_v: float
    target_frequency_hz: float
    total_power_w: float
    """Whole-die power at the closing supply's converged profile."""
    nominal_power_w: float
    """Whole-die power at nominal supply, same frequency and ambient."""
    power_saving_fraction: float
    """``1 - total_power_w / nominal_power_w`` — also the energy-per-cycle
    saving at iso-frequency."""
    energy_per_cycle_j: float
    nominal_energy_per_cycle_j: float


@dataclass
class GuardbandResult:
    """Outcome of thermal-aware guardbanding for one design.

    **Objective invariant:** frequency-mode results maximise
    ``frequency_hz`` at nominal supply (``vdd_v == VDD_NOMINAL``,
    ``energy is None``); energy-mode results hold
    ``frequency_hz == config.target_frequency_hz`` by construction and
    report the closing supply in ``vdd_v`` (with the savings accounting
    in ``energy``).  ``mode`` names which reading applies.

    Construct with keyword arguments only — positional construction is
    deprecated (the field list grows with objectives).
    """

    frequency_hz: float
    """Final guardbanded clock (timed at the converged profile + delta_t);
    in energy mode, the target clock that timing was closed at."""
    critical_path_s: float
    tile_temperatures: np.ndarray
    """Converged per-tile temperatures, Celsius."""
    iterations: int
    t_ambient: float
    delta_t: float
    total_power_w: float
    history: List[GuardbandIteration] = field(default_factory=list)
    warm_started: bool = False
    """Whether the fixed point was seeded from a neighbouring converged
    profile instead of the flat ambient vector; compare ``iterations``
    against a cold run to measure the iterations saved."""
    mode: str = "frequency"
    """Which objective produced this result (see the class invariant)."""
    vdd_v: float = VDD_NOMINAL
    """Soft-fabric supply of the reported operating point, volts."""
    energy: Optional[EnergyReport] = None
    """Energy/power savings vs nominal supply; ``None`` in frequency mode."""

    @property
    def mean_rise_celsius(self) -> float:
        return float(self.tile_temperatures.mean() - self.t_ambient)

    @property
    def max_gradient_celsius(self) -> float:
        """Largest on-chip temperature difference."""
        return float(self.tile_temperatures.max() - self.tile_temperatures.min())


_RESULT_KEYWORD_INIT: Callable[..., None] = GuardbandResult.__init__


def _result_init(self: GuardbandResult, *args: object, **kwargs: object) -> None:
    if args:
        warnings.warn(
            "positional construction of GuardbandResult is deprecated; "
            "pass every field by keyword (the field list grows with "
            "objective modes)",
            DeprecationWarning,
            stacklevel=2,
        )
    _RESULT_KEYWORD_INIT(self, *args, **kwargs)


_result_init.__wrapped__ = _RESULT_KEYWORD_INIT  # type: ignore[attr-defined]
GuardbandResult.__init__ = _result_init  # type: ignore[method-assign]


def _coerce_config(
    config: Optional[GuardbandConfig], legacy: Dict[str, object]
) -> GuardbandConfig:
    """Resolve the ``config=`` value against the deprecated loose kwargs."""
    supplied = {k: v for k, v in legacy.items() if v is not None}
    if not supplied:
        return config if config is not None else GuardbandConfig()
    if config is not None:
        raise TypeError(
            "pass either config=GuardbandConfig(...) or the legacy "
            f"{sorted(supplied)} kwargs, not both"
        )
    warnings.warn(
        "thermal_aware_guardband(delta_t=..., max_iterations=..., "
        "base_activity=..., package=..., warm_start_policy=...) is "
        "deprecated; pass config=GuardbandConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return GuardbandConfig(**supplied)


def _seed_profile(
    warm_start: Optional[np.ndarray], n_tiles: int, t_ambient: float
) -> Tuple[np.ndarray, bool]:
    """Initial per-tile temperatures: warm-start profile or flat ambient."""
    if warm_start is not None:
        seed_vec = np.asarray(warm_start, dtype=float)
        if seed_vec.shape != (n_tiles,):
            raise ValueError(
                f"warm_start must have shape ({n_tiles},) to match the "
                f"layout, got {seed_vec.shape}"
            )
        if not np.all(np.isfinite(seed_vec)):
            raise ValueError("warm_start contains non-finite temperatures")
        # Tiles cannot sit below the junction base temperature at steady
        # state; clamping keeps a neighbour profile from a cooler ambient
        # physically sensible.
        return np.maximum(seed_vec, float(t_ambient)), True
    return np.full(n_tiles, float(t_ambient)), False  # line 1


def thermal_aware_guardband(
    flow: FlowResult,
    fabric: Fabric,
    t_ambient: float,
    activity: Optional[ActivityEstimate] = None,
    config: Optional[GuardbandConfig] = None,
    *,
    warm_start: Optional[np.ndarray] = None,
    delta_t: Optional[float] = None,
    max_iterations: Optional[int] = None,
    package: Optional[ThermalPackage] = None,
    base_activity: Optional[float] = None,
    warm_start_policy: Optional[str] = None,
) -> GuardbandResult:
    """Run Algorithm 1 on a placed-and-routed design.

    ``t_ambient`` is the junction base temperature ``Tamb`` every tile
    starts from (Algorithm 1 line 1).  ``warm_start`` optionally replaces
    that flat start with an initial per-tile temperature vector — e.g.
    the converged profile of a neighbouring sweep cell — clamped to at
    least ambient; the fixed point is the same, it is just reached in
    fewer iterations.  ``activity`` defaults to the ACE estimate with
    ``config.base_activity``.  The loose ``delta_t`` /
    ``max_iterations`` / ``package`` / ``base_activity`` /
    ``warm_start_policy`` kwargs are a deprecated spelling of
    :class:`GuardbandConfig` and will be removed.
    """
    config = _coerce_config(
        config,
        {
            "delta_t": delta_t,
            "max_iterations": max_iterations,
            "package": package,
            "base_activity": base_activity,
            "warm_start_policy": warm_start_policy,
        },
    )
    delta_t = config.delta_t
    max_iterations = config.max_iterations
    if activity is None:
        activity = estimate_activity(flow.netlist, config.base_activity)

    if config.mode == "energy":
        return _energy_guardband(flow, fabric, t_ambient, activity, config, warm_start)

    power_model = PowerModel(flow, fabric, activity)
    solver = ThermalSolver(flow.layout, config.package)
    n_tiles = flow.layout.n_tiles

    t_tiles, warm_started = _seed_profile(warm_start, n_tiles, t_ambient)
    history: List[GuardbandIteration] = []
    converged = False
    iterations = 0
    prev_frequency: Optional[float] = None

    run_span = observe.span(
        "guardband.run",
        benchmark=flow.netlist.name,
        t_ambient=float(t_ambient),
        delta_t=delta_t,
        max_iterations=max_iterations,
        warm_started=warm_started,
    )
    with run_span:
        for _ in range(max_iterations):
            iterations += 1
            it_span = observe.span("guardband.iteration", index=iterations)
            with it_span:
                # Line 4: full-netlist STA at the current temperatures.
                with observe.span("guardband.sta") as sta_span:
                    report = flow.timing.critical_path(fabric, t_tiles)
                frequency = report.frequency_hz
                # Line 5: per-tile dynamic + leakage power.
                with observe.span("guardband.power") as power_span:
                    power = power_model.evaluate(frequency, t_tiles)
                # Line 7: thermal solve; line 8: convergence check.
                with observe.span("guardband.thermal") as thermal_span:
                    t_new = solver.solve(power.total_w, t_ambient)
                max_delta = float(np.max(np.abs(t_new - t_tiles)))
                t_tiles = t_new
                it_span.set_attrs(
                    frequency_hz=frequency,
                    delta_frequency_hz=(
                        frequency - prev_frequency
                        if prev_frequency is not None
                        else 0.0
                    ),
                    max_delta_celsius=max_delta,
                    max_tile_celsius=float(t_tiles.max()),
                    total_power_w=power.total_watts,
                )
            prev_frequency = frequency
            history.append(
                GuardbandIteration(
                    frequency_hz=frequency,
                    total_power_w=power.total_watts,
                    max_tile_celsius=float(t_tiles.max()),
                    mean_tile_celsius=float(t_tiles.mean()),
                    max_delta_celsius=max_delta,
                    phase_seconds=observe.phase_seconds(
                        sta=sta_span, power=power_span, thermal=thermal_span
                    ),
                )
            )
            if max_delta <= delta_t:
                converged = True
                break

        run_span.set_attrs(converged=converged, iterations=iterations)
        if not converged:
            observe.counter("guardband.diverged").inc()
            last = (
                f" (last |dT| = {history[-1].max_delta_celsius:.2f} C)"
                if history
                else ""
            )
            raise GuardbandError(
                f"{flow.netlist.name}: temperature did not converge within "
                f"{max_iterations} iterations{last}",
                history=history,
                last_temperatures=t_tiles,
                iterations=iterations,
                t_ambient=float(t_ambient),
            )

        observe.histogram("guardband.iterations").observe(float(iterations))
        # Line 9: final timing with the delta_t compensation margin.
        with observe.span("guardband.final_sta"):
            final = flow.timing.critical_path(fabric, t_tiles + delta_t)
        run_span.set_attrs(frequency_hz=final.frequency_hz)
    return GuardbandResult(
        frequency_hz=final.frequency_hz,
        critical_path_s=final.critical_path_s,
        tile_temperatures=t_tiles,
        iterations=iterations,
        t_ambient=t_ambient,
        delta_t=delta_t,
        total_power_w=history[-1].total_power_w,
        history=history,
        warm_started=warm_started,
    )


def _energy_guardband(
    flow: FlowResult,
    fabric: Fabric,
    t_ambient: float,
    activity: ActivityEstimate,
    config: GuardbandConfig,
    warm_start: Optional[np.ndarray],
) -> GuardbandResult:
    """Algorithm 1 under the energy objective: bisect VDD at iso-frequency.

    Every trial supply re-runs the full power/temperature fixed point
    (the loop body of :func:`thermal_aware_guardband`, with the delay,
    dynamic and leakage models re-evaluated at the trial voltage), then a
    final re-time at ``T + delta_t`` decides closure: the guardbanded
    clock at the converged profile must still meet the target.  Lower
    supply slows the fabric but also cools it — less power means a cooler
    converged profile means faster logic — which is exactly why each
    trial must co-iterate with the thermal solver rather than scale a
    single nominal profile (see DESIGN.md, "Energy mode").

    Bisection assumes closure is monotone in VDD (slower below, faster
    above), maintains ``v_hi`` always-closing, and narrows the window to
    :data:`~repro.power.voltage.VDD_TOLERANCE_V`.  Trials warm-start from
    the converged profile of the last closing trial.  A trial whose
    thermal fixed point diverges is treated as non-closing.
    """
    delta_t = config.delta_t
    max_iterations = config.max_iterations
    f_target = float(config.target_frequency_hz)  # type: ignore[arg-type]
    period_s = 1.0 / f_target

    power_model = PowerModel(flow, fabric, activity)
    solver = ThermalSolver(flow.layout, config.package)
    scaling = VoltageScaling()
    n_tiles = flow.layout.n_tiles
    t_seed, warm_started = _seed_profile(warm_start, n_tiles, t_ambient)

    history: List[GuardbandIteration] = []
    iterations = 0

    def converge(vdd: float, seed: np.ndarray) -> Tuple[np.ndarray, PowerBreakdown]:
        """One trial supply's power/temperature fixed point (or raise)."""
        nonlocal iterations
        t_tiles = seed.copy()
        trial_span = observe.span("guardband.energy.trial", vdd_v=vdd)
        with trial_span:
            for _ in range(max_iterations):
                iterations += 1
                it_span = observe.span(
                    "guardband.iteration", index=iterations, vdd_v=vdd
                )
                with it_span:
                    # Line 4 at the trial supply: voltage-scaled STA.
                    with observe.span("guardband.sta") as sta_span:
                        report = flow.timing.critical_path(
                            fabric,
                            t_tiles,
                            delay_scale=resource_delay_scale(
                                scaling.delay_scale_tiles(vdd, t_tiles)
                            ),
                        )
                    # Line 5: dynamic power at the *target* clock (the
                    # design will run there), leakage at the trial V/T.
                    with observe.span("guardband.power") as power_span:
                        power = power_model.evaluate_at_voltage(
                            f_target, t_tiles, scaling, vdd
                        )
                    with observe.span("guardband.thermal") as thermal_span:
                        t_new = solver.solve(power.total_w, t_ambient)
                    max_delta = float(np.max(np.abs(t_new - t_tiles)))
                    t_tiles = t_new
                    it_span.set_attrs(
                        frequency_hz=report.frequency_hz,
                        max_delta_celsius=max_delta,
                        max_tile_celsius=float(t_tiles.max()),
                        total_power_w=power.total_watts,
                    )
                history.append(
                    GuardbandIteration(
                        frequency_hz=report.frequency_hz,
                        total_power_w=power.total_watts,
                        max_tile_celsius=float(t_tiles.max()),
                        mean_tile_celsius=float(t_tiles.mean()),
                        max_delta_celsius=max_delta,
                        phase_seconds=observe.phase_seconds(
                            sta=sta_span, power=power_span, thermal=thermal_span
                        ),
                    )
                )
                if max_delta <= delta_t:
                    trial_span.set_attrs(converged=True)
                    return t_tiles, power
            trial_span.set_attrs(converged=False)
        observe.counter("guardband.diverged").inc()
        raise GuardbandError(
            f"{flow.netlist.name}: temperature did not converge within "
            f"{max_iterations} iterations at VDD={vdd:.3f} V",
            history=history,
            last_temperatures=t_tiles,
            iterations=iterations,
            t_ambient=float(t_ambient),
        )

    def retime(vdd: float, t_conv: np.ndarray) -> TimingReport:
        """Line 9 at a trial supply: closure check with the margin."""
        with observe.span("guardband.final_sta", vdd_v=vdd):
            return flow.timing.critical_path(
                fabric,
                t_conv + delta_t,
                delay_scale=resource_delay_scale(
                    scaling.delay_scale_tiles(vdd, t_conv + delta_t)
                ),
            )

    run_span = observe.span(
        "guardband.run",
        benchmark=flow.netlist.name,
        mode="energy",
        target_frequency_hz=f_target,
        t_ambient=float(t_ambient),
        delta_t=delta_t,
        max_iterations=max_iterations,
        warm_started=warm_started,
    )
    with run_span:
        # Feasibility at nominal supply doubles as the savings baseline.
        v_hi = scaling.vdd_nominal
        t_conv, power = converge(v_hi, t_seed)
        final = retime(v_hi, t_conv)
        if final.frequency_hz < f_target:
            observe.counter("guardband.energy.infeasible").inc()
            raise GuardbandError(
                f"{flow.netlist.name}: target frequency "
                f"{f_target / 1e6:.2f} MHz does not close at nominal VDD "
                f"{v_hi:.3f} V and Tamb={t_ambient:g} C (guardbanded "
                f"maximum is {final.frequency_hz / 1e6:.2f} MHz); lower "
                "the target",
                history=history,
                last_temperatures=t_conv,
                iterations=iterations,
                t_ambient=float(t_ambient),
            )
        nominal_power_w = power.total_watts
        best = (v_hi, t_conv, final, power)

        v_lo = VDD_MIN_V
        while v_hi - v_lo > VDD_TOLERANCE_V:
            v_mid = 0.5 * (v_lo + v_hi)
            try:
                t_mid, p_mid = converge(v_mid, best[1])
            except GuardbandError:
                # A diverging trial cannot prove closure; bisect upward.
                v_lo = v_mid
                continue
            final_mid = retime(v_mid, t_mid)
            if final_mid.frequency_hz >= f_target:
                v_hi = v_mid
                best = (v_mid, t_mid, final_mid, p_mid)
            else:
                v_lo = v_mid

        vdd, t_conv, final, power = best
        observe.histogram("guardband.iterations").observe(float(iterations))
        run_span.set_attrs(
            converged=True,
            iterations=iterations,
            vdd_v=vdd,
            power_saving_fraction=1.0 - power.total_watts / nominal_power_w,
        )
    energy = EnergyReport(
        vdd_v=vdd,
        vdd_nominal_v=scaling.vdd_nominal,
        target_frequency_hz=f_target,
        total_power_w=power.total_watts,
        nominal_power_w=nominal_power_w,
        power_saving_fraction=1.0 - power.total_watts / nominal_power_w,
        energy_per_cycle_j=power.total_watts * period_s,
        nominal_energy_per_cycle_j=nominal_power_w * period_s,
    )
    return GuardbandResult(
        frequency_hz=f_target,
        critical_path_s=final.critical_path_s,
        tile_temperatures=t_conv,
        iterations=iterations,
        t_ambient=float(t_ambient),
        delta_t=delta_t,
        total_power_w=power.total_watts,
        history=history,
        warm_started=warm_started,
        mode="energy",
        vdd_v=vdd,
        energy=energy,
    )


@dataclass(frozen=True)
class BatchCell:
    """One sweep cell of a batched Algorithm 1 run.

    All cells of a batch share the placed netlist, fabric corner and
    :class:`GuardbandConfig`; what varies per cell is the ambient and,
    optionally, a warm-start profile (the converged temperatures of a
    neighbouring cell, re-based onto this ambient by the caller).
    """

    t_ambient: float
    warm_start: Optional[np.ndarray] = None


BatchOutcome = Union[GuardbandResult, "GuardbandError"]
"""Per-cell outcome of a batched run: the converged result, or — for a
cell that exhausted the iteration budget — a :class:`GuardbandError`
carrying its partial diagnostics.  A diverging cell never poisons its
batch-mates."""


def _coerce_cells(
    cells: Sequence[Union[float, BatchCell]], n_tiles: int
) -> List[BatchCell]:
    coerced: List[BatchCell] = []
    for cell in cells:
        if not isinstance(cell, BatchCell):
            cell = BatchCell(t_ambient=float(cell))
        if cell.warm_start is not None:
            seed_vec = np.asarray(cell.warm_start, dtype=float)
            if seed_vec.shape != (n_tiles,):
                raise ValueError(
                    f"warm_start must have shape ({n_tiles},) to match the "
                    f"layout, got {seed_vec.shape}"
                )
            if not np.all(np.isfinite(seed_vec)):
                raise ValueError("warm_start contains non-finite temperatures")
        coerced.append(cell)
    return coerced


def thermal_aware_guardband_batch(
    flow: FlowResult,
    fabric: Fabric,
    cells: Sequence[Union[float, BatchCell]],
    config: Optional[GuardbandConfig] = None,
    activity: Optional[ActivityEstimate] = None,
) -> List[BatchOutcome]:
    """Run Algorithm 1 jointly over many cells sharing one placed netlist.

    Every cell of an ambient sweep over the same ``flow`` shares the
    thermal conductance factorization and the STA delay tables; stacking
    their temperature/power state into ``(n_cells, n_tiles)`` arrays
    amortises all of it:

    - one :class:`~repro.thermal.hotspot.ThermalSolver` (one ``splu``
      factorization) back-substitutes the whole batch as a matrix RHS;
    - one :class:`~repro.power.model.PowerModel` evaluates dynamic and
      leakage power across the cell axis;
    - the STA delay interpolation runs once per iteration for all cells
      (:meth:`~repro.cad.timing.TimingAnalyzer.critical_path_batch`).

    Cells iterate jointly under an *active mask*: a cell whose
    ``||dT||_inf`` drops under ``config.delta_t`` converges and leaves
    the batch (it stops paying for slower batch-mates' iterations only
    in telemetry — the arrays shrink to the active rows each step), and
    each converged cell gets its own final re-time at ``T + delta_t``.
    A cell that exhausts ``config.max_iterations`` yields a
    :class:`GuardbandError` (with partial history and last temperatures
    attached) in its slot of the returned list without affecting any
    other cell.

    ``cells`` entries are ambients (floats) or :class:`BatchCell` values
    (ambient + optional warm-start profile).  Results are returned in
    input order and agree with the looped single-cell path within the
    ``delta_t`` compensation margin (DESIGN.md §12); per-iteration
    ``phase_seconds`` telemetry attributes each batch iteration's phase
    cost evenly across the cells active in it.
    """
    config = config if config is not None else GuardbandConfig()
    batch_cells = _coerce_cells(cells, flow.layout.n_tiles)
    if not batch_cells:
        return []
    if activity is None:
        activity = estimate_activity(flow.netlist, config.base_activity)

    if config.mode == "energy":
        return _energy_guardband_batch(flow, fabric, batch_cells, config, activity)

    power_model = PowerModel(flow, fabric, activity)
    solver = ThermalSolver(flow.layout, config.package)
    n_cells = len(batch_cells)
    n_tiles = flow.layout.n_tiles
    delta_t = config.delta_t
    max_iterations = config.max_iterations

    ambients = np.array([cell.t_ambient for cell in batch_cells], dtype=float)
    t_tiles = np.empty((n_cells, n_tiles))
    warm_started = np.zeros(n_cells, dtype=bool)
    for i, cell in enumerate(batch_cells):
        if cell.warm_start is not None:
            # Clamped like the single-cell path: tiles cannot sit below
            # the junction base temperature at steady state.
            t_tiles[i] = np.maximum(
                np.asarray(cell.warm_start, dtype=float), ambients[i]
            )
            warm_started[i] = True
        else:
            t_tiles[i] = ambients[i]  # line 1, per cell

    active = np.ones(n_cells, dtype=bool)
    iterations = np.zeros(n_cells, dtype=int)
    histories: List[List[GuardbandIteration]] = [[] for _ in range(n_cells)]

    run_span = observe.span(
        "guardband.batch",
        benchmark=flow.netlist.name,
        n_cells=n_cells,
        delta_t=delta_t,
        max_iterations=max_iterations,
        n_warm_started=int(warm_started.sum()),
    )
    with run_span:
        for step in range(max_iterations):
            index = np.flatnonzero(active)
            if index.size == 0:
                break
            iterations[index] += 1
            it_span = observe.span(
                "guardband.batch.iteration",
                index=step + 1,
                n_active=int(index.size),
            )
            with it_span:
                # Line 4, batched: per-cell STA at the current profiles.
                with observe.span("guardband.sta") as sta_span:
                    reports = flow.timing.critical_path_batch(
                        fabric, t_tiles[index]
                    )
                frequencies = np.array(
                    [report.frequency_hz for report in reports]
                )
                # Line 5, batched: dynamic + leakage across the cell axis.
                with observe.span("guardband.power") as power_span:
                    power = power_model.evaluate_batch(
                        frequencies, t_tiles[index]
                    )
                # Line 7: one matrix-RHS back-substitution for all cells.
                with observe.span("guardband.thermal") as thermal_span:
                    t_new = solver.solve(power.total_w, ambients[index])
                max_delta = np.max(np.abs(t_new - t_tiles[index]), axis=1)
                t_tiles[index] = t_new
                it_span.set_attrs(
                    max_delta_celsius=float(max_delta.max()),
                    n_converging=int(np.sum(max_delta <= delta_t)),
                )
            phase = observe.phase_seconds(
                sta=sta_span, power=power_span, thermal=thermal_span
            )
            totals = power.total_watts_per_cell()
            for j, cell_index in enumerate(index):
                histories[cell_index].append(
                    GuardbandIteration(
                        frequency_hz=float(frequencies[j]),
                        total_power_w=float(totals[j]),
                        max_tile_celsius=float(t_tiles[cell_index].max()),
                        mean_tile_celsius=float(t_tiles[cell_index].mean()),
                        max_delta_celsius=float(max_delta[j]),
                        phase_seconds=(
                            {k: v / index.size for k, v in phase.items()}
                            if phase is not None
                            else None
                        ),
                    )
                )
            # Line 8, per cell: converged cells drop out of the batch.
            active[index[max_delta <= delta_t]] = False

        diverged = active.copy()
        converged_index = np.flatnonzero(~diverged)
        run_span.set_attrs(
            n_converged=int(converged_index.size),
            n_diverged=int(diverged.sum()),
            iterations=int(iterations.max(initial=0)),
        )

        finals: List[TimingReport] = []
        if converged_index.size:
            # Line 9, batched: one re-time of every converged cell at its
            # own converged profile + the delta_t compensation margin.
            with observe.span(
                "guardband.batch.final_sta", n_cells=int(converged_index.size)
            ):
                finals = flow.timing.critical_path_batch(
                    fabric, t_tiles[converged_index] + delta_t
                )

        outcomes: List[BatchOutcome] = []
        final_iter = iter(finals)
        for i in range(n_cells):
            if diverged[i]:
                observe.counter("guardband.diverged").inc()
                history = histories[i]
                last = (
                    f" (last |dT| = {history[-1].max_delta_celsius:.2f} C)"
                    if history
                    else ""
                )
                outcomes.append(
                    GuardbandError(
                        f"{flow.netlist.name}: temperature did not converge "
                        f"within {max_iterations} iterations{last}",
                        history=history,
                        last_temperatures=t_tiles[i].copy(),
                        iterations=int(iterations[i]),
                        t_ambient=float(ambients[i]),
                    )
                )
                continue
            observe.histogram("guardband.iterations").observe(
                float(iterations[i])
            )
            final = next(final_iter)
            outcomes.append(
                GuardbandResult(
                    frequency_hz=final.frequency_hz,
                    critical_path_s=final.critical_path_s,
                    tile_temperatures=t_tiles[i].copy(),
                    iterations=int(iterations[i]),
                    t_ambient=float(ambients[i]),
                    delta_t=delta_t,
                    total_power_w=histories[i][-1].total_power_w,
                    history=histories[i],
                    warm_started=bool(warm_started[i]),
                )
            )
    return outcomes


def _energy_guardband_batch(
    flow: FlowResult,
    fabric: Fabric,
    batch_cells: List[BatchCell],
    config: GuardbandConfig,
    activity: ActivityEstimate,
) -> List[BatchOutcome]:
    """Batched energy objective: joint VDD bisection at iso-frequency.

    Every cell shares the target clock and the ``[VDD_MIN_V, nominal]``
    bisection window, so the per-cell bisections stay in lockstep: each
    round jointly converges all live cells' thermal fixed points at their
    own trial supplies (masked, exactly like the frequency batch), then
    one batched re-time decides per-cell closure.  The trial sequence per
    cell is identical to the looped :func:`_energy_guardband`, so the
    outcomes agree within the compensation margin.  Cells whose target
    does not close at nominal supply (or whose fixed point diverges
    there) yield a :class:`GuardbandError` in their slot; a trial that
    diverges *below* nominal is treated as non-closing for that cell.
    """
    delta_t = config.delta_t
    max_iterations = config.max_iterations
    f_target = float(config.target_frequency_hz)  # type: ignore[arg-type]
    period_s = 1.0 / f_target

    power_model = PowerModel(flow, fabric, activity)
    solver = ThermalSolver(flow.layout, config.package)
    scaling = VoltageScaling()
    n_cells = len(batch_cells)
    n_tiles = flow.layout.n_tiles

    ambients = np.array([cell.t_ambient for cell in batch_cells], dtype=float)
    t_seed = np.empty((n_cells, n_tiles))
    warm_started = np.zeros(n_cells, dtype=bool)
    for i, cell in enumerate(batch_cells):
        t_seed[i], warm_started[i] = _seed_profile(
            cell.warm_start, n_tiles, float(ambients[i])
        )

    iterations = np.zeros(n_cells, dtype=int)
    histories: List[List[GuardbandIteration]] = [[] for _ in range(n_cells)]
    errors: Dict[int, GuardbandError] = {}

    def converge(
        live: np.ndarray, vdds: np.ndarray, t_start: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Jointly converge the live cells at per-cell trial supplies.

        Returns ``(t_conv, per-cell total power, diverged-row mask)``,
        all indexed like ``live``.
        """
        t_tiles = t_start.copy()
        totals = np.zeros(live.size)
        active = np.ones(live.size, dtype=bool)
        for step in range(max_iterations):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            iterations[live[idx]] += 1
            it_span = observe.span(
                "guardband.batch.iteration",
                index=step + 1,
                n_active=int(idx.size),
            )
            with it_span:
                with observe.span("guardband.sta") as sta_span:
                    reports = flow.timing.critical_path_batch(
                        fabric,
                        t_tiles[idx],
                        delay_scale=resource_delay_scale(
                            scaling.delay_scale_cells(vdds[idx], t_tiles[idx])
                        ),
                    )
                with observe.span("guardband.power") as power_span:
                    power = power_model.evaluate_at_voltage_batch(
                        np.full(idx.size, f_target),
                        t_tiles[idx],
                        scaling,
                        vdds[idx],
                    )
                with observe.span("guardband.thermal") as thermal_span:
                    t_new = solver.solve(power.total_w, ambients[live[idx]])
                max_delta = np.max(np.abs(t_new - t_tiles[idx]), axis=1)
                t_tiles[idx] = t_new
                per_cell = power.total_watts_per_cell()
                totals[idx] = per_cell
                it_span.set_attrs(
                    max_delta_celsius=float(max_delta.max()),
                    n_converging=int(np.sum(max_delta <= delta_t)),
                )
            phase = observe.phase_seconds(
                sta=sta_span, power=power_span, thermal=thermal_span
            )
            for j, row in enumerate(idx):
                histories[int(live[row])].append(
                    GuardbandIteration(
                        frequency_hz=float(reports[j].frequency_hz),
                        total_power_w=float(per_cell[j]),
                        max_tile_celsius=float(t_tiles[row].max()),
                        mean_tile_celsius=float(t_tiles[row].mean()),
                        max_delta_celsius=float(max_delta[j]),
                        phase_seconds=(
                            {k: v / idx.size for k, v in phase.items()}
                            if phase is not None
                            else None
                        ),
                    )
                )
            active[idx[max_delta <= delta_t]] = False
        return t_tiles, totals, active

    def retime(vdds: np.ndarray, t_conv: np.ndarray) -> List[TimingReport]:
        """Batched line 9: closure check with the compensation margin."""
        with observe.span(
            "guardband.batch.final_sta", n_cells=int(len(vdds))
        ):
            return flow.timing.critical_path_batch(
                fabric,
                t_conv + delta_t,
                delay_scale=resource_delay_scale(
                    scaling.delay_scale_cells(vdds, t_conv + delta_t)
                ),
            )

    run_span = observe.span(
        "guardband.batch",
        benchmark=flow.netlist.name,
        mode="energy",
        target_frequency_hz=f_target,
        n_cells=n_cells,
        delta_t=delta_t,
        max_iterations=max_iterations,
        n_warm_started=int(warm_started.sum()),
    )
    with run_span:
        live = np.arange(n_cells)
        v_nominal = scaling.vdd_nominal
        # Trial 0: feasibility at nominal supply, doubling as the
        # per-cell savings baseline.
        t_conv, totals, div = converge(
            live, np.full(n_cells, v_nominal), t_seed
        )
        for row in np.flatnonzero(div):
            i = int(live[row])
            observe.counter("guardband.diverged").inc()
            errors[i] = GuardbandError(
                f"{flow.netlist.name}: temperature did not converge within "
                f"{max_iterations} iterations at VDD={v_nominal:.3f} V",
                history=histories[i],
                last_temperatures=t_conv[row].copy(),
                iterations=int(iterations[i]),
                t_ambient=float(ambients[i]),
            )
        keep = np.flatnonzero(~div)
        live, t_conv, totals = live[keep], t_conv[keep], totals[keep]
        finals: List[TimingReport] = (
            retime(np.full(live.size, v_nominal), t_conv) if live.size else []
        )
        closes = np.array(
            [f.frequency_hz >= f_target for f in finals], dtype=bool
        )
        for row in np.flatnonzero(~closes):
            i = int(live[row])
            observe.counter("guardband.energy.infeasible").inc()
            errors[i] = GuardbandError(
                f"{flow.netlist.name}: target frequency "
                f"{f_target / 1e6:.2f} MHz does not close at nominal VDD "
                f"{v_nominal:.3f} V and Tamb={ambients[i]:g} C "
                f"(guardbanded maximum is "
                f"{finals[row].frequency_hz / 1e6:.2f} MHz); lower the "
                "target",
                history=histories[i],
                last_temperatures=t_conv[row].copy(),
                iterations=int(iterations[i]),
                t_ambient=float(ambients[i]),
            )
        keep = np.flatnonzero(closes)
        live = live[keep]
        nominal_power = totals[keep].copy()
        best_t = t_conv[keep].copy()
        best_power = totals[keep].copy()
        best_final: List[TimingReport] = [finals[int(row)] for row in keep]
        best_vdd = np.full(live.size, v_nominal)
        v_lo = np.full(live.size, VDD_MIN_V)
        v_hi = np.full(live.size, v_nominal)

        # All windows start identical and halve together, so every cell
        # resolves in the same number of rounds (lockstep bisection).
        while live.size and float(np.max(v_hi - v_lo)) > VDD_TOLERANCE_V:
            v_mid = 0.5 * (v_lo + v_hi)
            t_mid, totals_mid, div = converge(live, v_mid, best_t)
            closes = np.zeros(live.size, dtype=bool)
            conv_rows = np.flatnonzero(~div)
            finals_mid: Dict[int, TimingReport] = {}
            if conv_rows.size:
                for row, report in zip(
                    conv_rows, retime(v_mid[conv_rows], t_mid[conv_rows])
                ):
                    finals_mid[int(row)] = report
                    closes[row] = report.frequency_hz >= f_target
            for row in range(live.size):
                if closes[row]:
                    v_hi[row] = v_mid[row]
                    best_vdd[row] = v_mid[row]
                    best_t[row] = t_mid[row]
                    best_power[row] = totals_mid[row]
                    best_final[row] = finals_mid[row]
                else:
                    # Diverged or failed closure: the answer is above.
                    v_lo[row] = v_mid[row]

        run_span.set_attrs(
            n_converged=int(live.size),
            n_diverged=int(len(errors)),
            iterations=int(iterations.max(initial=0)),
        )

        outcomes: List[BatchOutcome] = []
        live_row = {int(cell): row for row, cell in enumerate(live)}
        for i in range(n_cells):
            if i in errors:
                outcomes.append(errors[i])
                continue
            row = live_row[i]
            observe.histogram("guardband.iterations").observe(
                float(iterations[i])
            )
            saving = 1.0 - float(best_power[row]) / float(nominal_power[row])
            energy = EnergyReport(
                vdd_v=float(best_vdd[row]),
                vdd_nominal_v=v_nominal,
                target_frequency_hz=f_target,
                total_power_w=float(best_power[row]),
                nominal_power_w=float(nominal_power[row]),
                power_saving_fraction=saving,
                energy_per_cycle_j=float(best_power[row]) * period_s,
                nominal_energy_per_cycle_j=float(nominal_power[row]) * period_s,
            )
            outcomes.append(
                GuardbandResult(
                    frequency_hz=f_target,
                    critical_path_s=best_final[row].critical_path_s,
                    tile_temperatures=best_t[row].copy(),
                    iterations=int(iterations[i]),
                    t_ambient=float(ambients[i]),
                    delta_t=delta_t,
                    total_power_w=float(best_power[row]),
                    history=histories[i],
                    warm_started=bool(warm_started[i]),
                    mode="energy",
                    vdd_v=float(best_vdd[row]),
                    energy=energy,
                )
            )
    return outcomes
