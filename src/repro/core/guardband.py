"""Thermal-aware guardbanding — the paper's Algorithm 1.

Given a placed-and-routed design, its fabric characterization, the signal
activities and the ambient temperature, iterate

1. ``f = T(netlist, T_vec)`` — temperature-aware STA over the whole netlist
   (the critical path can move between iterations);
2. ``p = p_dyn(netlist, alpha, f) + p_lkg(T_vec)`` — per-tile power;
3. ``T_vec = HotSpot(p)`` — steady-state thermal solve;

until the per-tile temperature change satisfies ``||dT||_inf <= delta_t``,
then re-time the design once more at ``T_vec + delta_t`` so the small
convergence error is covered by margin rather than optimism.  The resulting
frequency replaces the conventional worst-case (Tworst) clock.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import observe
from repro.activity.ace import ActivityEstimate, estimate_activity
from repro.cad.flow import FlowResult
from repro.cad.timing import TimingReport
from repro.coffe.fabric import Fabric
from repro.power.model import PowerModel
from repro.thermal.hotspot import ThermalSolver
from repro.thermal.package import ThermalPackage

DELTA_T_CELSIUS = 2.0
"""Convergence threshold and compensation margin (Algorithm 1's delta_T)."""

MAX_ITERATIONS = 25
"""The paper observes convergence in fewer than ten iterations."""

BASE_ACTIVITY_DEFAULT = 0.15
"""Default mean primary-input switching activity for the ACE estimate."""


class GuardbandError(RuntimeError):
    """Raised when the temperature-power fixed point does not converge.

    Carries the partial fixed-point state so a diverging sweep cell is
    debuggable without a re-run: the per-iteration ``history`` telemetry,
    the ``last_temperatures`` vector the loop stopped at, and the
    ``iterations`` spent.  All diagnostics default to empty so the
    exception still constructs from a bare message.
    """

    def __init__(
        self,
        message: str,
        *,
        history: Optional[List["GuardbandIteration"]] = None,
        last_temperatures: Optional[np.ndarray] = None,
        iterations: int = 0,
        t_ambient: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.history: List["GuardbandIteration"] = list(history or [])
        self.last_temperatures = last_temperatures
        self.iterations = iterations
        self.t_ambient = t_ambient

    @property
    def last_max_delta_celsius(self) -> Optional[float]:
        """The final iteration's ``||dT||_inf``, when any iteration ran."""
        if not self.history:
            return None
        return self.history[-1].max_delta_celsius


@dataclass(frozen=True)
class GuardbandConfig:
    """Algorithm 1 knobs, grouped so sweeps can carry them as one value.

    Frozen (hashable, picklable): an :class:`~repro.runner.ExperimentSpec`
    embeds one per job and ships it across process boundaries unchanged.
    """

    delta_t: float = DELTA_T_CELSIUS
    """Convergence threshold and compensation margin, Celsius."""
    max_iterations: int = MAX_ITERATIONS
    """Iteration budget before :class:`GuardbandError`."""
    base_activity: float = BASE_ACTIVITY_DEFAULT
    """Mean primary-input activity for the default ACE estimate."""
    package: Optional[ThermalPackage] = None
    """Thermal package override; ``None`` uses the solver default."""
    warm_start_policy: str = "off"
    """Fixed-point seeding policy for sweeps: ``"off"`` starts every cell
    from ambient (Algorithm 1 line 1); ``"nearest"`` lets the sweep
    engine seed each cell with the converged per-tile profile of the
    nearest completed neighbour from the result store (falling back to
    ambient when none exists).  Warm starts converge to the same fixed
    point within the ``delta_t`` tolerance — see DESIGN.md §11."""
    thermal_weight: float = 0.0
    """Thermal-aware placement blend: weight of the thermal proxy term in
    the placer's objective (:mod:`repro.cad.thermal_place`), relative to
    the initial wirelength cost.  0 keeps the legacy wirelength/timing
    placement (bit-identical); folded into the flow cache key, so cells
    with different weights never share a mapping."""

    def __post_init__(self) -> None:
        if self.delta_t <= 0.0:
            raise ValueError(f"delta_t must be positive, got {self.delta_t}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be at least 1, got {self.max_iterations}"
            )
        if not (0.0 < self.base_activity <= 1.0):
            raise ValueError(
                f"base_activity must be in (0, 1], got {self.base_activity}"
            )
        if self.warm_start_policy not in ("off", "nearest"):
            raise ValueError(
                'warm_start_policy must be "off" or "nearest", '
                f"got {self.warm_start_policy!r}"
            )
        if not (
            math.isfinite(self.thermal_weight) and self.thermal_weight >= 0.0
        ):
            raise ValueError(
                "thermal_weight must be finite and >= 0, "
                f"got {self.thermal_weight}"
            )

    def with_changes(self, **changes: object) -> "GuardbandConfig":
        """Return a copy with some knobs replaced."""
        return replace(self, **changes)


@dataclass
class GuardbandIteration:
    """Telemetry of one Algorithm 1 iteration."""

    frequency_hz: float
    total_power_w: float
    max_tile_celsius: float
    mean_tile_celsius: float
    max_delta_celsius: float
    phase_seconds: Optional[Dict[str, float]] = None
    """Seconds per phase ("sta", "power", "thermal"), derived from the
    iteration's :mod:`repro.observe` phase spans when observability is
    enabled; ``None`` otherwise."""


@dataclass
class GuardbandResult:
    """Outcome of thermal-aware guardbanding for one design."""

    frequency_hz: float
    """Final guardbanded clock (timed at the converged profile + delta_t)."""
    critical_path_s: float
    tile_temperatures: np.ndarray
    """Converged per-tile temperatures, Celsius."""
    iterations: int
    t_ambient: float
    delta_t: float
    total_power_w: float
    history: List[GuardbandIteration] = field(default_factory=list)
    warm_started: bool = False
    """Whether the fixed point was seeded from a neighbouring converged
    profile instead of the flat ambient vector; compare ``iterations``
    against a cold run to measure the iterations saved."""

    @property
    def mean_rise_celsius(self) -> float:
        return float(self.tile_temperatures.mean() - self.t_ambient)

    @property
    def max_gradient_celsius(self) -> float:
        """Largest on-chip temperature difference."""
        return float(self.tile_temperatures.max() - self.tile_temperatures.min())


def _coerce_config(
    config: Optional[GuardbandConfig], legacy: Dict[str, object]
) -> GuardbandConfig:
    """Resolve the ``config=`` value against the deprecated loose kwargs."""
    supplied = {k: v for k, v in legacy.items() if v is not None}
    if not supplied:
        return config if config is not None else GuardbandConfig()
    if config is not None:
        raise TypeError(
            "pass either config=GuardbandConfig(...) or the legacy "
            f"{sorted(supplied)} kwargs, not both"
        )
    warnings.warn(
        "thermal_aware_guardband(delta_t=..., max_iterations=..., "
        "base_activity=..., package=..., warm_start_policy=...) is "
        "deprecated; pass config=GuardbandConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return GuardbandConfig(**supplied)


def thermal_aware_guardband(
    flow: FlowResult,
    fabric: Fabric,
    t_ambient: float,
    activity: Optional[ActivityEstimate] = None,
    config: Optional[GuardbandConfig] = None,
    *,
    warm_start: Optional[np.ndarray] = None,
    delta_t: Optional[float] = None,
    max_iterations: Optional[int] = None,
    package: Optional[ThermalPackage] = None,
    base_activity: Optional[float] = None,
    warm_start_policy: Optional[str] = None,
) -> GuardbandResult:
    """Run Algorithm 1 on a placed-and-routed design.

    ``t_ambient`` is the junction base temperature ``Tamb`` every tile
    starts from (Algorithm 1 line 1).  ``warm_start`` optionally replaces
    that flat start with an initial per-tile temperature vector — e.g.
    the converged profile of a neighbouring sweep cell — clamped to at
    least ambient; the fixed point is the same, it is just reached in
    fewer iterations.  ``activity`` defaults to the ACE estimate with
    ``config.base_activity``.  The loose ``delta_t`` /
    ``max_iterations`` / ``package`` / ``base_activity`` /
    ``warm_start_policy`` kwargs are a deprecated spelling of
    :class:`GuardbandConfig` and will be removed.
    """
    config = _coerce_config(
        config,
        {
            "delta_t": delta_t,
            "max_iterations": max_iterations,
            "package": package,
            "base_activity": base_activity,
            "warm_start_policy": warm_start_policy,
        },
    )
    delta_t = config.delta_t
    max_iterations = config.max_iterations
    if activity is None:
        activity = estimate_activity(flow.netlist, config.base_activity)

    power_model = PowerModel(flow, fabric, activity)
    solver = ThermalSolver(flow.layout, config.package)
    n_tiles = flow.layout.n_tiles

    if warm_start is not None:
        seed_vec = np.asarray(warm_start, dtype=float)
        if seed_vec.shape != (n_tiles,):
            raise ValueError(
                f"warm_start must have shape ({n_tiles},) to match the "
                f"layout, got {seed_vec.shape}"
            )
        if not np.all(np.isfinite(seed_vec)):
            raise ValueError("warm_start contains non-finite temperatures")
        # Tiles cannot sit below the junction base temperature at steady
        # state; clamping keeps a neighbour profile from a cooler ambient
        # physically sensible.
        t_tiles = np.maximum(seed_vec, float(t_ambient))
        warm_started = True
    else:
        t_tiles = np.full(n_tiles, float(t_ambient))  # line 1
        warm_started = False
    history: List[GuardbandIteration] = []
    converged = False
    iterations = 0
    prev_frequency: Optional[float] = None

    run_span = observe.span(
        "guardband.run",
        benchmark=flow.netlist.name,
        t_ambient=float(t_ambient),
        delta_t=delta_t,
        max_iterations=max_iterations,
        warm_started=warm_started,
    )
    with run_span:
        for _ in range(max_iterations):
            iterations += 1
            it_span = observe.span("guardband.iteration", index=iterations)
            with it_span:
                # Line 4: full-netlist STA at the current temperatures.
                with observe.span("guardband.sta") as sta_span:
                    report = flow.timing.critical_path(fabric, t_tiles)
                frequency = report.frequency_hz
                # Line 5: per-tile dynamic + leakage power.
                with observe.span("guardband.power") as power_span:
                    power = power_model.evaluate(frequency, t_tiles)
                # Line 7: thermal solve; line 8: convergence check.
                with observe.span("guardband.thermal") as thermal_span:
                    t_new = solver.solve(power.total_w, t_ambient)
                max_delta = float(np.max(np.abs(t_new - t_tiles)))
                t_tiles = t_new
                it_span.set_attrs(
                    frequency_hz=frequency,
                    delta_frequency_hz=(
                        frequency - prev_frequency
                        if prev_frequency is not None
                        else 0.0
                    ),
                    max_delta_celsius=max_delta,
                    max_tile_celsius=float(t_tiles.max()),
                    total_power_w=power.total_watts,
                )
            prev_frequency = frequency
            history.append(
                GuardbandIteration(
                    frequency_hz=frequency,
                    total_power_w=power.total_watts,
                    max_tile_celsius=float(t_tiles.max()),
                    mean_tile_celsius=float(t_tiles.mean()),
                    max_delta_celsius=max_delta,
                    phase_seconds=observe.phase_seconds(
                        sta=sta_span, power=power_span, thermal=thermal_span
                    ),
                )
            )
            if max_delta <= delta_t:
                converged = True
                break

        run_span.set_attrs(converged=converged, iterations=iterations)
        if not converged:
            observe.counter("guardband.diverged").inc()
            last = (
                f" (last |dT| = {history[-1].max_delta_celsius:.2f} C)"
                if history
                else ""
            )
            raise GuardbandError(
                f"{flow.netlist.name}: temperature did not converge within "
                f"{max_iterations} iterations{last}",
                history=history,
                last_temperatures=t_tiles,
                iterations=iterations,
                t_ambient=float(t_ambient),
            )

        observe.histogram("guardband.iterations").observe(float(iterations))
        # Line 9: final timing with the delta_t compensation margin.
        with observe.span("guardband.final_sta"):
            final = flow.timing.critical_path(fabric, t_tiles + delta_t)
        run_span.set_attrs(frequency_hz=final.frequency_hz)
    return GuardbandResult(
        frequency_hz=final.frequency_hz,
        critical_path_s=final.critical_path_s,
        tile_temperatures=t_tiles,
        iterations=iterations,
        t_ambient=t_ambient,
        delta_t=delta_t,
        total_power_w=history[-1].total_power_w,
        history=history,
        warm_started=warm_started,
    )


@dataclass(frozen=True)
class BatchCell:
    """One sweep cell of a batched Algorithm 1 run.

    All cells of a batch share the placed netlist, fabric corner and
    :class:`GuardbandConfig`; what varies per cell is the ambient and,
    optionally, a warm-start profile (the converged temperatures of a
    neighbouring cell, re-based onto this ambient by the caller).
    """

    t_ambient: float
    warm_start: Optional[np.ndarray] = None


BatchOutcome = Union[GuardbandResult, "GuardbandError"]
"""Per-cell outcome of a batched run: the converged result, or — for a
cell that exhausted the iteration budget — a :class:`GuardbandError`
carrying its partial diagnostics.  A diverging cell never poisons its
batch-mates."""


def _coerce_cells(
    cells: Sequence[Union[float, BatchCell]], n_tiles: int
) -> List[BatchCell]:
    coerced: List[BatchCell] = []
    for cell in cells:
        if not isinstance(cell, BatchCell):
            cell = BatchCell(t_ambient=float(cell))
        if cell.warm_start is not None:
            seed_vec = np.asarray(cell.warm_start, dtype=float)
            if seed_vec.shape != (n_tiles,):
                raise ValueError(
                    f"warm_start must have shape ({n_tiles},) to match the "
                    f"layout, got {seed_vec.shape}"
                )
            if not np.all(np.isfinite(seed_vec)):
                raise ValueError("warm_start contains non-finite temperatures")
        coerced.append(cell)
    return coerced


def thermal_aware_guardband_batch(
    flow: FlowResult,
    fabric: Fabric,
    cells: Sequence[Union[float, BatchCell]],
    config: Optional[GuardbandConfig] = None,
    activity: Optional[ActivityEstimate] = None,
) -> List[BatchOutcome]:
    """Run Algorithm 1 jointly over many cells sharing one placed netlist.

    Every cell of an ambient sweep over the same ``flow`` shares the
    thermal conductance factorization and the STA delay tables; stacking
    their temperature/power state into ``(n_cells, n_tiles)`` arrays
    amortises all of it:

    - one :class:`~repro.thermal.hotspot.ThermalSolver` (one ``splu``
      factorization) back-substitutes the whole batch as a matrix RHS;
    - one :class:`~repro.power.model.PowerModel` evaluates dynamic and
      leakage power across the cell axis;
    - the STA delay interpolation runs once per iteration for all cells
      (:meth:`~repro.cad.timing.TimingAnalyzer.critical_path_batch`).

    Cells iterate jointly under an *active mask*: a cell whose
    ``||dT||_inf`` drops under ``config.delta_t`` converges and leaves
    the batch (it stops paying for slower batch-mates' iterations only
    in telemetry — the arrays shrink to the active rows each step), and
    each converged cell gets its own final re-time at ``T + delta_t``.
    A cell that exhausts ``config.max_iterations`` yields a
    :class:`GuardbandError` (with partial history and last temperatures
    attached) in its slot of the returned list without affecting any
    other cell.

    ``cells`` entries are ambients (floats) or :class:`BatchCell` values
    (ambient + optional warm-start profile).  Results are returned in
    input order and agree with the looped single-cell path within the
    ``delta_t`` compensation margin (DESIGN.md §12); per-iteration
    ``phase_seconds`` telemetry attributes each batch iteration's phase
    cost evenly across the cells active in it.
    """
    config = config if config is not None else GuardbandConfig()
    batch_cells = _coerce_cells(cells, flow.layout.n_tiles)
    if not batch_cells:
        return []
    if activity is None:
        activity = estimate_activity(flow.netlist, config.base_activity)

    power_model = PowerModel(flow, fabric, activity)
    solver = ThermalSolver(flow.layout, config.package)
    n_cells = len(batch_cells)
    n_tiles = flow.layout.n_tiles
    delta_t = config.delta_t
    max_iterations = config.max_iterations

    ambients = np.array([cell.t_ambient for cell in batch_cells], dtype=float)
    t_tiles = np.empty((n_cells, n_tiles))
    warm_started = np.zeros(n_cells, dtype=bool)
    for i, cell in enumerate(batch_cells):
        if cell.warm_start is not None:
            # Clamped like the single-cell path: tiles cannot sit below
            # the junction base temperature at steady state.
            t_tiles[i] = np.maximum(
                np.asarray(cell.warm_start, dtype=float), ambients[i]
            )
            warm_started[i] = True
        else:
            t_tiles[i] = ambients[i]  # line 1, per cell

    active = np.ones(n_cells, dtype=bool)
    iterations = np.zeros(n_cells, dtype=int)
    histories: List[List[GuardbandIteration]] = [[] for _ in range(n_cells)]

    run_span = observe.span(
        "guardband.batch",
        benchmark=flow.netlist.name,
        n_cells=n_cells,
        delta_t=delta_t,
        max_iterations=max_iterations,
        n_warm_started=int(warm_started.sum()),
    )
    with run_span:
        for step in range(max_iterations):
            index = np.flatnonzero(active)
            if index.size == 0:
                break
            iterations[index] += 1
            it_span = observe.span(
                "guardband.batch.iteration",
                index=step + 1,
                n_active=int(index.size),
            )
            with it_span:
                # Line 4, batched: per-cell STA at the current profiles.
                with observe.span("guardband.sta") as sta_span:
                    reports = flow.timing.critical_path_batch(
                        fabric, t_tiles[index]
                    )
                frequencies = np.array(
                    [report.frequency_hz for report in reports]
                )
                # Line 5, batched: dynamic + leakage across the cell axis.
                with observe.span("guardband.power") as power_span:
                    power = power_model.evaluate_batch(
                        frequencies, t_tiles[index]
                    )
                # Line 7: one matrix-RHS back-substitution for all cells.
                with observe.span("guardband.thermal") as thermal_span:
                    t_new = solver.solve(power.total_w, ambients[index])
                max_delta = np.max(np.abs(t_new - t_tiles[index]), axis=1)
                t_tiles[index] = t_new
                it_span.set_attrs(
                    max_delta_celsius=float(max_delta.max()),
                    n_converging=int(np.sum(max_delta <= delta_t)),
                )
            phase = observe.phase_seconds(
                sta=sta_span, power=power_span, thermal=thermal_span
            )
            totals = power.total_watts_per_cell()
            for j, cell_index in enumerate(index):
                histories[cell_index].append(
                    GuardbandIteration(
                        frequency_hz=float(frequencies[j]),
                        total_power_w=float(totals[j]),
                        max_tile_celsius=float(t_tiles[cell_index].max()),
                        mean_tile_celsius=float(t_tiles[cell_index].mean()),
                        max_delta_celsius=float(max_delta[j]),
                        phase_seconds=(
                            {k: v / index.size for k, v in phase.items()}
                            if phase is not None
                            else None
                        ),
                    )
                )
            # Line 8, per cell: converged cells drop out of the batch.
            active[index[max_delta <= delta_t]] = False

        diverged = active.copy()
        converged_index = np.flatnonzero(~diverged)
        run_span.set_attrs(
            n_converged=int(converged_index.size),
            n_diverged=int(diverged.sum()),
            iterations=int(iterations.max(initial=0)),
        )

        finals: List[TimingReport] = []
        if converged_index.size:
            # Line 9, batched: one re-time of every converged cell at its
            # own converged profile + the delta_t compensation margin.
            with observe.span(
                "guardband.batch.final_sta", n_cells=int(converged_index.size)
            ):
                finals = flow.timing.critical_path_batch(
                    fabric, t_tiles[converged_index] + delta_t
                )

        outcomes: List[BatchOutcome] = []
        final_iter = iter(finals)
        for i in range(n_cells):
            if diverged[i]:
                observe.counter("guardband.diverged").inc()
                history = histories[i]
                last = (
                    f" (last |dT| = {history[-1].max_delta_celsius:.2f} C)"
                    if history
                    else ""
                )
                outcomes.append(
                    GuardbandError(
                        f"{flow.netlist.name}: temperature did not converge "
                        f"within {max_iterations} iterations{last}",
                        history=history,
                        last_temperatures=t_tiles[i].copy(),
                        iterations=int(iterations[i]),
                        t_ambient=float(ambients[i]),
                    )
                )
                continue
            observe.histogram("guardband.iterations").observe(
                float(iterations[i])
            )
            final = next(final_iter)
            outcomes.append(
                GuardbandResult(
                    frequency_hz=final.frequency_hz,
                    critical_path_s=final.critical_path_s,
                    tile_temperatures=t_tiles[i].copy(),
                    iterations=int(iterations[i]),
                    t_ambient=float(ambients[i]),
                    delta_t=delta_t,
                    total_power_w=histories[i][-1].total_power_w,
                    history=histories[i],
                    warm_started=bool(warm_started[i]),
                )
            )
    return outcomes
