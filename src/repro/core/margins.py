"""Conventional worst-case guardbanding — the paper's baseline.

The one-size-fits-all policy: clock the design for the slowest supported
junction temperature (``Tworst = 100 C``) regardless of how cool the die
actually runs.  Every gain the paper reports (Figs. 6-8) is measured
against this baseline.
"""

from __future__ import annotations

import numpy as np

from repro.cad.flow import FlowResult
from repro.coffe.fabric import Fabric

T_WORST_CELSIUS = 100.0
"""Maximum supported junction temperature (Intel Arria 10 class devices)."""


def worst_case_frequency(
    flow: FlowResult,
    fabric: Fabric,
    t_worst: float = T_WORST_CELSIUS,
) -> float:
    """Baseline clock frequency assuming a uniform ``t_worst`` die, hertz."""
    t_tiles = np.full(flow.layout.n_tiles, float(t_worst))
    report = flow.timing.critical_path(fabric, t_tiles)
    return report.frequency_hz


def guardband_gain(
    guardbanded_frequency_hz: float, worst_case_frequency_hz: float
) -> float:
    """Fractional performance improvement over the worst-case baseline."""
    if worst_case_frequency_hz <= 0.0:
        raise ValueError("baseline frequency must be positive")
    return guardbanded_frequency_hz / worst_case_frequency_hz - 1.0
