"""Seed (pre-vectorization) reference implementations of Algorithm 1's hot loop.

The PR that vectorized the guardband hot loop (flattened STA element
arrays, pre-factorized thermal solve, matrix-product power model) kept the
original pure-Python code paths alive as ``*_reference`` /
``*_unfactored`` methods.  :func:`seed_implementation` swaps them in
globally so the equivalence tests and the hot-loop benchmark can run the
*exact* seed algorithm against the same flow objects and compare both
results and wall time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


@contextmanager
def seed_implementation() -> Iterator[None]:
    """Run everything inside the block on the seed (slow) code paths."""
    from repro.cad.timing import TimingAnalyzer
    from repro.power.model import PowerModel
    from repro.thermal.hotspot import ThermalSolver

    patches = (
        (TimingAnalyzer, "_arrival_pass", TimingAnalyzer._arrival_pass_reference),
        (ThermalSolver, "solve", ThermalSolver.solve_unfactored),
        (PowerModel, "dynamic_power", PowerModel.dynamic_power_reference),
        (PowerModel, "leakage_power", PowerModel.leakage_power_reference),
    )
    saved = [(cls, name, getattr(cls, name)) for cls, name, _ in patches]
    for cls, name, replacement in patches:
        setattr(cls, name, replacement)
    try:
        yield
    finally:
        for cls, name, original in saved:
            setattr(cls, name, original)
