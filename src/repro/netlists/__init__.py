"""Benchmark netlists: representation, synthetic generator, VTR-19 suite.

The paper maps the 19 VTR benchmarks (avg 17K / max 89K 6-LUTs).  We use
synthetic technology-mapped netlists that preserve each benchmark's
published resource *mix* (LUT/BRAM/DSP ratios, logic depth, activity
character) at ~1:100 scale so the pure-Python place-and-route completes in
seconds — see DESIGN.md, "Scale note".
"""

from repro.netlists.netlist import Block, BlockType, Net, Netlist
from repro.netlists.blif import read_blif, write_blif
from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.vtr_suite import VTR_BENCHMARKS, vtr_benchmark

__all__ = [
    "Block",
    "BlockType",
    "Net",
    "Netlist",
    "NetlistSpec",
    "VTR_BENCHMARKS",
    "generate_netlist",
    "read_blif",
    "vtr_benchmark",
    "write_blif",
]
