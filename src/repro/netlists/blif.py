"""BLIF-style netlist serialization.

A pragmatic subset of Berkeley Logic Interchange Format extended with the
hard-block subcircuits VTR uses, so netlists can be exchanged with other
tooling and checked into benchmarks:

- ``.model/.inputs/.outputs/.end`` structure;
- ``.names <in...> <out>`` declares a LUT (cover rows are accepted and
  ignored — the timing/power flow is function-agnostic);
- ``.latch <in> <out> [re clk init]`` declares a flip-flop;
- ``.subckt bram|dsp <port>=<net> ...`` declares a hard block.

Nets are identified by name; every net must have exactly one driver.
``write_blif``/``read_blif`` round-trip losslessly for netlists produced by
:mod:`repro.netlists.generator`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, TextIO, Tuple, Union

from repro.netlists.netlist import Block, BlockType, Net, Netlist


class BlifError(ValueError):
    """Raised on malformed BLIF input."""


def write_blif(netlist: Netlist, destination: Union[str, Path, TextIO]) -> None:
    """Write a netlist in the extended-BLIF subset."""
    netlist.validate()
    if hasattr(destination, "write"):
        _write(netlist, destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w") as handle:
            _write(netlist, handle)


def _net_name(netlist: Netlist, net_id: int) -> str:
    return netlist.nets[net_id].name


def _write(netlist: Netlist, out: TextIO) -> None:
    out.write(f".model {netlist.name}\n")
    inputs = [
        _net_name(netlist, b.output_nets[0])
        for b in netlist.blocks_of_type(BlockType.INPUT)
    ]
    outputs = [
        _net_name(netlist, b.input_nets[0])
        for b in netlist.blocks_of_type(BlockType.OUTPUT)
        if b.input_nets
    ]
    out.write(".inputs " + " ".join(inputs) + "\n")
    out.write(".outputs " + " ".join(outputs) + "\n")
    for block in netlist.blocks:
        if block.type == BlockType.LUT:
            names = [_net_name(netlist, n) for n in block.input_nets]
            names.append(_net_name(netlist, block.output_nets[0]))
            out.write(".names " + " ".join(names) + "\n")
            # Emit a generic cover (all-ones product term) for tool
            # compatibility; the flow itself is function-agnostic.
            if block.input_nets:
                out.write("1" * len(block.input_nets) + " 1\n")
        elif block.type == BlockType.FF:
            out.write(
                f".latch {_net_name(netlist, block.input_nets[0])} "
                f"{_net_name(netlist, block.output_nets[0])} re clk 0\n"
            )
        elif block.type in (BlockType.BRAM, BlockType.DSP):
            ports = [
                f"in{i}={_net_name(netlist, n)}"
                for i, n in enumerate(block.input_nets)
            ]
            ports += [
                f"out{i}={_net_name(netlist, n)}"
                for i, n in enumerate(block.output_nets)
            ]
            out.write(f".subckt {block.type.value} " + " ".join(ports) + "\n")
    out.write(".end\n")


def read_blif(source: Union[str, Path, TextIO]) -> Netlist:
    """Parse the extended-BLIF subset back into a :class:`Netlist`."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
        name_hint = "blif"
    else:
        text = Path(source).read_text()
        name_hint = Path(source).stem
    lines = _logical_lines(text)
    return _parse(lines, name_hint)


def _logical_lines(text: str) -> List[str]:
    """Strip comments, join continuation lines."""
    merged: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        merged.append((pending + line).strip())
        pending = ""
    if pending.strip():
        merged.append(pending.strip())
    return merged


def _parse(lines: List[str], name_hint: str) -> Netlist:
    model_name = name_hint
    inputs: List[str] = []
    outputs: List[str] = []
    luts: List[Tuple[List[str], str]] = []
    latches: List[Tuple[str, str]] = []
    subckts: List[Tuple[str, List[Tuple[str, str]]]] = []

    index = 0
    while index < len(lines):
        line = lines[index]
        tokens = line.split()
        directive = tokens[0]
        if directive == ".model":
            if len(tokens) >= 2:
                model_name = tokens[1]
        elif directive == ".inputs":
            inputs.extend(tokens[1:])
        elif directive == ".outputs":
            outputs.extend(tokens[1:])
        elif directive == ".names":
            if len(tokens) < 2:
                raise BlifError(f".names needs at least an output: {line!r}")
            luts.append((tokens[1:-1], tokens[-1]))
            # Swallow the cover rows.
            while index + 1 < len(lines) and not lines[index + 1].startswith("."):
                index += 1
        elif directive == ".latch":
            if len(tokens) < 3:
                raise BlifError(f".latch needs input and output: {line!r}")
            latches.append((tokens[1], tokens[2]))
        elif directive == ".subckt":
            if len(tokens) < 2:
                raise BlifError(f".subckt needs a model name: {line!r}")
            kind = tokens[1]
            if kind not in ("bram", "dsp"):
                raise BlifError(f"unsupported subcircuit {kind!r}")
            bindings = []
            for binding in tokens[2:]:
                if "=" not in binding:
                    raise BlifError(f"malformed port binding {binding!r}")
                port, net = binding.split("=", 1)
                bindings.append((port, net))
            subckts.append((kind, bindings))
        elif directive == ".end":
            break
        else:
            raise BlifError(f"unsupported directive {directive!r}")
        index += 1

    return _build(model_name, inputs, outputs, luts, latches, subckts)


def _build(
    model_name: str,
    inputs: List[str],
    outputs: List[str],
    luts: List[Tuple[List[str], str]],
    latches: List[Tuple[str, str]],
    subckts: List[Tuple[str, List[Tuple[str, str]]]],
) -> Netlist:
    netlist = Netlist(model_name)
    nets_by_name: Dict[str, Net] = {}

    def declare_driver(net_name: str, driver: Block) -> None:
        if net_name in nets_by_name:
            raise BlifError(f"net {net_name!r} has multiple drivers")
        net = netlist.add_net(driver, net_name)
        nets_by_name[net_name] = net

    # Pass 1: create driver blocks so every net exists before connecting.
    for name in inputs:
        declare_driver(name, netlist.add_block(BlockType.INPUT, f"pi_{name}"))
    lut_blocks: List[Block] = []
    for fanin, out_name in luts:
        block = netlist.add_block(BlockType.LUT)
        lut_blocks.append(block)
        declare_driver(out_name, block)
    latch_blocks: List[Block] = []
    for _in_name, out_name in latches:
        block = netlist.add_block(BlockType.FF)
        latch_blocks.append(block)
        declare_driver(out_name, block)
    hard_blocks: List[Block] = []
    for kind, bindings in subckts:
        type_ = BlockType.BRAM if kind == "bram" else BlockType.DSP
        block = netlist.add_block(type_)
        hard_blocks.append(block)
        for port, net_name in bindings:
            if port.startswith("out"):
                declare_driver(net_name, block)

    def lookup(net_name: str) -> Net:
        if net_name not in nets_by_name:
            raise BlifError(f"net {net_name!r} is never driven")
        return nets_by_name[net_name]

    # Pass 2: connect sinks.
    for (fanin, _out), block in zip(luts, lut_blocks):
        for net_name in fanin:
            netlist.connect(lookup(net_name), block)
    for (in_name, _out), block in zip(latches, latch_blocks):
        netlist.connect(lookup(in_name), block)
    for (kind, bindings), block in zip(subckts, hard_blocks):
        for port, net_name in bindings:
            if not port.startswith("out"):
                netlist.connect(lookup(net_name), block)
    for name in outputs:
        pad = netlist.add_block(BlockType.OUTPUT, f"po_{name}")
        netlist.connect(lookup(name), pad)

    # Give any dangling net an output pad so the netlist is well-formed.
    for net in netlist.nets:
        if not net.sinks:
            pad = netlist.add_block(BlockType.OUTPUT, f"po_dangle_{net.name}")
            netlist.connect(net, pad)

    netlist.validate()
    return netlist
