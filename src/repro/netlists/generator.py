"""Seeded synthetic netlist generator.

Builds layered, technology-mapped netlists with a controlled resource mix:

- ``depth`` layers of K-input LUTs between register stages, with
  locality-biased fan-in (most inputs come from the previous one or two
  layers) and a geometric fanout distribution — the structure VPR-style
  benchmarks exhibit;
- a configurable fraction of LUT outputs registered into FFs (pipelining);
- BRAM and DSP blocks spliced mid-pipeline: their inputs tap an early
  layer, their (registered) outputs feed later layers;
- primary inputs/outputs sized to the block counts.

Deterministic for a given :class:`NetlistSpec` (seeded RNG), so every bench
and test sees identical netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.netlists.netlist import BlockType, Net, Netlist


@dataclass(frozen=True)
class NetlistSpec:
    """Parameters of a synthetic benchmark."""

    name: str
    n_luts: int
    n_brams: int = 0
    n_dsps: int = 0
    depth: int = 8
    """Target combinational LUT depth between registers."""
    lut_inputs: int = 6
    ff_ratio: float = 0.35
    """Fraction of LUT outputs that are registered."""
    n_inputs: int = 0
    """Primary inputs; 0 derives a count from the LUT count."""
    n_outputs: int = 0
    base_activity: float = 0.15
    """Mean switching activity of the primary inputs."""
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_luts < 1:
            raise ValueError(f"{self.name}: need at least 1 LUT")
        if self.depth < 1:
            raise ValueError(f"{self.name}: depth must be >= 1")
        if not (0.0 <= self.ff_ratio <= 1.0):
            raise ValueError(f"{self.name}: ff_ratio must be in [0, 1]")
        if not (0.0 < self.base_activity <= 1.0):
            raise ValueError(f"{self.name}: base_activity must be in (0, 1]")


def generate_netlist(spec: NetlistSpec) -> Netlist:
    """Generate a validated netlist from a spec."""
    rng = np.random.default_rng(spec.seed)
    netlist = Netlist(spec.name)

    n_inputs = spec.n_inputs or max(8, spec.n_luts // 6)
    n_outputs = spec.n_outputs or max(4, spec.n_luts // 10)

    # Primary inputs drive the first layer.
    available: List[Net] = []
    for i in range(n_inputs):
        pad = netlist.add_block(BlockType.INPUT, f"pi_{i}")
        available.append(netlist.add_net(pad, f"pi_net_{i}"))

    # Distribute LUTs over layers (roughly equal, all layers non-empty).
    layer_sizes = _layer_sizes(spec.n_luts, spec.depth)
    recent: List[List[Net]] = [list(available)]
    all_lut_nets: List[Net] = []

    for layer_idx, size in enumerate(layer_sizes):
        layer_nets: List[Net] = []
        for j in range(size):
            lut = netlist.add_block(BlockType.LUT, f"lut_{layer_idx}_{j}")
            k = int(rng.integers(2, spec.lut_inputs + 1))
            for net in _pick_fanins(rng, recent, k):
                netlist.connect(net, lut)
            out = netlist.add_net(lut, f"{lut.name}_o")
            layer_nets.append(out)
            all_lut_nets.append(out)
            # Register some outputs: the FF output re-enters the pool, and
            # feeds back to keep state loops realistic.
            if rng.random() < spec.ff_ratio:
                ff = netlist.add_block(BlockType.FF, f"ff_{layer_idx}_{j}")
                netlist.connect(out, ff)
                ff_out = netlist.add_net(ff, f"{ff.name}_q")
                layer_nets.append(ff_out)
        recent.append(layer_nets)
        if len(recent) > 3:
            recent.pop(0)

    # Splice hard blocks: inputs from the existing pool, outputs join it.
    # DSP blocks cascade in multiply-accumulate chains and BRAMs in
    # FIFO/buffer chains (as the real diffeq/LU benchmarks do), which puts
    # the hard blocks on the critical path — the paper's DSP/BRAM-heavy
    # benchmarks owe their larger thermal guardbands to exactly this.
    pool = [net for layer in recent for net in layer] or available
    hard_nets: List[Net] = []
    previous_bram: Optional[Net] = None
    for i in range(spec.n_brams):
        bram = netlist.add_block(BlockType.BRAM, f"bram_{i}")
        if previous_bram is not None and i % 3:
            netlist.connect(previous_bram, bram)
        for net in _pick_fanins(rng, [pool], min(12, len(pool))):
            netlist.connect(net, bram)
        outs = [netlist.add_net(bram, f"{bram.name}_do{p}") for p in range(4)]
        hard_nets.extend(outs)
        previous_bram = outs[0]
    previous_dsp: Optional[Net] = None
    for i in range(spec.n_dsps):
        dsp = netlist.add_block(BlockType.DSP, f"dsp_{i}")
        if previous_dsp is not None and i % 4:
            netlist.connect(previous_dsp, dsp)
        for net in _pick_fanins(rng, [pool], min(16, len(pool))):
            netlist.connect(net, dsp)
        outs = [netlist.add_net(dsp, f"{dsp.name}_p{p}") for p in range(4)]
        hard_nets.extend(outs)
        previous_dsp = outs[0]

    # Hard-block outputs feed small output cones so they land on paths.
    cone_sources = hard_nets or pool
    for i, net in enumerate(hard_nets):
        lut = netlist.add_block(BlockType.LUT, f"lut_cone_{i}")
        netlist.connect(net, lut)
        extra = _pick_fanins(rng, [pool], min(2, len(pool)))
        for e in extra:
            if e is not net:
                netlist.connect(e, lut)
        all_lut_nets.append(netlist.add_net(lut, f"{lut.name}_o"))

    # Primary outputs tap the last layers (and hard cones).
    sink_pool = all_lut_nets[-max(n_outputs * 2, 8):] or available
    for i in range(n_outputs):
        pad = netlist.add_block(BlockType.OUTPUT, f"po_{i}")
        net = sink_pool[int(rng.integers(0, len(sink_pool)))]
        netlist.connect(net, pad)

    # Guarantee no dangling nets: give driverless-sink nets an output pad.
    for net in netlist.nets:
        if not net.sinks:
            pad = netlist.add_block(BlockType.OUTPUT, f"po_dangle_{net.id}")
            netlist.connect(net, pad)

    netlist.validate()
    return netlist


def _layer_sizes(n_luts: int, depth: int) -> List[int]:
    depth = min(depth, n_luts)
    base = n_luts // depth
    sizes = [base] * depth
    for i in range(n_luts - base * depth):
        sizes[i % depth] += 1
    return sizes


def _pick_fanins(
    rng: np.random.Generator, recent: List[List[Net]], k: int
) -> List[Net]:
    """Pick ``k`` distinct fan-in nets, biased towards the newest layers."""
    pools = [layer for layer in recent if layer]
    if not pools:
        raise ValueError("no nets available for fan-in")
    picked: List[Net] = []
    seen = set()
    attempts = 0
    while len(picked) < k and attempts < 20 * k:
        attempts += 1
        # Bias: newest pool with probability ~0.6, then earlier ones.
        weights = np.array([0.4**i for i in range(len(pools))][::-1])
        pool = pools[int(rng.choice(len(pools), p=weights / weights.sum()))]
        net = pool[int(rng.integers(0, len(pool)))]
        if net.id not in seen:
            seen.add(net.id)
            picked.append(net)
    return picked
