"""Technology-mapped netlist representation.

A :class:`Netlist` is what the CAD flow consumes: a DAG of K-input LUTs,
flip-flops, BRAMs, DSP blocks and IO pads connected by single-driver nets.
Combinational cycles are disallowed (every feedback loop must pass through a
flip-flop or memory), which both the activity estimator and the STA rely
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class BlockType(Enum):
    INPUT = "input"
    OUTPUT = "output"
    LUT = "lut"
    FF = "ff"
    BRAM = "bram"
    DSP = "dsp"


SEQUENTIAL_TYPES = frozenset({BlockType.FF, BlockType.BRAM, BlockType.INPUT})
"""Block types whose outputs start a new timing path (registered)."""


@dataclass
class Block:
    """One netlist primitive."""

    id: int
    type: BlockType
    name: str
    input_nets: List[int] = field(default_factory=list)
    output_nets: List[int] = field(default_factory=list)


@dataclass
class Net:
    """A single-driver net: ``driver`` block feeding ``sinks`` blocks."""

    id: int
    name: str
    driver: int
    sinks: List[int] = field(default_factory=list)


class Netlist:
    """A named collection of blocks and nets with integrity checking."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: List[Block] = []
        self.nets: List[Net] = []

    # -- construction ----------------------------------------------------------

    def add_block(self, type_: BlockType, name: Optional[str] = None) -> Block:
        block = Block(len(self.blocks), type_, name or f"{type_.value}_{len(self.blocks)}")
        self.blocks.append(block)
        return block

    def add_net(self, driver: Block, name: Optional[str] = None) -> Net:
        net = Net(len(self.nets), name or f"net_{len(self.nets)}", driver.id)
        self.nets.append(net)
        driver.output_nets.append(net.id)
        return net

    def connect(self, net: Net, sink: Block) -> None:
        net.sinks.append(sink.id)
        sink.input_nets.append(net.id)

    # -- queries ----------------------------------------------------------------

    def blocks_of_type(self, type_: BlockType) -> List[Block]:
        return [b for b in self.blocks if b.type == type_]

    def count(self, type_: BlockType) -> int:
        return sum(1 for b in self.blocks if b.type == type_)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    def stats(self) -> Dict[str, int]:
        """Resource counts, for reporting."""
        return {
            "luts": self.count(BlockType.LUT),
            "ffs": self.count(BlockType.FF),
            "brams": self.count(BlockType.BRAM),
            "dsps": self.count(BlockType.DSP),
            "inputs": self.count(BlockType.INPUT),
            "outputs": self.count(BlockType.OUTPUT),
            "nets": self.n_nets,
        }

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems.

        Checks single-driver consistency, dangling references, and the
        absence of combinational cycles.
        """
        for net in self.nets:
            if not (0 <= net.driver < len(self.blocks)):
                raise ValueError(f"{self.name}: net {net.name} has bad driver id")
            if net.id not in self.blocks[net.driver].output_nets:
                raise ValueError(
                    f"{self.name}: net {net.name} not in its driver's outputs"
                )
            for sink in net.sinks:
                if not (0 <= sink < len(self.blocks)):
                    raise ValueError(f"{self.name}: net {net.name} has bad sink id")
        for block in self.blocks:
            if block.type == BlockType.FF and len(block.input_nets) != 1:
                raise ValueError(
                    f"{self.name}: FF {block.name} must have exactly 1 input, "
                    f"has {len(block.input_nets)}"
                )
            if block.type == BlockType.INPUT and block.input_nets:
                raise ValueError(f"{self.name}: input pad {block.name} has inputs")
        self.combinational_order()  # raises on combinational cycles

    def combinational_order(self) -> List[int]:
        """Topological order of blocks over *combinational* edges.

        Edges out of sequential blocks (FF/BRAM/input pads) are cut, so any
        remaining cycle is a genuine combinational loop and an error.
        """
        indegree = [0] * len(self.blocks)
        fanout: List[List[int]] = [[] for _ in self.blocks]
        for net in self.nets:
            driver = self.blocks[net.driver]
            if driver.type in SEQUENTIAL_TYPES:
                continue
            for sink in net.sinks:
                fanout[net.driver].append(sink)
                indegree[sink] += 1
        order = [b.id for b in self.blocks if indegree[b.id] == 0]
        head = 0
        while head < len(order):
            current = order[head]
            head += 1
            for sink in fanout[current]:
                indegree[sink] -= 1
                if indegree[sink] == 0:
                    order.append(sink)
        if len(order) != len(self.blocks):
            raise ValueError(f"{self.name}: combinational cycle detected")
        return order

    def logic_depth(self) -> int:
        """Maximum number of LUTs on any register-to-register path."""
        order = self.combinational_order()
        depth = [0] * len(self.blocks)
        net_of: Dict[int, Net] = {n.id: n for n in self.nets}
        for block_id in order:
            block = self.blocks[block_id]
            if block.type in SEQUENTIAL_TYPES:
                base = 0
            else:
                base = depth[block_id]
            bump = 1 if block.type == BlockType.LUT else 0
            for net_id in block.output_nets:
                for sink in net_of[net_id].sinks:
                    sink_block = self.blocks[sink]
                    if sink_block.type in SEQUENTIAL_TYPES or (
                        sink_block.type == BlockType.OUTPUT
                    ):
                        continue
                    depth[sink] = max(depth[sink], base + bump)
        luts = [b.id for b in self.blocks if b.type == BlockType.LUT]
        if not luts:
            return 0
        return max(depth[i] + 1 for i in luts)
