"""The 19 VTR benchmarks as scaled synthetic specs.

Resource mixes follow the published VTR-7 benchmark characteristics (the
paper: "19 designs of the VTR repository that comprise an average (maximum)
of 17K (89K) 6-input LUTs, 39 (334) BRAMs, and 19 (213) DSP blocks").  LUT
counts are scaled ~1:100 and BRAM/DSP counts ~1:4 so that pure-Python
place-and-route completes in seconds while each benchmark keeps its
character: ``stereovision2``/``raygentop``/``diffeq*`` are DSP-heavy,
``mkPktMerge``/``mkDelayWorker32B``/``LU*PEEng``/``mcml`` use BRAM heavily,
``sha``/``blob_merge`` are pure soft logic.  Relative per-benchmark
guardbanding gains (paper Figs. 6-8) depend on this mix, not on absolute
size — see DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.netlist import Netlist

VTR_BENCHMARKS: Tuple[NetlistSpec, ...] = (
    NetlistSpec("bgm", n_luts=260, n_brams=0, n_dsps=3, depth=11,
                base_activity=0.12, seed=101),
    NetlistSpec("blob_merge", n_luts=64, n_brams=0, n_dsps=0, depth=9,
                base_activity=0.16, seed=102),
    NetlistSpec("boundtop", n_luts=30, n_brams=1, n_dsps=0, depth=7,
                base_activity=0.14, seed=103),
    NetlistSpec("ch_intrinsics", n_luts=12, n_brams=1, n_dsps=0, depth=5,
                base_activity=0.18, seed=104),
    NetlistSpec("diffeq1", n_luts=12, n_brams=0, n_dsps=5, depth=6,
                base_activity=0.20, seed=105),
    NetlistSpec("diffeq2", n_luts=10, n_brams=0, n_dsps=5, depth=6,
                base_activity=0.20, seed=106),
    NetlistSpec("LU32PEEng", n_luts=400, n_brams=24, n_dsps=6, depth=12,
                base_activity=0.10, seed=107),
    NetlistSpec("LU8PEEng", n_luts=230, n_brams=11, n_dsps=2, depth=12,
                base_activity=0.10, seed=108),
    NetlistSpec("mcml", n_luts=470, n_brams=8, n_dsps=7, depth=13,
                base_activity=0.08, seed=109),
    NetlistSpec("mkDelayWorker32B", n_luts=56, n_brams=11, n_dsps=0, depth=6,
                base_activity=0.13, seed=110),
    NetlistSpec("mkPktMerge", n_luts=4, n_brams=4, n_dsps=0, depth=3,
                base_activity=0.22, seed=111),
    NetlistSpec("mkSMAdapter4B", n_luts=25, n_brams=2, n_dsps=0, depth=6,
                base_activity=0.15, seed=112),
    NetlistSpec("or1200", n_luts=31, n_brams=1, n_dsps=1, depth=9,
                base_activity=0.14, seed=113),
    NetlistSpec("raygentop", n_luts=21, n_brams=1, n_dsps=2, depth=7,
                base_activity=0.17, seed=114),
    NetlistSpec("sha", n_luts=27, n_brams=0, n_dsps=0, depth=10,
                base_activity=0.19, seed=115),
    NetlistSpec("stereovision0", n_luts=115, n_brams=0, n_dsps=0, depth=8,
                base_activity=0.15, seed=116),
    NetlistSpec("stereovision1", n_luts=103, n_brams=0, n_dsps=10, depth=8,
                base_activity=0.15, seed=117),
    NetlistSpec("stereovision2", n_luts=200, n_brams=0, n_dsps=22, depth=9,
                base_activity=0.13, seed=118),
    NetlistSpec("stereovision3", n_luts=8, n_brams=0, n_dsps=0, depth=4,
                base_activity=0.20, seed=119),
)

_SPEC_BY_NAME: Dict[str, NetlistSpec] = {s.name: s for s in VTR_BENCHMARKS}
_NETLIST_CACHE: Dict[str, Netlist] = {}


def vtr_benchmark(name: str) -> Netlist:
    """Generate (and cache) one of the 19 VTR benchmark netlists by name."""
    if name not in _SPEC_BY_NAME:
        known = ", ".join(sorted(_SPEC_BY_NAME))
        raise KeyError(f"unknown VTR benchmark {name!r}; known: {known}")
    if name not in _NETLIST_CACHE:
        _NETLIST_CACHE[name] = generate_netlist(_SPEC_BY_NAME[name])
    return _NETLIST_CACHE[name]


def benchmark_names() -> Tuple[str, ...]:
    """Benchmark names in the paper's figure order."""
    return tuple(s.name for s in VTR_BENCHMARKS)
