"""repro.observe — unified tracing, metrics and event-log subsystem.

One observability layer for the whole flow: hierarchical **spans**
(trace-id/span-id, nesting, wall-clock start + monotonic duration,
structured attributes), a **metrics registry** (counters, gauges,
histograms), point-in-time **events**, and pluggable **sinks**
(:class:`InMemorySink` for tests, line-flushed :class:`JsonlSink` for
runs).  Everything is zero-cost when disabled: accessors collapse to
shared no-op singletons behind one ``is_enabled`` check, so Algorithm 1's
hot loop pays nothing in production.

Enable around any code, then read the trace back::

    from repro import observe

    with observe.enabled(jsonl_path="trace.jsonl"):
        result = thermal_aware_guardband(flow, fabric, t_ambient=25.0)

    # later: python -m repro.observe report trace.jsonl

Instrumented seams: ``core/guardband.py`` (one span per Algorithm 1
iteration, with convergence attributes), ``cad/flow.py`` (stage spans and
cache hit/miss/quarantine counters), ``thermal/hotspot.py`` (per-solve
spans) and ``runner/engine.py`` (job lifecycle spans/events).  Trace
context crosses the ``ProcessPoolExecutor`` boundary as a pickled
:class:`TraceContext`, so pool workers re-parent their spans under the
sweep's trace by appending to the same JSONL file.

The trace reader lives in :mod:`repro.observe.report` (kept out of this
facade so importing :mod:`repro.observe` never drags in the reporting
stack) and is exposed as ``python -m repro.observe report``.
"""

from repro.observe.context import TraceContext
from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observe.runtime import (
    attach,
    counter,
    emit_span,
    enabled,
    event,
    gauge,
    histogram,
    is_enabled,
    phase_seconds,
    propagation_context,
    span,
    total_phase_seconds,
)
from repro.observe.sinks import FanoutSink, InMemorySink, JsonlSink, Sink
from repro.observe.spans import NULL_SPAN, Span, SpanLike

__all__ = [
    "Counter",
    "FanoutSink",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "Sink",
    "Span",
    "SpanLike",
    "TraceContext",
    "attach",
    "counter",
    "emit_span",
    "enabled",
    "event",
    "gauge",
    "histogram",
    "is_enabled",
    "phase_seconds",
    "propagation_context",
    "span",
    "total_phase_seconds",
]
