"""Command-line trace reader: ``python -m repro.observe report <trace.jsonl>``.

Reconstructs the trace tree(s) from a JSONL trace file (written by
``python -m repro suite/sweep --trace PATH`` or any
:func:`repro.observe.enabled` session with a ``jsonl_path``) and prints
the span tree plus per-phase, per-cell, metric and event summaries.
``--json`` emits the same report as one machine-readable object.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.observe.report import load_traces, render_report, report_dict


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.observe",
        description="Read and summarise repro observability traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser(
        "report", help="reconstruct and summarise a trace JSONL file"
    )
    p.add_argument("path", help="trace JSONL file to read")
    p.add_argument(
        "--json", action="store_true",
        help="emit the report as one machine-readable JSON object",
    )
    p.add_argument(
        "--max-depth", type=int, default=None,
        help="prune the rendered span tree below this depth",
    )
    args = parser.parse_args(argv)

    try:
        trace_file = load_traces(args.path)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not trace_file.traces:
        print(f"error: no trace records found in {args.path}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report_dict(trace_file), sort_keys=False))
    else:
        print(render_report(trace_file, max_depth=args.max_depth))
    return 0


if __name__ == "__main__":
    sys.exit(main())
