"""The one place the codebase reads clocks.

The determinism invariant (the ``determinism`` rule in
:mod:`repro.analysis`) is that every flow result is a pure function of
``(netlist, arch, seed)``; a clock read anywhere near the computation is
how timing quietly leaks into results.  All wall-clock and monotonic
reads are therefore confined to this module (plus the deprecated
:mod:`repro.profiling` shim), and the rest of the codebase imports
:func:`wall` / :func:`monotonic` from here for observability-only
timestamps, durations and timeouts.
"""

from __future__ import annotations

import time


def wall() -> float:
    """Seconds since the epoch — trace-alignment timestamps only."""
    return time.time()


def monotonic() -> float:
    """High-resolution monotonic seconds — durations and timeouts only."""
    return time.perf_counter()
