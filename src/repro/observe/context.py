"""Trace identity and cross-process propagation.

A *trace* is one logical operation (e.g. one ``run_sweep``); *spans* nest
inside it.  Identifiers only need to be unique within one trace file:
span ids combine the pid with a per-process counter (fork-safe — children
inherit the counter value but differ in pid), trace ids are random bytes.

:class:`TraceContext` is the picklable capsule the engine ships to pool
workers alongside each :class:`~repro.runner.spec.SweepJob` dispatch: the
worker-side session re-parents its spans under ``span_id`` and appends
records to ``jsonl_path``, so a parallel sweep still reads back as one
tree.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Optional

_IDS = itertools.count(1)


def new_trace_id() -> str:
    return os.urandom(8).hex()


def new_span_id() -> str:
    return f"{os.getpid():08x}-{next(_IDS):06x}"


@dataclass(frozen=True)
class TraceContext:
    """Everything a worker needs to join an in-flight trace."""

    trace_id: str
    span_id: Optional[str]
    """Re-parenting anchor: the engine's current span at dispatch time."""
    jsonl_path: Optional[str]
    """Trace file workers append to; ``None`` under a non-file sink (the
    worker then times spans but has nowhere to record them)."""
