"""Metrics registry: counters, gauges and histograms.

Instruments are plain mutable accumulators owned by the active session;
:meth:`MetricsRegistry.records` snapshots every instrument that saw a
write into flat record dicts, which the session flushes to its sink on
exit.  Pool workers run one session per job, so each worker flush carries
that job's *delta* and the report CLI can sum counter records across
processes without double counting.

When observability is disabled the module-level ``NULL_*`` singletons
stand in: every mutator is a no-op, so instrumented call sites pay one
``is-enabled`` check and nothing else.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing count (cache hits, retries, solves)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary (count/sum/min/max) of an observed distribution."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter("<disabled>")
NULL_GAUGE = _NullGauge("<disabled>")
NULL_HISTOGRAM = _NullHistogram("<disabled>")


class MetricsRegistry:
    """Get-or-create registry for one session's metric instruments."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def records(self) -> List[Dict[str, object]]:
        """Flat record dicts for every instrument that saw a write."""
        out: List[Dict[str, object]] = []
        for counter in self.counters.values():
            if counter.value:
                out.append(
                    {"type": "metric", "kind": "counter",
                     "name": counter.name, "value": counter.value}
                )
        for gauge in self.gauges.values():
            if gauge.value is not None:
                out.append(
                    {"type": "metric", "kind": "gauge",
                     "name": gauge.name, "value": gauge.value}
                )
        for histogram in self.histograms.values():
            if histogram.count:
                out.append(
                    {"type": "metric", "kind": "histogram",
                     "name": histogram.name, "count": histogram.count,
                     "sum": histogram.total, "min": histogram.min,
                     "max": histogram.max}
                )
        return out
