"""Trace reconstruction and reporting — ``python -m repro.observe report``.

Reads the JSONL a :class:`~repro.observe.sinks.JsonlSink` wrote.  The file
is the merge of the engine session and any number of appending pool
workers, so record order is arbitrary: parents are routinely written
*after* their children (span records are emitted at exit, so the sweep
root is the last line), and a killed or timed-out worker's spans may be
missing entirely.  The loader therefore builds the tree from
``parent_id`` links over the full file, tolerates malformed trailing
lines (a writer killed mid-record), and parks spans whose parent never
closed as *orphans* rather than dropping them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.reporting.tables import format_table


@dataclass
class SpanNode:
    """One reconstructed span plus its children, sorted by start time."""

    record: Dict[str, object]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def span_id(self) -> Optional[str]:
        value = self.record.get("span_id")
        return str(value) if value is not None else None

    @property
    def parent_id(self) -> Optional[str]:
        value = self.record.get("parent_id")
        return str(value) if value is not None else None

    @property
    def t_start(self) -> float:
        value = self.record.get("t_start")
        return float(value) if isinstance(value, (int, float)) else 0.0

    @property
    def duration_s(self) -> Optional[float]:
        value = self.record.get("duration_s")
        return float(value) if isinstance(value, (int, float)) else None

    @property
    def status(self) -> str:
        return str(self.record.get("status", "ok"))

    @property
    def attrs(self) -> Dict[str, object]:
        attrs = self.record.get("attrs")
        return attrs if isinstance(attrs, dict) else {}

    def walk(self) -> List["SpanNode"]:
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out


@dataclass
class Trace:
    """Everything recorded under one trace id."""

    trace_id: str
    roots: List[SpanNode]
    orphans: List[SpanNode]
    """Spans whose parent id names a span with no record (the parent never
    finished — e.g. a worker killed mid-job)."""
    spans: List[SpanNode]
    events: List[Dict[str, object]]
    metrics: List[Dict[str, object]]

    @property
    def pids(self) -> List[int]:
        seen = {
            int(r["pid"])
            for node in self.spans
            for r in (node.record,)
            if isinstance(r.get("pid"), int)
        }
        return sorted(seen)


@dataclass
class TraceFile:
    """A parsed trace JSONL: traces in first-appearance order."""

    traces: List[Trace]
    malformed_lines: int


def load_traces(path: str) -> TraceFile:
    """Parse the JSONL at ``path`` and rebuild one tree per trace id."""
    grouped: Dict[str, Dict[str, List[Dict[str, object]]]] = {}
    order: List[str] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if not isinstance(record, dict) or "trace_id" not in record:
                malformed += 1
                continue
            trace_id = str(record["trace_id"])
            if trace_id not in grouped:
                grouped[trace_id] = {"span": [], "event": [], "metric": []}
                order.append(trace_id)
            bucket = grouped[trace_id].get(str(record.get("type", "")))
            if bucket is None:
                malformed += 1
                continue
            bucket.append(record)
    traces = [_build_trace(tid, grouped[tid]) for tid in order]
    return TraceFile(traces=traces, malformed_lines=malformed)


def _build_trace(
    trace_id: str, records: Dict[str, List[Dict[str, object]]]
) -> Trace:
    nodes = [SpanNode(record) for record in records["span"]]
    by_id = {node.span_id: node for node in nodes if node.span_id}
    roots: List[SpanNode] = []
    orphans: List[SpanNode] = []
    for node in nodes:
        parent = node.parent_id
        if parent is None:
            roots.append(node)
        elif parent in by_id:
            by_id[parent].children.append(node)
        else:
            orphans.append(node)
    for node in nodes:
        node.children.sort(key=lambda n: n.t_start)
    roots.sort(key=lambda n: n.t_start)
    orphans.sort(key=lambda n: n.t_start)
    events = sorted(
        records["event"],
        key=lambda r: float(r.get("t", 0.0)) if isinstance(r.get("t"), (int, float)) else 0.0,
    )
    return Trace(
        trace_id=trace_id,
        roots=roots,
        orphans=orphans,
        spans=nodes,
        events=events,
        metrics=records["metric"],
    )


# -- summaries ---------------------------------------------------------------


def phase_summary(trace: Trace) -> List[Tuple[str, int, float, float, float, float]]:
    """Per-span-name aggregate: (name, count, total_s, mean_s, min_s, max_s)."""
    grouped: Dict[str, List[float]] = {}
    for node in trace.spans:
        duration = node.duration_s
        if duration is None:
            continue
        grouped.setdefault(node.name, []).append(duration)
    out = []
    for name in sorted(grouped):
        durations = grouped[name]
        total = sum(durations)
        out.append(
            (name, len(durations), total, total / len(durations),
             min(durations), max(durations))
        )
    return out


def cell_summary(trace: Trace) -> List[Dict[str, object]]:
    """Per-grid-cell lifecycle rows, from the engine's ``sweep.cell`` spans."""
    rows = []
    for node in sorted(
        (n for n in trace.spans if n.name == "sweep.cell"),
        key=lambda n: n.t_start,
    ):
        attrs = node.attrs
        rows.append(
            {
                "job_id": attrs.get("job_id", "?"),
                "status": node.status if "status" not in attrs else attrs["status"],
                "attempts": attrs.get("attempts", 1),
                "wall_s": node.duration_s,
                "cache_hits": attrs.get("cache_hits", 0),
            }
        )
    return rows


def metric_summary(trace: Trace) -> Dict[str, Dict[str, object]]:
    """Merge per-process metric records: counters summed, histograms
    union-merged, gauges last-write-wins."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    for record in trace.metrics:
        kind = record.get("kind")
        name = str(record.get("name", "?"))
        if kind == "counter":
            counters[name] = counters.get(name, 0.0) + float(record.get("value", 0.0))  # type: ignore[arg-type]
        elif kind == "gauge":
            gauges[name] = float(record.get("value", 0.0))  # type: ignore[arg-type]
        elif kind == "histogram":
            merged = histograms.setdefault(
                name, {"count": 0.0, "sum": 0.0, "min": float("inf"),
                       "max": float("-inf")}
            )
            merged["count"] += float(record.get("count", 0.0))  # type: ignore[arg-type]
            merged["sum"] += float(record.get("sum", 0.0))  # type: ignore[arg-type]
            merged["min"] = min(merged["min"], float(record.get("min", merged["min"])))  # type: ignore[arg-type]
            merged["max"] = max(merged["max"], float(record.get("max", merged["max"])))  # type: ignore[arg-type]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def event_summary(trace: Trace) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in trace.events:
        name = str(record.get("name", "?"))
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


# -- rendering ---------------------------------------------------------------


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_attrs(attrs: Dict[str, object], limit: int = 6) -> str:
    parts = []
    for key, value in list(attrs.items())[:limit]:
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    if len(attrs) > limit:
        parts.append("...")
    return " ".join(parts)


def _render_node(
    node: SpanNode, depth: int, max_depth: Optional[int], lines: List[str]
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    status = "" if node.status == "ok" else f" [{node.status}]"
    attrs = _fmt_attrs(node.attrs)
    lines.append(
        f"{'  ' * depth}{node.name}  {_fmt_duration(node.duration_s)}"
        f"{status}{('  ' + attrs) if attrs else ''}"
    )
    pruned = 0
    for child in node.children:
        if max_depth is not None and depth + 1 > max_depth:
            pruned += 1
            continue
        _render_node(child, depth + 1, max_depth, lines)
    if pruned:
        lines.append(f"{'  ' * (depth + 1)}... {pruned} child span(s) pruned")


def render_report(
    trace_file: TraceFile, max_depth: Optional[int] = None
) -> str:
    """Human-readable multi-trace report."""
    blocks: List[str] = []
    for trace in trace_file.traces:
        lines = [
            f"trace {trace.trace_id} — {len(trace.spans)} spans, "
            f"{len(trace.events)} events, {len(trace.metrics)} metric "
            f"records, pids {trace.pids}"
        ]
        for root in trace.roots:
            _render_node(root, 1, max_depth, lines)
        if trace.orphans:
            lines.append(
                f"  ({len(trace.orphans)} orphaned span(s) — parent never "
                "finished, e.g. a killed worker:)"
            )
            for orphan in trace.orphans:
                _render_node(orphan, 2, max_depth, lines)
        blocks.append("\n".join(lines))

        phases = phase_summary(trace)
        if phases:
            blocks.append(
                format_table(
                    ["span", "count", "total s", "mean ms", "min ms", "max ms"],
                    [
                        (name, count, f"{total:.4f}", f"{mean * 1e3:.3f}",
                         f"{lo * 1e3:.3f}", f"{hi * 1e3:.3f}")
                        for name, count, total, mean, lo, hi in phases
                    ],
                    title="per-phase summary",
                )
            )
        cells = cell_summary(trace)
        if cells:
            blocks.append(
                format_table(
                    ["job", "status", "attempts", "wall", "cache hits"],
                    [
                        (row["job_id"], row["status"], row["attempts"],
                         _fmt_duration(row["wall_s"] if isinstance(row["wall_s"], float) else None),
                         row["cache_hits"])
                        for row in cells
                    ],
                    title="per-cell summary",
                )
            )
        metrics = metric_summary(trace)
        metric_rows: List[Tuple[str, str, str]] = []
        for name, value in metrics["counters"].items():
            metric_rows.append(("counter", name, f"{value:g}"))
        for name, value in metrics["gauges"].items():
            metric_rows.append(("gauge", name, f"{value:g}"))
        for name, merged in metrics["histograms"].items():
            mean = merged["sum"] / merged["count"] if merged["count"] else 0.0
            metric_rows.append(
                ("histogram", name,
                 f"n={merged['count']:g} mean={mean:g} "
                 f"min={merged['min']:g} max={merged['max']:g}")
            )
        if metric_rows:
            blocks.append(
                format_table(["kind", "name", "value"], metric_rows,
                             title="metrics")
            )
        events = event_summary(trace)
        if events:
            blocks.append(
                format_table(
                    ["event", "count"], sorted(events.items()), title="events"
                )
            )
    if trace_file.malformed_lines:
        blocks.append(
            f"({trace_file.malformed_lines} malformed line(s) skipped)"
        )
    return "\n\n".join(blocks)


def _node_dict(node: SpanNode) -> Dict[str, object]:
    return {
        "name": node.name,
        "span_id": node.span_id,
        "t_start": node.t_start,
        "duration_s": node.duration_s,
        "status": node.status,
        "attrs": node.attrs,
        "children": [_node_dict(child) for child in node.children],
    }


def report_dict(trace_file: TraceFile) -> Dict[str, object]:
    """Machine-readable form of the full report (the ``--json`` payload)."""
    traces = []
    for trace in trace_file.traces:
        traces.append(
            {
                "trace_id": trace.trace_id,
                "n_spans": len(trace.spans),
                "n_events": len(trace.events),
                "n_orphans": len(trace.orphans),
                "pids": trace.pids,
                "tree": [_node_dict(root) for root in trace.roots],
                "orphans": [_node_dict(node) for node in trace.orphans],
                "phases": [
                    {"name": name, "count": count, "total_s": total,
                     "mean_s": mean, "min_s": lo, "max_s": hi}
                    for name, count, total, mean, lo, hi in phase_summary(trace)
                ],
                "cells": cell_summary(trace),
                "metrics": metric_summary(trace),
                "events": event_summary(trace),
            }
        )
    return {
        "traces": traces,
        "malformed_lines": trace_file.malformed_lines,
    }
