"""Session lifecycle and the public instrumentation accessors.

One process holds at most one active observability session
(:data:`_SESSION`).  :func:`enabled` opens one — or ref-counts into the
existing one, so the outermost caller owns the sink; :func:`attach` is
the worker-side variant that joins a trace shipped across the
``ProcessPoolExecutor`` boundary as a
:class:`~repro.observe.context.TraceContext`.  Every public accessor
(:func:`span`, :func:`event`, :func:`counter`, ...) collapses to a cheap
no-op when no session is active, so instrumentation is effectively free
in production runs — the same zero-cost contract the old
``repro.profiling`` fast path had.

Single-threaded by design: the engine and each pool worker drive their
session from one thread, so the span stack is a plain list.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

from repro.observe import clock
from repro.observe.context import TraceContext, new_span_id, new_trace_id
from repro.observe.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.sinks import JsonlSink, Sink
from repro.observe.spans import NULL_SPAN, Span, SpanLike, SpanSession


class _Session(SpanSession):
    """State of one enabled block: sink, metrics, span stack."""

    def __init__(
        self,
        trace_id: str,
        base_parent: Optional[str],
        sink: Optional[Sink],
        owns_sink: bool,
    ) -> None:
        self.trace_id = trace_id
        self.base_parent = base_parent
        self.sink = sink
        self.owns_sink = owns_sink
        self.metrics = MetricsRegistry()
        self.stack: List[Span] = []
        self.depth = 1
        self.pid = os.getpid()
        """Owning process.  A forked pool worker inherits the module
        global ``_SESSION`` (and its open sink handle) from the parent;
        the pid check makes every accessor treat that copy as *no
        session*, so workers join traces only through :func:`attach`
        with their own append-mode sink."""

    def current_span_id(self) -> Optional[str]:
        return self.stack[-1].span_id if self.stack else self.base_parent

    def push(self, span: Span) -> None:
        self.stack.append(span)

    def pop(self, span: Span) -> None:
        if self.stack and self.stack[-1] is span:
            self.stack.pop()

    def emit(self, record: Dict[str, object]) -> None:
        if self.sink is not None:
            self.sink.write(record)

    def close(self) -> None:
        """Flush metric records, then release a sink this session owns."""
        for record in self.metrics.records():
            record["trace_id"] = self.trace_id
            record["pid"] = os.getpid()
            self.emit(record)
        if self.sink is not None and self.owns_sink:
            self.sink.close()


_SESSION: Optional[_Session] = None


def _active() -> Optional[_Session]:
    """The session owned by *this* process, or ``None``.

    Filters out a session inherited across ``fork`` — see
    :attr:`_Session.pid`.
    """
    session = _SESSION
    if session is None or session.pid != os.getpid():
        return None
    return session


def is_enabled() -> bool:
    """Fast path: is any observability session active in this process?"""
    return _active() is not None


@contextmanager
def enabled(
    sink: Optional[Sink] = None, jsonl_path: Optional[str] = None
) -> Iterator[None]:
    """Enable observability for the duration of the block.

    The outermost ``enabled()`` owns the session (and closes a sink it
    created from ``jsonl_path``); nested calls — e.g. the sweep engine
    enabling phase timing inside a CLI ``--trace`` session — reuse the
    outer session, and their ``sink``/``jsonl_path`` arguments are
    ignored.  With neither argument the session is *timing-only*: spans
    still measure (so ``phase_seconds`` is collected) but records are
    dropped.
    """
    global _SESSION
    if sink is not None and jsonl_path is not None:
        raise ValueError("pass sink= or jsonl_path=, not both")
    session = _active()
    if session is not None:
        session.depth += 1
        try:
            yield
        finally:
            session.depth -= 1
        return
    owns_sink = False
    if sink is None and jsonl_path is not None:
        sink = JsonlSink(jsonl_path)
        owns_sink = True
    _SESSION = _Session(new_trace_id(), None, sink, owns_sink)
    try:
        yield
    finally:
        session, _SESSION = _SESSION, None
        if session is not None:
            session.close()


@contextmanager
def attach(context: Optional[TraceContext]) -> Iterator[None]:
    """Worker-side: join the trace in ``context`` for the block.

    ``None`` (tracing was disabled at dispatch) is a no-op, as is an
    already-active session — the serial path runs jobs inside the
    originating session.  Metrics flush on every detach, so each pool
    worker job contributes its counter *delta* exactly once.
    """
    global _SESSION
    if context is None or _active() is not None:
        yield
        return
    sink: Optional[Sink] = (
        JsonlSink(context.jsonl_path, append=True)
        if context.jsonl_path
        else None
    )
    _SESSION = _Session(context.trace_id, context.span_id, sink, owns_sink=True)
    try:
        yield
    finally:
        session, _SESSION = _SESSION, None
        if session is not None:
            session.close()


def propagation_context() -> Optional[TraceContext]:
    """Picklable capsule of the current trace for pool dispatch."""
    session = _active()
    if session is None:
        return None
    path = session.sink.path if session.sink is not None else None
    return TraceContext(session.trace_id, session.current_span_id(), path)


def span(name: str, **attrs: object) -> SpanLike:
    """A new child span of the current one (the shared no-op if disabled)."""
    session = _active()
    if session is None:
        return NULL_SPAN
    return Span(session, name, dict(attrs))


def emit_span(
    name: str,
    duration_s: float,
    status: str = "ok",
    t_start: Optional[float] = None,
    **attrs: object,
) -> None:
    """Emit a span with externally measured timing (no enter/exit pair).

    The engine uses this for per-cell lifecycle spans: a timed-out or
    killed-worker job has a measured wall duration but no worker-side
    span record, yet must still appear as one node of the trace tree.
    """
    session = _active()
    if session is None or session.sink is None:
        return
    start = t_start if t_start is not None else clock.wall() - duration_s
    session.emit(
        {
            "type": "span",
            "trace_id": session.trace_id,
            "span_id": new_span_id(),
            "parent_id": session.current_span_id(),
            "name": name,
            "t_start": start,
            "duration_s": duration_s,
            "status": status,
            "pid": os.getpid(),
            "attrs": dict(attrs),
        }
    )


def event(name: str, **attrs: object) -> None:
    """Record a point-in-time event under the current span."""
    session = _active()
    if session is None or session.sink is None:
        return
    session.emit(
        {
            "type": "event",
            "trace_id": session.trace_id,
            "span_id": session.current_span_id(),
            "name": name,
            "t": clock.wall(),
            "pid": os.getpid(),
            "attrs": dict(attrs),
        }
    )


def counter(name: str) -> Counter:
    session = _active()
    return session.metrics.counter(name) if session is not None else NULL_COUNTER


def gauge(name: str) -> Gauge:
    session = _active()
    return session.metrics.gauge(name) if session is not None else NULL_GAUGE


def histogram(name: str) -> Histogram:
    session = _active()
    return (
        session.metrics.histogram(name) if session is not None else NULL_HISTOGRAM
    )


def phase_seconds(**spans: SpanLike) -> Optional[Dict[str, float]]:
    """Durations of named finished phase spans, or ``None`` when timing
    was disabled (the shape :class:`GuardbandIteration.phase_seconds`
    has always had)."""
    out: Dict[str, float] = {}
    for name, phase_span in spans.items():
        if phase_span.duration_s is None:
            return None
        out[name] = phase_span.duration_s
    return out


def total_phase_seconds(
    per_iteration: Iterable[Optional[Dict[str, float]]],
) -> Dict[str, float]:
    """Sum per-phase seconds across iteration timing dicts.

    Accepts the ``phase_seconds`` entries of a guardband history (``None``
    entries — timing disabled — are skipped) and returns one aggregate
    ``{"sta": ..., "power": ..., "thermal": ...}`` dict, the shape the
    sweep engine streams to JSONL per job.
    """
    totals: Dict[str, float] = {}
    for phases in per_iteration:
        if not phases:
            continue
        for name, seconds in phases.items():
            totals[name] = totals.get(name, 0.0) + seconds
    return totals
