"""Pluggable record sinks: where span, event and metric records go.

A sink receives flat JSON-serialisable dicts, one per finished span,
emitted event, or flushed metric.  Two implementations cover the two real
uses:

- :class:`InMemorySink` — test double; keeps records on a list with typed
  accessors so assertions read like the trace.
- :class:`JsonlSink` — line-flushed JSONL file.  The engine session opens
  it truncating (one file is one run, matching the sweep JSONL contract);
  pool workers re-open the same path in *append* mode, so every flushed
  line lands whole (``O_APPEND`` writes of a line-sized buffer are a
  single atomic syscall on POSIX) in the sweep's one trace file.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class Sink:
    """Interface: ``write`` one record dict; ``close`` when the session ends."""

    path: Optional[str] = None
    """Filesystem path workers can re-open, when the sink has one."""

    def write(self, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further writes are undefined."""


class InMemorySink(Sink):
    """Collects records on a list — the sink tests assert against."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []
        self.closed = False

    def write(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def of_type(self, record_type: str) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == record_type]

    def spans(self) -> List[Dict[str, object]]:
        return self.of_type("span")

    def events(self) -> List[Dict[str, object]]:
        return self.of_type("event")

    def metrics(self) -> List[Dict[str, object]]:
        return self.of_type("metric")


class FanoutSink(Sink):
    """Tee one record stream into several sinks.

    The sweep service uses this to feed a run's records to the JSONL
    trace file *and* to the live event bridge at once.  ``path`` is the
    first child path, so :func:`repro.observe.propagation_context` still
    hands pool workers a file they can append worker-side spans to.
    """

    def __init__(self, sinks: List[Sink]) -> None:
        if not sinks:
            raise ValueError("FanoutSink needs at least one child sink")
        self.sinks = list(sinks)
        self.path = next(
            (s.path for s in self.sinks if s.path is not None), None
        )

    def write(self, record: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.write(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class JsonlSink(Sink):
    """One JSON object per line, flushed per record.

    ``append=True`` is the worker-side mode: records join an existing
    trace file instead of truncating it.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        # The two open() calls below are one-time session-setup IO.  The
        # async-blocking rule sees them as loop-reachable only through
        # observe.enabled(jsonl_path=...), a branch the service never
        # takes (it constructs sinks off-loop and passes sink=).
        if not append:
            # Truncate: one file is one run.
            open(  # repro-lint: ignore[async-blocking] session-setup IO, off-loop
                path, "w", encoding="utf-8"
            ).close()
        # Always *write* in append mode, even for the truncating owner:
        # an O_APPEND handle has no private offset, so the engine's lines
        # and concurrently appending workers' lines can never overwrite
        # each other mid-file.
        self._handle = open(  # repro-lint: ignore[async-blocking] session-setup IO, off-loop
            path, "a", encoding="utf-8"
        )

    def write(self, record: Dict[str, object]) -> None:
        # Build the whole line first and write it in one call: concurrent
        # appenders then never interleave partial lines.
        self._handle.write(json.dumps(record, sort_keys=False) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()
