"""Hierarchical spans — the tracing primitive.

A :class:`Span` measures one named region: a wall-clock start for trace
alignment, a monotonic duration for precision, structured attributes, and
nesting — entering a span pushes it on the session's stack, so spans
opened inside parent to it, and the report CLI rebuilds the whole tree
from ``parent_id`` links alone.  One record is emitted per span at
*exit*; a span that never finishes (a killed or wedged worker) leaves no
record, and the engine's terminal events and lifecycle spans cover the
gap.

When observability is disabled, :func:`repro.observe.span` hands back the
shared :data:`NULL_SPAN`, whose methods all no-op — instrumented hot
loops pay one ``is-enabled`` check per phase, mirroring the fast path the
old ``repro.profiling`` timers had.
"""

from __future__ import annotations

import os
from types import TracebackType
from typing import Dict, Optional, Type, Union

from repro.observe import clock
from repro.observe.context import new_span_id


class Span:
    """One timed, attributed region of a trace; use as a context manager."""

    __slots__ = (
        "name", "attrs", "trace_id", "span_id", "parent_id",
        "t_start", "duration_s", "status", "_session", "_t0",
    )

    def __init__(
        self,
        session: "SpanSession",
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self._session = session
        self.name = name
        self.attrs = attrs
        self.trace_id = session.trace_id
        self.span_id = new_span_id()
        self.parent_id: Optional[str] = None
        self.t_start: Optional[float] = None
        self.duration_s: Optional[float] = None
        self.status = "ok"
        self._t0 = 0.0

    def set_attrs(self, **attrs: object) -> None:
        """Attach (or overwrite) structured attributes on the live span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.parent_id = self._session.current_span_id()
        self._session.push(self)
        self.t_start = clock.wall()
        self._t0 = clock.monotonic()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.duration_s = clock.monotonic() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error_type", exc_type.__name__)
        self._session.pop(self)
        self._session.emit(self.to_record())

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "status": self.status,
            "pid": os.getpid(),
            "attrs": self.attrs,
        }


class SpanSession:
    """The slice of session state a :class:`Span` needs (duck-typed by
    :class:`repro.observe.runtime._Session`; declared here so the two
    modules stay import-cycle free)."""

    trace_id: str

    def current_span_id(self) -> Optional[str]:
        raise NotImplementedError

    def push(self, span: Span) -> None:
        raise NotImplementedError

    def pop(self, span: Span) -> None:
        raise NotImplementedError

    def emit(self, record: Dict[str, object]) -> None:
        raise NotImplementedError


class _NullSpan:
    """Shared no-op stand-in while observability is disabled."""

    __slots__ = ()

    duration_s: Optional[float] = None
    span_id: Optional[str] = None

    def set_attrs(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


NULL_SPAN = _NullSpan()

SpanLike = Union[Span, _NullSpan]
"""What :func:`repro.observe.span` returns: a live span, or the shared
no-op when disabled."""
