"""Per-tile power model (Algorithm 1, line 5)."""

from repro.power.model import PowerBreakdown, PowerModel, tile_inventory

__all__ = ["PowerBreakdown", "PowerModel", "tile_inventory"]
