"""Per-tile power model (Algorithm 1, line 5) and voltage scaling."""

from repro.power.model import PowerBreakdown, PowerModel, tile_inventory
from repro.power.voltage import (
    FIXED_RAIL_RESOURCES,
    VDD_MIN_V,
    VDD_TOLERANCE_V,
    VoltageScaling,
    resource_delay_scale,
)

__all__ = [
    "FIXED_RAIL_RESOURCES",
    "PowerBreakdown",
    "PowerModel",
    "VDD_MIN_V",
    "VDD_TOLERANCE_V",
    "VoltageScaling",
    "resource_delay_scale",
    "tile_inventory",
]
