"""Per-tile power model.

Implements Algorithm 1 line 5: ``p = p_dyn(netlist, alpha, f) + p_lkg(T)``.

- **Dynamic** power accrues only on *used* resources: every mux a routed
  net passes through (with that net's activity), every occupied LUT, and
  the hard blocks — scaled linearly in frequency and activity from the
  characterized 100 MHz / alpha=1 base (paper Sec. IV-A).
- **Leakage** accrues on the *entire tile inventory* (an FPGA leaks in all
  its configurable resources whether used or not — the very reason the
  paper calls FPGAs "an abundance of leaky resources"), evaluated at each
  tile's own temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.activity.ace import ActivityEstimate
from repro.arch.layout import TileType
from repro.arch.params import ArchParams
from repro.cad.flow import FlowResult
from repro.coffe.characterize import T_GRID_CELSIUS
from repro.coffe.fabric import Fabric, T_MAX_CELSIUS, T_MIN_CELSIUS
from repro.netlists.netlist import BlockType
from repro.power.voltage import FIXED_RAIL_RESOURCES, VoltageScaling

RESOURCES = (
    "sb_mux", "cb_mux", "local_mux", "feedback_mux", "output_mux",
    "lut", "bram", "dsp",
)
_RES_INDEX = {name: i for i, name in enumerate(RESOURCES)}

#: True where the resource sits on the fixed (BRAM) supply rail and is
#: therefore exempt from soft-fabric voltage scaling.
_FIXED_RAIL_MASK = np.array([name in FIXED_RAIL_RESOURCES for name in RESOURCES])


def tile_inventory(arch: ArchParams, tile_type: TileType) -> Dict[str, float]:
    """Leaky resource counts of one tile (cluster + neighbouring routing).

    The CLB inventory reproduces the paper's soft-fabric tile: with Table II
    areas it sums to ~1196 um^2 (paper Sec. IV-A).  Hard-block tiles carry
    their block plus a routing interface.
    """
    sb_per_tile = arch.channel_tracks / 2.0
    if tile_type == TileType.CLB:
        return {
            "lut": float(arch.cluster_size),
            "local_mux": float(arch.cluster_size * arch.lut_size),
            "feedback_mux": float(arch.cluster_size),
            "output_mux": float(arch.cluster_size),
            "sb_mux": sb_per_tile,
            "cb_mux": float(arch.cluster_inputs),
        }
    if tile_type == TileType.BRAM:
        return {"bram": 1.0, "sb_mux": sb_per_tile, "cb_mux": 20.0}
    if tile_type == TileType.DSP:
        return {"dsp": 1.0, "sb_mux": sb_per_tile, "cb_mux": 27.0}
    if tile_type == TileType.IO:
        return {"sb_mux": sb_per_tile / 2.0, "cb_mux": 8.0}
    return {}


@dataclass
class PowerBreakdown:
    """Per-tile power split at one operating point.

    ``dynamic_w``/``leakage_w`` are ``(n_tiles,)`` vectors for one
    operating point, or ``(n_cells, n_tiles)`` arrays for a batched
    evaluation (one row per cell).  The derived totals are computed once
    per breakdown and cached — Algorithm 1's hot loop reads them several
    times per iteration, and the inputs are never mutated after
    :meth:`PowerModel.evaluate` returns.
    """

    dynamic_w: np.ndarray
    leakage_w: np.ndarray
    _total_w: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    _total_watts: Optional[float] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def total_w(self) -> np.ndarray:
        if self._total_w is None:
            self._total_w = self.dynamic_w + self.leakage_w
        return self._total_w

    @property
    def total_watts(self) -> float:
        """Whole-die total, watts (summed over every axis)."""
        if self._total_watts is None:
            self._total_watts = float(self.total_w.sum())
        return self._total_watts

    def total_watts_per_cell(self) -> np.ndarray:
        """Per-cell totals of a batched ``(n_cells, n_tiles)`` breakdown."""
        if self.total_w.ndim != 2:
            raise ValueError("per-cell totals need a batched breakdown")
        return self.total_w.sum(axis=1)


class PowerModel:
    """Evaluates the per-tile power vector for a placed-and-routed design."""

    def __init__(
        self,
        flow: FlowResult,
        fabric: Fabric,
        activity: ActivityEstimate,
    ):
        self.flow = flow
        self.fabric = fabric
        self.activity = activity
        layout = flow.layout
        self.n_tiles = layout.n_tiles

        # Leakage inventory matrix: counts[resource, tile].
        self._counts = np.zeros((len(RESOURCES), self.n_tiles))
        for tile in layout.tiles():
            index = layout.tile_index(tile.x, tile.y)
            for name, count in tile_inventory(flow.arch, tile.type).items():
                self._counts[_RES_INDEX[name], index] = count

        # Dynamic users: (tile indices, activities) per resource.
        users: Dict[str, Tuple[List[int], List[float]]] = {
            name: ([], []) for name in RESOURCES
        }

        def add(resource: str, tile: int, alpha: float) -> None:
            tiles, alphas = users[resource]
            tiles.append(tile)
            alphas.append(alpha)

        timing = flow.timing
        for net_id, elements in timing.net_power_elements.items():
            alpha = activity.of_net(net_id)
            for resource, tile in elements:
                add(resource, tile, alpha)
        for (net_id, _sink), elements in timing.sink_elements.items():
            # Intra-tile feedback/local muxes are not in net_power_elements.
            if elements and elements[0][0] == "feedback_mux":
                alpha = activity.of_net(net_id)
                for resource, tile in elements:
                    add(resource, tile, alpha)
        for block in flow.netlist.blocks:
            tile = timing.block_tile[block.id]
            if block.output_nets:
                alpha = float(
                    np.mean([activity.of_net(n) for n in block.output_nets])
                )
            elif block.input_nets:
                alpha = float(
                    np.mean([activity.of_net(n) for n in block.input_nets])
                )
            else:
                alpha = 0.0
            if block.type == BlockType.LUT:
                add("lut", tile, alpha)
            elif block.type == BlockType.BRAM:
                add("bram", tile, alpha)
            elif block.type == BlockType.DSP:
                add("dsp", tile, alpha)

        self._dyn_tiles: Dict[str, np.ndarray] = {}
        self._dyn_alphas: Dict[str, np.ndarray] = {}
        for name, (tiles, alphas) in users.items():
            self._dyn_tiles[name] = np.asarray(tiles, dtype=int)
            self._dyn_alphas[name] = np.asarray(alphas)

        # Activity matrix: alpha_sum[resource, tile] = total switching
        # activity of that resource's users on that tile.  Dynamic power at
        # any frequency is then one matrix product (hot-loop fast path).
        self._alpha_matrix = np.zeros((len(RESOURCES), self.n_tiles))
        for i, name in enumerate(RESOURCES):
            tiles = self._dyn_tiles[name]
            if len(tiles):
                np.add.at(self._alpha_matrix[i], tiles, self._dyn_alphas[name])
        # Per-instance dynamic power at the characterized base point.
        self._pdyn_base = np.array(
            [self.fabric.dynamic_power_w(name, 1.0, 1.0) for name in RESOURCES]
        )
        # Resources with a non-zero leakage inventory anywhere on the die.
        self._leaky_rows = [
            i for i in range(len(RESOURCES)) if self._counts[i].any()
        ]
        # Per-tile leakage table: _leak_table[tile, k] = total leakage of
        # the tile's inventory at characterization-grid temperature k, so
        # leakage at arbitrary per-tile temperatures is one gathered linear
        # interpolation.  Only valid on the canonical 1 degC uniform grid.
        chars = [fabric.resources[name] for name in RESOURCES]
        if all(
            c.t_grid_celsius.shape == T_GRID_CELSIUS.shape
            and np.array_equal(c.t_grid_celsius, T_GRID_CELSIUS)
            for c in chars
        ):
            self._leak_table = self._counts.T @ np.vstack(
                [c.leakage_w for c in chars]
            )
        else:
            self._leak_table = None
        # Rail-split leakage tables for voltage scaling, built lazily by
        # _split_leak_tables(): (scaled soft-fabric rail, fixed BRAM rail).
        self._leak_split: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- evaluation ----------------------------------------------------------

    def dynamic_power(self, frequency_hz: float) -> np.ndarray:
        """Per-tile dynamic power at the given clock frequency, watts."""
        if frequency_hz < 0.0:
            raise ValueError(f"negative frequency: {frequency_hz}")
        return (self._pdyn_base * frequency_hz) @ self._alpha_matrix

    def dynamic_power_batch(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Per-tile dynamic power for a vector of clocks: ``(n_cells, n_tiles)``.

        Row ``c`` equals ``dynamic_power(frequencies_hz[c])`` up to BLAS
        summation order — the whole batch is one matrix product.
        """
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        if frequencies_hz.ndim != 1:
            raise ValueError(
                f"frequencies must be a 1-D vector, got shape "
                f"{frequencies_hz.shape}"
            )
        if np.any(frequencies_hz < 0.0):
            raise ValueError("negative frequency in batch")
        scaled = frequencies_hz[:, None] * self._pdyn_base[None, :]
        return scaled @ self._alpha_matrix

    def dynamic_power_reference(self, frequency_hz: float) -> np.ndarray:
        """Seed per-resource-loop dynamic power (see repro.core.reference)."""
        if frequency_hz < 0.0:
            raise ValueError(f"negative frequency: {frequency_hz}")
        out = np.zeros(self.n_tiles)
        for name in RESOURCES:
            tiles = self._dyn_tiles[name]
            if len(tiles) == 0:
                continue
            base = self.fabric.dynamic_power_w(name, frequency_hz, 1.0)
            np.add.at(out, tiles, base * self._dyn_alphas[name])
        return out

    def _check_temps(self, t_tiles) -> np.ndarray:
        t_tiles = np.asarray(t_tiles, dtype=float)
        if t_tiles.ndim == 0:
            t_tiles = np.full(self.n_tiles, float(t_tiles))
        if len(t_tiles) != self.n_tiles:
            raise ValueError(
                f"temperature vector has {len(t_tiles)} entries, need "
                f"{self.n_tiles}"
            )
        return t_tiles

    def leakage_power(self, t_tiles: np.ndarray) -> np.ndarray:
        """Per-tile leakage power for a per-tile temperature vector, watts."""
        t_tiles = self._check_temps(t_tiles)
        if self._leak_table is not None:
            table = self._leak_table
            t = np.clip(t_tiles, T_MIN_CELSIUS, T_MAX_CELSIUS)
            i0 = t.astype(np.intp)
            frac = t - i0
            i1 = np.minimum(i0 + 1, table.shape[1] - 1)
            rows = np.arange(self.n_tiles)
            return table[rows, i0] * (1.0 - frac) + table[rows, i1] * frac
        if not self._leaky_rows:
            return np.zeros(self.n_tiles)
        leaks = np.stack(
            [
                np.asarray(self.fabric.leakage_w(RESOURCES[i], t_tiles))
                for i in self._leaky_rows
            ]
        )
        return np.einsum("rt,rt->t", self._counts[self._leaky_rows], leaks)

    def leakage_power_batch(self, t_batch: np.ndarray) -> np.ndarray:
        """Per-tile leakage for an ``(n_cells, n_tiles)`` temperature batch.

        One gathered linear interpolation over all cells on the canonical
        grid; row ``c`` is bit-identical to ``leakage_power(t_batch[c])``.
        """
        t_batch = np.asarray(t_batch, dtype=float)
        if t_batch.ndim != 2 or t_batch.shape[1] != self.n_tiles:
            raise ValueError(
                f"temperature batch shape {t_batch.shape} != "
                f"(n_cells, {self.n_tiles})"
            )
        if self._leak_table is not None:
            table = self._leak_table
            t = np.clip(t_batch, T_MIN_CELSIUS, T_MAX_CELSIUS)
            i0 = t.astype(np.intp)
            frac = t - i0
            i1 = np.minimum(i0 + 1, table.shape[1] - 1)
            rows = np.arange(self.n_tiles)
            return table[rows, i0] * (1.0 - frac) + table[rows, i1] * frac
        return np.stack([self.leakage_power(t) for t in t_batch])

    def leakage_power_reference(self, t_tiles: np.ndarray) -> np.ndarray:
        """Seed per-resource-loop leakage power (see repro.core.reference)."""
        t_tiles = self._check_temps(t_tiles)
        out = np.zeros(self.n_tiles)
        for i, name in enumerate(RESOURCES):
            counts = self._counts[i]
            if not counts.any():
                continue
            out += counts * np.asarray(self.fabric.leakage_w(name, t_tiles))
        return out

    def evaluate(
        self, frequency_hz: float, t_tiles: np.ndarray
    ) -> PowerBreakdown:
        """Full per-tile power at one operating point (Algorithm 1 line 5)."""
        return PowerBreakdown(
            dynamic_w=self.dynamic_power(frequency_hz),
            leakage_w=self.leakage_power(t_tiles),
        )

    def evaluate_batch(
        self, frequencies_hz: np.ndarray, t_batch: np.ndarray
    ) -> PowerBreakdown:
        """Batched Algorithm 1 line 5: one breakdown row per sweep cell.

        ``frequencies_hz`` is ``(n_cells,)`` and ``t_batch`` is
        ``(n_cells, n_tiles)``; the returned breakdown holds
        ``(n_cells, n_tiles)`` arrays.
        """
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        t_batch = np.asarray(t_batch, dtype=float)
        if frequencies_hz.shape != (t_batch.shape[0],):
            raise ValueError(
                f"frequency vector shape {frequencies_hz.shape} does not "
                f"match the {t_batch.shape[0]}-row temperature batch"
            )
        return PowerBreakdown(
            dynamic_w=self.dynamic_power_batch(frequencies_hz),
            leakage_w=self.leakage_power_batch(t_batch),
        )

    # -- voltage-scaled evaluation (energy-mode objective) -------------------

    def _split_leak_tables(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Per-tile leakage tables split by supply rail, lazily built.

        Returns ``(scaled, fixed)`` — each ``(n_tiles, n_grid)`` like
        ``_leak_table`` — where ``scaled`` sums the soft-fabric-rail
        inventory (subject to voltage scaling) and ``fixed`` the BRAM-rail
        inventory (exempt).  ``scaled + fixed == _leak_table`` exactly.
        ``None`` off the canonical characterization grid.
        """
        if self._leak_table is None:
            return None
        if self._leak_split is None:
            chars = [self.fabric.resources[name] for name in RESOURCES]
            rows = np.vstack([c.leakage_w for c in chars])
            scaled_counts = np.where(
                _FIXED_RAIL_MASK[:, None], 0.0, self._counts
            )
            fixed_counts = self._counts - scaled_counts
            self._leak_split = (
                scaled_counts.T @ rows,
                fixed_counts.T @ rows,
            )
        return self._leak_split

    @staticmethod
    def _leak_lerp(table: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Gathered per-tile lerp of a ``(n_tiles, n_grid)`` leakage table.

        ``t`` is ``(n_tiles,)`` or ``(n_cells, n_tiles)``; the tile axis
        of ``t`` indexes the table rows either way.
        """
        t = np.clip(t, T_MIN_CELSIUS, T_MAX_CELSIUS)
        i0 = t.astype(np.intp)
        frac = t - i0
        i1 = np.minimum(i0 + 1, table.shape[1] - 1)
        rows = np.arange(table.shape[0])
        return table[rows, i0] * (1.0 - frac) + table[rows, i1] * frac

    def leakage_power_scaled(
        self, t_tiles: np.ndarray, scale_tiles: np.ndarray
    ) -> np.ndarray:
        """Per-tile leakage with soft-fabric-rail scale factors applied.

        ``scale_tiles`` multiplies only the scaled-rail inventory; the
        BRAM rail contributes unscaled.  ``scale_tiles == 1`` reproduces
        :meth:`leakage_power` up to summation order.  Accepts batched
        ``(n_cells, n_tiles)`` inputs symmetrically.
        """
        t = np.asarray(t_tiles, dtype=float)
        scale_tiles = np.asarray(scale_tiles, dtype=float)
        split = self._split_leak_tables()
        if split is not None:
            scaled_table, fixed_table = split
            return (
                self._leak_lerp(scaled_table, t) * scale_tiles
                + self._leak_lerp(fixed_table, t)
            )
        if t.ndim == 2:
            return np.stack(
                [
                    self.leakage_power_scaled(row, scale)
                    for row, scale in zip(t, scale_tiles)
                ]
            )
        out = np.zeros(self.n_tiles)
        for i, name in enumerate(RESOURCES):
            counts = self._counts[i]
            if not counts.any():
                continue
            leak = counts * np.asarray(self.fabric.leakage_w(name, t))
            out += leak if _FIXED_RAIL_MASK[i] else leak * scale_tiles
        return out

    def evaluate_at_voltage(
        self,
        frequency_hz: float,
        t_tiles: np.ndarray,
        scaling: VoltageScaling,
        vdd: float,
    ) -> PowerBreakdown:
        """Per-tile power at a scaled soft-fabric supply (energy mode).

        Dynamic power picks up ``(vdd / vdd_nominal)^2`` on every
        scaled-rail resource; leakage picks up the temperature-dependent
        ``V * I_leak`` ratio per tile.  BRAM-rail contributions are exempt
        (see :mod:`repro.power.voltage`).  At ``vdd == vdd_nominal`` both
        factors are identically 1.
        """
        if frequency_hz < 0.0:
            raise ValueError(f"negative frequency: {frequency_hz}")
        t_tiles = self._check_temps(t_tiles)
        res_scale = np.where(
            _FIXED_RAIL_MASK, 1.0, scaling.dynamic_scale(vdd)
        )
        dynamic = (self._pdyn_base * frequency_hz * res_scale) @ self._alpha_matrix
        leakage = self.leakage_power_scaled(
            t_tiles, scaling.leakage_scale_tiles(vdd, t_tiles)
        )
        return PowerBreakdown(dynamic_w=dynamic, leakage_w=leakage)

    def evaluate_at_voltage_batch(
        self,
        frequencies_hz: np.ndarray,
        t_batch: np.ndarray,
        scaling: VoltageScaling,
        vdds: np.ndarray,
    ) -> PowerBreakdown:
        """Batched :meth:`evaluate_at_voltage` with per-cell supplies."""
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        t_batch = np.asarray(t_batch, dtype=float)
        vdds = np.asarray(vdds, dtype=float)
        if frequencies_hz.shape != (t_batch.shape[0],):
            raise ValueError(
                f"frequency vector shape {frequencies_hz.shape} does not "
                f"match the {t_batch.shape[0]}-row temperature batch"
            )
        if vdds.shape != (t_batch.shape[0],):
            raise ValueError(
                f"supply vector shape {vdds.shape} does not match the "
                f"{t_batch.shape[0]}-row temperature batch"
            )
        if np.any(frequencies_hz < 0.0):
            raise ValueError("negative frequency in batch")
        dyn_scales = np.array([scaling.dynamic_scale(v) for v in vdds])
        res_scale = np.where(
            _FIXED_RAIL_MASK[None, :], 1.0, dyn_scales[:, None]
        )
        dynamic = (
            frequencies_hz[:, None] * self._pdyn_base[None, :] * res_scale
        ) @ self._alpha_matrix
        leakage = self.leakage_power_scaled(
            t_batch, scaling.leakage_scale_cells(vdds, t_batch)
        )
        return PowerBreakdown(dynamic_w=dynamic, leakage_w=leakage)
