"""Supply-voltage scaling for the energy-mode objective.

The energy objective (arXiv:1911.07187, ROADMAP item 3) trades the
reclaimed thermal margin for a *lower supply* at iso-frequency, so the
delay and leakage models must be re-evaluated at every trial VDD.  This
module turns the scalar alpha-power-law device equations of
:mod:`repro.spice.devices` into cheap per-tile scale factors:

- **delay** scales with the switching resistance ratio
  ``(Rn(V, T) + Rp(V, T)) / (Rn(V0, T) + Rp(V0, T))`` of the HP device
  pair — the same ``Reff`` abstraction every characterized fabric delay
  was built from, so one multiplicative factor per (resource, tile)
  entry is exact up to the sizing constants, which cancel in the ratio;
- **dynamic** power scales as ``(V / V0)^2`` (CV^2f);
- **leakage** power scales as ``V * I_leak(V, T)`` relative to nominal.

All three are precomputed on the canonical 0..100 C characterization
grid once per trial voltage (the scalar device math is far too slow to
run per tile per iteration) and linearly interpolated at the per-tile
temperatures, mirroring the delay/leakage table lerps of the frequency
path.  Tables are cached per voltage because bisection revisits trial
supplies across sweep cells.

**BRAM rail exemption:** the BRAM core runs on its own boosted
``VDD_LOW_POWER`` rail (paper Table I), which voltage scaling of the
soft-fabric rail does not touch — BRAM delay, dynamic and leakage
contributions therefore stay unscaled (see ``FIXED_RAIL_RESOURCES``).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.coffe.characterize import RESOURCE_NAMES, T_GRID_CELSIUS
from repro.coffe.fabric import T_MAX_CELSIUS, T_MIN_CELSIUS
from repro.spice.devices import effective_resistance, leakage_current
from repro.technology.ptm22 import HP_NMOS, HP_PMOS, VDD_NOMINAL
from repro.technology.temperature import celsius_to_kelvin

VDD_MIN_V = 0.55
"""Floor of the energy-mode bisection window, volts.  Below ~0.55 V the
HP devices (Vth0 = 0.32 V) lose most of their overdrive and the
alpha-power model leaves its calibrated regime; the closing voltage is
clamped here rather than extrapolated."""

VDD_TOLERANCE_V = 0.005
"""Bisection convergence width, volts: the reported closing VDD is
within this of the true timing-closure boundary."""

FIXED_RAIL_RESOURCES = frozenset({"bram"})
"""Resources on the separate ``VDD_LOW_POWER`` rail, exempt from
soft-fabric voltage scaling."""

#: Per-resource selector in RESOURCE_NAMES order: 1.0 where the resource
#: rides the scaled soft-fabric rail, 0.0 on the fixed BRAM rail.
_SCALED_SEL = np.array(
    [0.0 if name in FIXED_RAIL_RESOURCES else 1.0 for name in RESOURCE_NAMES]
)


def resource_delay_scale(tile_scale: np.ndarray) -> np.ndarray:
    """Expand per-tile delay scales to the STA's per-resource layout.

    ``tile_scale`` is ``(n_tiles,)`` (or ``(n_cells, n_tiles)`` for a
    batch); the result gains a resource axis —
    ``(..., n_resources, n_tiles)`` in ``RESOURCE_NAMES`` order — with
    fixed-rail rows pinned at exactly 1.0, ready for the ``delay_scale``
    parameter of :meth:`repro.cad.timing.TimingAnalyzer.critical_path`.
    """
    tile_scale = np.asarray(tile_scale, dtype=float)
    return 1.0 + _SCALED_SEL[:, None] * (tile_scale[..., None, :] - 1.0)


def _lerp_grid(table: np.ndarray, t_celsius: np.ndarray) -> np.ndarray:
    """Interpolate a ``(101,)`` canonical-grid table at given temperatures."""
    t = np.clip(t_celsius, T_MIN_CELSIUS, T_MAX_CELSIUS)
    i0 = t.astype(np.intp)
    frac = t - i0
    i1 = np.minimum(i0 + 1, table.shape[0] - 1)
    return table[i0] * (1.0 - frac) + table[i1] * frac


class VoltageScaling:
    """Delay/power scale factors of the soft-fabric rail vs nominal VDD.

    One instance per energy-mode run; the per-voltage grid tables are
    cached on the instance, so a bisection that revisits a trial supply
    pays the scalar device math only once.
    """

    def __init__(self, vdd_nominal: float = VDD_NOMINAL) -> None:
        if not (0.0 < vdd_nominal < 2.0):
            raise ValueError(f"implausible nominal VDD: {vdd_nominal}")
        self.vdd_nominal = float(vdd_nominal)
        self._delay_tables: Dict[float, np.ndarray] = {}
        self._leak_tables: Dict[float, np.ndarray] = {}
        self._r_nominal = self._resistance_curve(self.vdd_nominal)
        self._vi_nominal = self._leakage_curve(self.vdd_nominal)

    @staticmethod
    def _check_vdd(vdd: float) -> float:
        vdd = float(vdd)
        if not (0.0 < vdd < 2.0):
            raise ValueError(f"implausible trial VDD: {vdd}")
        return vdd

    @staticmethod
    def _resistance_curve(vdd: float) -> np.ndarray:
        """HP pair switching resistance over the canonical grid, ohms."""
        return np.array(
            [
                effective_resistance(HP_NMOS, vdd, 1.0, celsius_to_kelvin(t))
                + effective_resistance(HP_PMOS, vdd, 1.0, celsius_to_kelvin(t))
                for t in T_GRID_CELSIUS
            ]
        )

    @staticmethod
    def _leakage_curve(vdd: float) -> np.ndarray:
        """HP pair static leakage *power* (V * I) over the grid, watts."""
        return vdd * np.array(
            [
                leakage_current(HP_NMOS, vdd, 1.0, celsius_to_kelvin(t))
                + leakage_current(HP_PMOS, vdd, 1.0, celsius_to_kelvin(t))
                for t in T_GRID_CELSIUS
            ]
        )

    # -- scale tables --------------------------------------------------------

    def delay_scale_table(self, vdd: float) -> np.ndarray:
        """``(101,)`` delay multiplier vs temperature at one trial supply."""
        vdd = self._check_vdd(vdd)
        table = self._delay_tables.get(vdd)
        if table is None:
            table = self._resistance_curve(vdd) / self._r_nominal
            self._delay_tables[vdd] = table
        return table

    def leakage_scale_table(self, vdd: float) -> np.ndarray:
        """``(101,)`` leakage-power multiplier vs temperature at one supply."""
        vdd = self._check_vdd(vdd)
        table = self._leak_tables.get(vdd)
        if table is None:
            table = self._leakage_curve(vdd) / self._vi_nominal
            self._leak_tables[vdd] = table
        return table

    def dynamic_scale(self, vdd: float) -> float:
        """CV^2f dynamic-power multiplier at one trial supply."""
        vdd = self._check_vdd(vdd)
        return (vdd / self.vdd_nominal) ** 2

    # -- per-tile evaluation -------------------------------------------------

    def delay_scale_tiles(self, vdd: float, t_tiles: np.ndarray) -> np.ndarray:
        """Per-tile delay multipliers at the tiles' own temperatures."""
        return _lerp_grid(self.delay_scale_table(vdd), np.asarray(t_tiles))

    def leakage_scale_tiles(
        self, vdd: float, t_tiles: np.ndarray
    ) -> np.ndarray:
        """Per-tile leakage-power multipliers at the tiles' temperatures."""
        return _lerp_grid(self.leakage_scale_table(vdd), np.asarray(t_tiles))

    def delay_scale_cells(
        self, vdds: np.ndarray, t_batch: np.ndarray
    ) -> np.ndarray:
        """``(n_cells, n_tiles)`` delay multipliers for per-cell supplies."""
        return self._cells(self.delay_scale_table, vdds, t_batch)

    def leakage_scale_cells(
        self, vdds: np.ndarray, t_batch: np.ndarray
    ) -> np.ndarray:
        """``(n_cells, n_tiles)`` leakage multipliers for per-cell supplies."""
        return self._cells(self.leakage_scale_table, vdds, t_batch)

    def _cells(
        self,
        table_of: Callable[[float], np.ndarray],
        vdds: np.ndarray,
        t_batch: np.ndarray,
    ) -> np.ndarray:
        t_batch = np.asarray(t_batch, dtype=float)
        vdds = np.asarray(vdds, dtype=float)
        if t_batch.ndim != 2 or vdds.shape != (t_batch.shape[0],):
            raise ValueError(
                f"per-cell supplies {vdds.shape} do not match the "
                f"{t_batch.shape} temperature batch"
            )
        return np.stack(
            [
                _lerp_grid(table_of(float(vdd)), t_batch[c])
                for c, vdd in enumerate(vdds)
            ]
        )

    def scale_summary(self, vdd: float) -> Tuple[float, float, float]:
        """(delay, dynamic, leakage) multipliers at 25 C — for reporting."""
        return (
            float(self.delay_scale_table(vdd)[25]),
            self.dynamic_scale(vdd),
            float(self.leakage_scale_table(vdd)[25]),
        )
