"""Deprecated phase-timer shim over :mod:`repro.observe`.

``repro.profiling`` predates the unified observability subsystem; its
opt-in phase timers are now derived from :mod:`repro.observe` spans.  The
historical shapes keep working — :func:`enabled` (now with a
``DeprecationWarning``), :func:`is_enabled`, :func:`iteration_timings`
and the ``phase_seconds`` dicts it produces — but new code should use
``repro.observe`` directly::

    from repro import observe, thermal_aware_guardband

    with observe.enabled():
        result = thermal_aware_guardband(flow, fabric, t_ambient=25.0)
    for it in result.history:
        print(it.phase_seconds)   # {"sta": ..., "power": ..., "thermal": ...}

This module (together with ``repro/observe/``) is the only place outside
the observability subsystem allowed to touch clocks — see the
``determinism`` rule in :mod:`repro.analysis`.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro import observe

#: Re-exported for callers that imported the aggregate helper from here.
total_phase_seconds = observe.total_phase_seconds


def _deprecated(api: str) -> None:
    warnings.warn(
        f"repro.profiling.{api} is deprecated; use repro.observe instead",
        DeprecationWarning,
        stacklevel=3,
    )


@contextmanager
def enabled() -> Iterator[None]:
    """Deprecated spelling of :func:`repro.observe.enabled` (timing-only)."""
    _deprecated("enabled()")
    with observe.enabled():
        yield


def is_enabled() -> bool:
    return observe.is_enabled()


class PhaseTimings:
    """Accumulates seconds per named phase, one observe span per enter."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        with observe.span(f"phase.{name}") as phase_span:
            yield
        if phase_span.duration_s is not None:
            self.seconds[name] = (
                self.seconds.get(name, 0.0) + phase_span.duration_s
            )

    def as_dict(self) -> Optional[Dict[str, float]]:
        return dict(self.seconds)


class _NullTimings:
    """No-op stand-in used when observability is disabled."""

    __slots__ = ()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def as_dict(self) -> Optional[Dict[str, float]]:
        return None


_NULL = _NullTimings()


def iteration_timings():
    """A fresh collector when observability is enabled, else a shared no-op."""
    return PhaseTimings() if observe.is_enabled() else _NULL
