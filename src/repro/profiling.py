"""Opt-in phase timers for the Algorithm 1 hot loop.

Profiling is **off by default** so the guardband loop pays only a cheap
no-op context per phase.  Enable it around any code that runs Algorithm 1
and each :class:`~repro.core.guardband.GuardbandIteration` in the result
history carries a ``phase_seconds`` dict::

    from repro import profiling, thermal_aware_guardband

    with profiling.enabled():
        result = thermal_aware_guardband(flow, fabric, t_ambient=25.0)
    for it in result.history:
        print(it.phase_seconds)   # {"sta": ..., "power": ..., "thermal": ...}

Future PRs can use this to see where iteration time goes without paying
for instrumentation in production runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Optional

_depth = 0


def total_phase_seconds(
    per_iteration: Iterable[Optional[Dict[str, float]]],
) -> Dict[str, float]:
    """Sum per-phase seconds across iteration timing dicts.

    Accepts the ``phase_seconds`` entries of a guardband history (``None``
    entries — profiling disabled — are skipped) and returns one aggregate
    ``{"sta": ..., "power": ..., "thermal": ...}`` dict, the shape the sweep
    engine streams to JSONL per job.
    """
    totals: Dict[str, float] = {}
    for phases in per_iteration:
        if not phases:
            continue
        for name, seconds in phases.items():
            totals[name] = totals.get(name, 0.0) + seconds
    return totals


@contextmanager
def enabled() -> Iterator[None]:
    """Turn on phase-timing collection for the duration of the block."""
    global _depth
    _depth += 1
    try:
        yield
    finally:
        _depth -= 1


def is_enabled() -> bool:
    return _depth > 0


class PhaseTimings:
    """Accumulates wall-clock seconds per named phase."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def as_dict(self) -> Optional[Dict[str, float]]:
        return dict(self.seconds)


class _NullTimings:
    """No-op stand-in used when profiling is disabled."""

    __slots__ = ()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def as_dict(self) -> Optional[Dict[str, float]]:
        return None


_NULL = _NullTimings()


def iteration_timings():
    """A fresh collector when profiling is enabled, else a shared no-op."""
    return PhaseTimings() if is_enabled() else _NULL
