"""Plain-text tables, series and sweep renderers for the harnesses."""

from repro.reporting.tables import format_table
from repro.reporting.figures import format_bar_chart, format_series
from repro.reporting.heatmap import format_heatmap
from repro.reporting.sweep import format_sweep_gains_chart, format_sweep_table

__all__ = [
    "format_bar_chart",
    "format_heatmap",
    "format_series",
    "format_sweep_gains_chart",
    "format_sweep_table",
    "format_table",
]
