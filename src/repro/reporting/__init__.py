"""Plain-text tables, series and sweep renderers for the harnesses."""

from repro.reporting.tables import format_table
from repro.reporting.figures import format_bar_chart, format_series
from repro.reporting.heatmap import (
    format_density_map,
    format_heatmap,
    format_heatmap_pair,
)
from repro.reporting.sweep import format_sweep_gains_chart, format_sweep_table

__all__ = [
    "format_bar_chart",
    "format_density_map",
    "format_heatmap",
    "format_heatmap_pair",
    "format_series",
    "format_sweep_gains_chart",
    "format_sweep_table",
    "format_table",
]
