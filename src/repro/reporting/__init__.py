"""Plain-text tables and series used by the benchmark harness."""

from repro.reporting.tables import format_table
from repro.reporting.figures import format_bar_chart, format_series
from repro.reporting.heatmap import format_heatmap

__all__ = ["format_bar_chart", "format_heatmap", "format_series", "format_table"]
