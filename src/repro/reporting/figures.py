"""ASCII renderings of the paper's figures (bar charts and series)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    unit: str = "%",
    width: int = 46,
) -> str:
    """Horizontal bar chart, one row per label (paper Figs. 6-8 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:6.1f}{unit}")
    return "\n".join(lines)


def format_series(
    x_values: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    title: str = "",
    x_label: str = "T (C)",
    fmt: str = "{:9.3f}",
) -> str:
    """Column-per-series table of y(x) (paper Figs. 1 and 3 style)."""
    lines: List[str] = [title] if title else []
    header = f"{x_label:>8s} " + " ".join(f"{name:>9s}" for name, _ in series)
    lines.append(header)
    for i, x in enumerate(x_values):
        row = f"{x:8.1f} " + " ".join(
            fmt.format(values[i]) for _, values in series
        )
        lines.append(row)
    return "\n".join(lines)
