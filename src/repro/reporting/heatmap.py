"""ASCII heatmaps of per-tile quantities (temperature, power)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.layout import FabricLayout

SHADES = " .:-=+*#%@"
"""Ten intensity levels, cold to hot."""


def format_heatmap(
    layout: FabricLayout,
    values: np.ndarray,
    title: str = "",
    legend_unit: str = "C",
    v_min: Optional[float] = None,
    v_max: Optional[float] = None,
) -> str:
    """Render a per-tile vector as an ASCII die map (row 0 at the bottom).

    Useful for eyeballing the thermal profile Algorithm 1 converges to, or
    the dynamic-power concentration of a placed design.
    """
    values = np.asarray(values, dtype=float)
    if values.shape != (layout.n_tiles,):
        raise ValueError(
            f"value vector shape {values.shape} != ({layout.n_tiles},)"
        )
    lo = float(values.min()) if v_min is None else v_min
    hi = float(values.max()) if v_max is None else v_max
    span = max(hi - lo, 1e-12)

    rows: List[str] = [title] if title else []
    for y in reversed(range(layout.height)):
        cells = []
        for x in range(layout.width):
            v = values[layout.tile_index(x, y)]
            level = int((v - lo) / span * (len(SHADES) - 1) + 0.5)
            level = min(max(level, 0), len(SHADES) - 1)
            cells.append(SHADES[level])
        rows.append("".join(cells))
    rows.append(
        f"[{SHADES[0]}]={lo:.2f}{legend_unit}  [{SHADES[-1]}]={hi:.2f}{legend_unit}"
    )
    return "\n".join(rows)


def format_heatmap_pair(
    layout: FabricLayout,
    left: np.ndarray,
    right: np.ndarray,
    left_title: str = "left",
    right_title: str = "right",
    legend_unit: str = "C",
    gap: int = 4,
) -> str:
    """Two per-tile maps side by side on one shared colour scale.

    The shared scale is what makes the comparison honest: the same shade
    means the same value in both maps, so a flattened hotspot is visible
    as a lighter peak rather than hidden by per-map renormalisation.
    Used by the thermal-placement ablation to contrast the converged
    temperature maps of thermal-aware vs timing-only placements.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    lo = float(min(left.min(), right.min()))
    hi = float(max(left.max(), right.max()))
    left_text = format_heatmap(
        layout, left, title=left_title, legend_unit=legend_unit,
        v_min=lo, v_max=hi,
    )
    right_text = format_heatmap(
        layout, right, title=right_title, legend_unit=legend_unit,
        v_min=lo, v_max=hi,
    )
    left_lines = left_text.splitlines()
    right_lines = right_text.splitlines()
    width = max(len(line) for line in left_lines)
    spacer = " " * gap
    return "\n".join(
        f"{a:<{width}}{spacer}{b}".rstrip()
        for a, b in zip(left_lines, right_lines)
    )


def format_density_map(
    layout: FabricLayout,
    placed_density: np.ndarray,
    title: str = "power density",
) -> str:
    """Per-tile power-density rendering of one placement.

    ``placed_density`` is the relative density vector of
    :func:`repro.cad.thermal_place.density_vector` — the quantity the
    thermal-aware anneal actually spreads and penalises — so this map
    shows *why* the converged temperature map looks the way it does.
    """
    return format_heatmap(
        layout, placed_density, title=title, legend_unit=" (rel)"
    )
