"""ASCII heatmaps of per-tile quantities (temperature, power)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.layout import FabricLayout

SHADES = " .:-=+*#%@"
"""Ten intensity levels, cold to hot."""


def format_heatmap(
    layout: FabricLayout,
    values: np.ndarray,
    title: str = "",
    legend_unit: str = "C",
    v_min: Optional[float] = None,
    v_max: Optional[float] = None,
) -> str:
    """Render a per-tile vector as an ASCII die map (row 0 at the bottom).

    Useful for eyeballing the thermal profile Algorithm 1 converges to, or
    the dynamic-power concentration of a placed design.
    """
    values = np.asarray(values, dtype=float)
    if values.shape != (layout.n_tiles,):
        raise ValueError(
            f"value vector shape {values.shape} != ({layout.n_tiles},)"
        )
    lo = float(values.min()) if v_min is None else v_min
    hi = float(values.max()) if v_max is None else v_max
    span = max(hi - lo, 1e-12)

    rows: List[str] = [title] if title else []
    for y in reversed(range(layout.height)):
        cells = []
        for x in range(layout.width):
            v = values[layout.tile_index(x, y)]
            level = int((v - lo) / span * (len(SHADES) - 1) + 0.5)
            level = min(max(level, 0), len(SHADES) - 1)
            cells.append(SHADES[level])
        rows.append("".join(cells))
    rows.append(
        f"[{SHADES[0]}]={lo:.2f}{legend_unit}  [{SHADES[-1]}]={hi:.2f}{legend_unit}"
    )
    return "\n".join(rows)
