"""Renderers for :class:`~repro.runner.results.SweepResult`.

The engine's aggregate result maps directly onto the paper's evaluation
artifacts: a Figs. 6-7 style bar chart of per-benchmark gains at one
operating point, and a cell-per-row table over the whole grid (with
failed cells shown inline rather than silently dropped).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.reporting.figures import format_bar_chart
from repro.reporting.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports core)
    from repro.runner.results import SweepResult


def format_sweep_table(sweep: "SweepResult", title: str = "") -> str:
    """One row per grid cell, successes and failures interleaved."""
    rows: List[Tuple[object, ...]] = []
    for r in sweep.results:
        rows.append(
            (
                r.benchmark,
                f"{r.t_ambient:g}",
                f"D{r.corner:g}",
                f"{r.frequency_hz / 1e6:.1f}",
                f"{r.gain * 100:.1f}%",
                r.iterations,
                f"{r.max_tile_celsius:.1f}",
                f"{r.wall_seconds:.2f}",
            )
        )
    for f in sweep.failures:
        rows.append(
            (
                f.benchmark,
                f"{f.t_ambient:g}",
                f"D{f.corner:g}",
                f"FAILED ({f.error_type})",
                "-",
                "-",
                "-",
                f"{f.wall_seconds:.2f}",
            )
        )
    resumed = f", {sweep.n_resumed} resumed" if sweep.n_resumed else ""
    header = title or (
        f"sweep: {len(sweep.results)}/{sweep.n_jobs} cells ok{resumed}, "
        f"{sweep.workers} worker(s), {sweep.wall_seconds:.1f}s"
    )
    return format_table(
        ["benchmark", "Tamb (C)", "corner", "f (MHz)", "gain",
         "iters", "Tmax (C)", "wall (s)"],
        rows,
        title=header,
    )


def format_sweep_energy_table(sweep: "SweepResult", title: str = "") -> str:
    """Energy-mode cells: closing supply and savings vs nominal.

    Frequency-mode cells are omitted — they carry no energy report; at
    iso-frequency the power saving fraction *is* the energy-per-cycle
    saving, so one column serves both readings.
    """
    rows: List[Tuple[object, ...]] = []
    for r in sweep.results:
        if r.mode != "energy":
            continue
        rows.append(
            (
                r.benchmark,
                f"{r.t_ambient:g}",
                f"D{r.corner:g}",
                f"{r.frequency_hz / 1e6:.1f}",
                f"{r.vdd_v:.3f}" if r.vdd_v is not None else "-",
                f"{r.total_power_w * 1e3:.2f}",
                (
                    f"{r.energy_per_cycle_j * 1e12:.2f}"
                    if r.energy_per_cycle_j is not None
                    else "-"
                ),
                (
                    f"{r.energy_saving * 100:.1f}%"
                    if r.energy_saving is not None
                    else "-"
                ),
            )
        )
    header = title or (
        f"energy mode: {len(rows)} cell(s) closed below nominal supply"
    )
    return format_table(
        ["benchmark", "Tamb (C)", "corner", "f target (MHz)", "VDD (V)",
         "P (mW)", "E/cycle (pJ)", "saving"],
        rows,
        title=header,
    )


def format_sweep_gains_chart(
    sweep: "SweepResult",
    t_ambient: Optional[float] = None,
    corner: Optional[float] = None,
    title: str = "",
) -> str:
    """Figs. 6-7 style per-benchmark gain bars for one grid slice."""
    picked = [
        r
        for r in sweep.results
        if (t_ambient is None or r.t_ambient == t_ambient)
        and (corner is None or r.corner == corner)
    ]
    labels = [r.benchmark for r in picked]
    values = [r.gain * 100 for r in picked]
    if values:
        labels.append("average")
        values.append(sum(values) / len(values))
    return format_bar_chart(labels, values, title=title)
