"""Fixed-width plain-text table formatting for bench output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned table.

    Cells are stringified; numeric-looking cells are right-aligned.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        cells.append([_fmt(value) for value in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for index, row in enumerate(cells):
        rendered = " | ".join(
            cell.rjust(w) if _is_numeric(cell) else cell.ljust(w)
            for cell, w in zip(row, widths)
        )
        lines.append(rendered)
        if index == 0:
            lines.append(sep)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%x"))
        return True
    except ValueError:
        return False
