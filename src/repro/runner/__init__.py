"""Parallel experiment engine for the paper's evaluation sweeps.

The public surface is three names::

    from repro.runner import ExperimentSpec, run_sweep

    spec = ExperimentSpec(
        benchmarks=("sha", "stereovision1"),
        ambients=(25.0, 70.0),          # Figs. 6 vs 7
        corners=(25.0,),                # device grade(s), Fig. 8 uses two
    )
    sweep = run_sweep(spec, workers=4, jsonl_path="sweep.jsonl")
    print(sweep.mean_gain(t_ambient=25.0))

Failed cells are recorded in ``sweep.failures`` rather than aborting the
run; serial (``workers=1``) and parallel execution are bit-identical.
"""

from repro.runner.engine import (
    DEFAULT_MAX_RETRIES,
    RETRYABLE_ERRORS,
    run_sweep,
)
from repro.runner.results import JobFailure, JobResult, SweepResult
from repro.runner.spec import ExperimentSpec, SweepJob

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "ExperimentSpec",
    "JobFailure",
    "JobResult",
    "RETRYABLE_ERRORS",
    "run_sweep",
    "SweepJob",
    "SweepResult",
]
