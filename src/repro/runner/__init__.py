"""Parallel experiment engine for the paper's evaluation sweeps.

The public surface is three names::

    from repro.runner import ExperimentSpec, run_sweep

    spec = ExperimentSpec(
        benchmarks=("sha", "stereovision1"),
        ambients=(25.0, 70.0),          # Figs. 6 vs 7
        corners=(25.0,),                # device grade(s), Fig. 8 uses two
    )
    sweep = run_sweep(spec, workers=4, jsonl_path="sweep.jsonl")
    print(sweep.mean_gain(t_ambient=25.0))

Failed cells are recorded in ``sweep.failures`` rather than aborting the
run; serial (``workers=1``) and parallel execution are bit-identical.

Long sweeps checkpoint and resume through the persistent result store
(:mod:`repro.store`)::

    sweep = run_sweep(spec, workers=4, store="run/store",
                      jsonl_path="run/sweep.jsonl",
                      resume_from="run/sweep.jsonl")  # skips completed cells
"""

from repro.runner.engine import (
    DEFAULT_MAX_RETRIES,
    RETRYABLE_ERRORS,
    run_sweep,
)
from repro.runner.results import (
    JobFailure,
    JobResult,
    SweepResult,
    outcome_from_record,
)
from repro.runner.spec import ExperimentSpec, SweepJob

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "ExperimentSpec",
    "JobFailure",
    "JobResult",
    "RETRYABLE_ERRORS",
    "outcome_from_record",
    "run_sweep",
    "SweepJob",
    "SweepResult",
]
