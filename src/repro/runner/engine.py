"""Parallel, fault-tolerant sweep engine.

:func:`run_sweep` expands an :class:`~repro.runner.spec.ExperimentSpec`
into jobs and executes them either in-process (``workers=1``) or on a
``ProcessPoolExecutor``.  Design points:

- **Determinism** — serial and parallel paths run the *same* pure
  :func:`_execute_job`, so a parallel sweep is bit-identical to a serial
  one (every job recomputes from the same seeded inputs).
- **Graceful degradation** — a job that raises is recorded as a
  :class:`~repro.runner.results.JobFailure`; the sweep always returns a
  complete :class:`~repro.runner.results.SweepResult`.  A worker killed
  mid-job (``BrokenProcessPool``) triggers a pool rebuild and a bounded
  re-dispatch of the in-flight jobs.
- **Bounded retry** — transient errors (:class:`RoutingError`, ``OSError``
  and friends, broken pools) are retried up to ``max_retries`` extra
  attempts; deterministic failures are not retried.  A
  :class:`RoutingError` retry perturbs the placement seed — the flow is
  deterministic (and already escalates channel width internally), so an
  identical re-run would only fail identically.
- **Observability** — each finished cell streams one JSONL record
  (including Algorithm 1 phase timings derived from
  :mod:`repro.observe` spans) and fires the ``progress`` callback.  The
  JSONL file is truncated at the start of each run, so one file is one
  run.  When an observability session is active (CLI ``--trace``), the
  sweep additionally emits a ``sweep.run`` span, per-cell ``sweep.cell``
  lifecycle spans and ``job.terminal``/``job.retry`` events — including
  for timed-out and killed-worker cells, whose worker-side spans never
  close — and ships a :class:`~repro.observe.context.TraceContext` to
  every pool worker so worker spans re-parent under the sweep's trace.
- **Per-job timeout** — a parallel job overdue past ``job_timeout``
  seconds is recorded as a timeout failure.  At most ``workers`` jobs
  are dispatched to the pool at a time (the rest wait in an engine-side
  ready queue), so the timeout clock starts at execution start, not
  submission — queue wait behind a full pool never counts against it.
  A genuinely wedged worker cannot be force-killed through
  ``concurrent.futures``; its slot is parked until the late result
  arrives and is discarded, and if every slot wedges the pool is
  rebuilt.  (Ignored on the serial path.)

The shared on-disk flow cache (:mod:`repro.cad.flow`) is safe under this
fan-out: per-entry file locks serialise place-and-route so concurrent
workers needing the same mapping share one computation.
"""

from __future__ import annotations

import json
import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple, Union

from repro import observe
from repro.arch.params import ArchParams
from repro.cad.flow import cache_counters, run_flow
from repro.cad.route import RoutingError
from repro.observe.clock import monotonic
from repro.observe.context import TraceContext
from repro.coffe.fabric import Fabric, build_fabric
from repro.core.guardband import thermal_aware_guardband
from repro.core.margins import guardband_gain, worst_case_frequency
from repro.runner.results import JobFailure, JobResult, SweepResult
from repro.runner.spec import ExperimentSpec, SweepJob

ProgressCallback = Callable[[Union[JobResult, JobFailure], int, int], None]

RETRYABLE_ERRORS: Tuple[type, ...] = (
    RoutingError,
    OSError,
    EOFError,
    BrokenProcessPool,
)
"""Error classes worth a bounded re-attempt: congestion that may clear
under a different placement seed (see :func:`_retry_job`),
filesystem/cache races, and pool breakage from a killed worker.
Everything else is deterministic and fails fast."""

DEFAULT_MAX_RETRIES = 1
"""Extra attempts after the first, per job."""

_FABRIC_MEMO: Dict[Tuple[float, ArchParams], Fabric] = {}
"""Per-process memo: corner characterization is identical for every job
sharing (corner, arch), and workers are long-lived."""


def _fabric_for(corner: float, arch: ArchParams) -> Fabric:
    key = (corner, arch)
    if key not in _FABRIC_MEMO:
        _FABRIC_MEMO[key] = build_fabric(corner, arch)
    return _FABRIC_MEMO[key]


def _execute_job(job: SweepJob) -> JobResult:
    """Run one grid cell end-to-end.  Pure: deterministic in ``job``.

    Module-level so the process pool can pickle it by reference; the
    serial path calls it directly, guaranteeing identical numerics.

    Always runs under :func:`repro.observe.enabled` — timing-only when
    nothing else opened a session (so ``phase_seconds`` is collected, as
    the old ``profiling.enabled()`` wrapper did), nested into the
    surrounding session when the CLI enabled tracing or a worker attached
    a :class:`TraceContext`.
    """
    start = monotonic()
    with observe.enabled():
        job_span = observe.span(
            "sweep.job",
            job_id=job.job_id,
            benchmark=job.benchmark,
            t_ambient=job.t_ambient,
            corner=job.corner,
        )
        with job_span:
            cache_before = cache_counters()
            netlist = job.resolve_netlist()
            flow = run_flow(
                netlist, job.arch, seed=job.seed, timing_driven=job.timing_driven
            )
            fabric = _fabric_for(job.corner, job.arch)
            worst_case_hz = worst_case_frequency(flow, fabric)
            result = thermal_aware_guardband(
                flow, fabric, job.t_ambient, config=job.config
            )
            cache_after = cache_counters()
            cache_events = {
                kind: cache_after[kind] - cache_before[kind]
                for kind in cache_after
                if cache_after[kind] > cache_before[kind]
            }
            job_span.set_attrs(
                frequency_hz=result.frequency_hz,
                iterations=result.iterations,
            )
        phase_seconds = observe.total_phase_seconds(
            iteration.phase_seconds for iteration in result.history
        )
    return JobResult(
        job_id=job.job_id,
        benchmark=job.benchmark,
        t_ambient=job.t_ambient,
        corner=job.corner,
        frequency_hz=result.frequency_hz,
        worst_case_hz=worst_case_hz,
        gain=guardband_gain(result.frequency_hz, worst_case_hz),
        iterations=result.iterations,
        total_power_w=result.total_power_w,
        max_tile_celsius=float(result.tile_temperatures.max()),
        mean_tile_celsius=float(result.tile_temperatures.mean()),
        wall_seconds=monotonic() - start,
        phase_seconds=phase_seconds,
        cache_key=flow.cache_key,
        cache_events=cache_events,
    )


def _run_job_in_worker(
    job: SweepJob, context: Optional[TraceContext]
) -> JobResult:
    """Pool-worker entry point: join the dispatching sweep's trace.

    ``context`` is the engine's :func:`repro.observe.propagation_context`
    at dispatch time (``None`` when tracing is off).  The worker attaches
    for exactly this job, appending its spans to the sweep's JSONL file
    and flushing its metric deltas on detach.
    """
    with observe.attach(context):
        return _execute_job(job)


class _JsonlWriter:
    """Per-run JSONL stream of per-job records, flushed per line.

    The path is truncated on open so one file always holds exactly one
    run — re-running a sweep with the same ``--jsonl`` path never mixes
    records from different runs.
    """

    def __init__(self, path: Optional[str]) -> None:
        self._handle = open(path, "w", encoding="utf-8") if path else None

    def write(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=False) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()


def _retry_job(job: SweepJob, error: BaseException) -> SweepJob:
    """The job to submit for the next attempt after a retryable error.

    ``run_flow`` is deterministic for a given (netlist, arch, seed) and
    already escalates channel width internally, so re-running an
    unroutable cell unchanged would only fail identically; a
    :class:`RoutingError` retry therefore perturbs the placement seed to
    explore a different mapping.  Other transient errors (filesystem
    races, pool breakage) re-run the job unchanged.
    """
    if isinstance(error, RoutingError):
        return replace(job, seed=job.seed + 1)
    return job


def _failure_from(
    job: SweepJob, error: BaseException, attempts: int, started: float
) -> JobFailure:
    return JobFailure(
        job_id=job.job_id,
        benchmark=job.benchmark,
        t_ambient=job.t_ambient,
        corner=job.corner,
        error_type=type(error).__name__,
        message=str(error) or type(error).__name__,
        attempts=attempts,
        wall_seconds=monotonic() - started,
        retryable=isinstance(error, RETRYABLE_ERRORS),
    )


def _record_retry(job: SweepJob, attempts: int, error: BaseException) -> None:
    """Trace a bounded re-attempt (no-op when observability is off)."""
    observe.counter("sweep.retries").inc()
    observe.event(
        "job.retry",
        job_id=job.job_id,
        attempts=attempts,
        error_type=type(error).__name__,
    )


@dataclass
class _Tracked:
    """Book-keeping for one in-flight parallel job."""

    job: SweepJob
    attempts: int
    started: float
    submitted: float


def run_sweep(
    spec: Union[ExperimentSpec, List[SweepJob]],
    workers: Optional[int] = 1,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_timeout: Optional[float] = None,
    jsonl_path: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Execute an experiment grid; never raises for a failing cell.

    ``workers=None`` uses the machine's core count; ``workers=1`` runs
    serially in-process (same numerics, no pool overhead).  Returns a
    :class:`SweepResult` whose ``results``/``failures`` partition the
    grid.
    """
    jobs = spec.expand() if isinstance(spec, ExperimentSpec) else list(spec)
    if workers is None:
        workers = max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    workers = min(workers, max(1, len(jobs)))

    writer = _JsonlWriter(jsonl_path)
    sweep = SweepResult(workers=workers, jsonl_path=jsonl_path)
    started = monotonic()

    def record(outcome: Union[JobResult, JobFailure]) -> None:
        bucket = sweep.results if isinstance(outcome, JobResult) else sweep.failures
        bucket.append(outcome)
        writer.write(outcome.to_record())
        # Engine-side lifecycle trace: emitted for *every* terminal
        # outcome, so cells whose worker never finished (timeout, killed
        # worker) still appear in the trace tree.
        extra: Dict[str, object] = {}
        if isinstance(outcome, JobResult):
            status = "ok"
            extra["cache_hits"] = outcome.cache_events.get("hit", 0)
            observe.counter("sweep.jobs.ok").inc()
        else:
            status = outcome.error_type
            extra["error_type"] = outcome.error_type
            observe.counter("sweep.jobs.failed").inc()
        observe.event(
            "job.terminal",
            job_id=outcome.job_id,
            status=status,
            attempts=outcome.attempts,
        )
        observe.emit_span(
            "sweep.cell",
            duration_s=outcome.wall_seconds,
            status="ok" if isinstance(outcome, JobResult) else "error",
            job_id=outcome.job_id,
            benchmark=outcome.benchmark,
            attempts=outcome.attempts,
            **extra,
        )
        if progress is not None:
            progress(outcome, sweep.n_jobs, len(jobs))

    try:
        run_span = observe.span(
            "sweep.run", n_jobs=len(jobs), workers=workers
        )
        with run_span:
            if workers == 1:
                _run_serial(jobs, max_retries, record)
            else:
                _run_parallel(jobs, workers, max_retries, job_timeout, record)
            run_span.set_attrs(
                n_ok=len(sweep.results), n_failed=len(sweep.failures)
            )
    finally:
        sweep.wall_seconds = monotonic() - started
        writer.close()

    # Stable, grid-order reporting regardless of completion order.
    order = {job.job_id: i for i, job in enumerate(jobs)}
    sweep.results.sort(key=lambda r: order.get(r.job_id, len(order)))
    sweep.failures.sort(key=lambda f: order.get(f.job_id, len(order)))
    return sweep


def _run_serial(
    jobs: List[SweepJob],
    max_retries: int,
    record: Callable[[Union[JobResult, JobFailure]], None],
) -> None:
    for job in jobs:
        job_started = monotonic()
        attempt_job = job
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome: Union[JobResult, JobFailure] = replace(
                    _execute_job(attempt_job), attempts=attempts
                )
                break
            except Exception as error:  # degrade, never abort the sweep
                if (
                    isinstance(error, RETRYABLE_ERRORS)
                    and attempts <= max_retries
                ):
                    _record_retry(job, attempts, error)
                    attempt_job = _retry_job(attempt_job, error)
                    continue
                outcome = _failure_from(job, error, attempts, job_started)
                break
        record(outcome)


def _run_parallel(
    jobs: List[SweepJob],
    workers: int,
    max_retries: int,
    job_timeout: Optional[float],
    record: Callable[[Union[JobResult, JobFailure]], None],
) -> None:
    executor = ProcessPoolExecutor(max_workers=workers)
    # Captured once: every dispatch ships the same trace capsule, parented
    # under the engine's current span (``sweep.run``).  None when off.
    context = observe.propagation_context()
    # (job, attempts, first-dispatch time or None) cells not yet dispatched.
    ready: Deque[Tuple[SweepJob, int, Optional[float]]] = deque(
        (job, 1, None) for job in jobs
    )
    pending: Dict[Future, _Tracked] = {}
    zombies: Set[Future] = set()
    """Expired-but-still-running futures: each keeps occupying one worker
    slot until its (discarded) result arrives."""

    def rebuild_pool() -> None:
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        executor = ProcessPoolExecutor(max_workers=workers)
        zombies.clear()

    def dispatch() -> None:
        # Keep at most `workers` futures in flight (wedged zombie slots
        # count), so a submitted future starts executing immediately:
        # `submitted` approximates execution start — queue wait never
        # eats into `job_timeout` — and on pool breakage every tracked
        # future really had a worker slot.
        nonlocal executor
        while ready and len(pending) + len(zombies) < workers:
            job, attempts, started = ready.popleft()
            now = monotonic()
            try:
                future = executor.submit(_run_job_in_worker, job, context)
            except BrokenProcessPool:
                # Pool died between the drain and this dispatch; rebuild.
                rebuild_pool()
                future = executor.submit(_run_job_in_worker, job, context)
            pending[future] = _Tracked(
                job=job,
                attempts=attempts,
                started=started if started is not None else now,
                submitted=now,
            )

    dispatch()
    try:
        while pending or ready:
            if not pending:
                # Every slot is wedged on an expired job but grid cells
                # remain: abandon that pool and rebuild so the sweep
                # progresses.
                rebuild_pool()
                dispatch()
                continue
            done, _ = wait(
                set(pending) | zombies,
                timeout=0.25 if job_timeout is not None else None,
                return_when=FIRST_COMPLETED,
            )
            broken: List[_Tracked] = []
            for future in done:
                if future in zombies:
                    # Already recorded as a timeout; discard the late
                    # result and free the slot.
                    zombies.discard(future)
                    continue
                tracked = pending.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken.append(tracked)
                except Exception as error:
                    if (
                        isinstance(error, RETRYABLE_ERRORS)
                        and tracked.attempts <= max_retries
                    ):
                        _record_retry(tracked.job, tracked.attempts, error)
                        ready.appendleft((
                            _retry_job(tracked.job, error),
                            tracked.attempts + 1,
                            tracked.started,
                        ))
                    else:
                        record(
                            _failure_from(
                                tracked.job, error,
                                tracked.attempts, tracked.started,
                            )
                        )
                else:
                    record(replace(result, attempts=tracked.attempts))
            if broken:
                # A dead worker poisons the whole pool: every in-flight
                # future fails with BrokenProcessPool.  In-flight is
                # capped at the worker count, so each of these was
                # dispatched to a worker slot and counting the attempt is
                # fair; cells still in `ready` are untouched and keep
                # their full budget.  Drain, rebuild the pool once, and
                # re-dispatch ahead of queued cells.
                broken.extend(pending.values())
                pending.clear()
                rebuild_pool()
                for tracked in broken:
                    if tracked.attempts <= max_retries:
                        _record_retry(
                            tracked.job,
                            tracked.attempts,
                            BrokenProcessPool(
                                "worker process died unexpectedly"
                            ),
                        )
                        ready.appendleft((
                            tracked.job,
                            tracked.attempts + 1,
                            tracked.started,
                        ))
                    else:
                        record(
                            _failure_from(
                                tracked.job,
                                BrokenProcessPool(
                                    "worker process died unexpectedly"
                                ),
                                tracked.attempts,
                                tracked.started,
                            )
                        )
            if job_timeout is not None:
                _expire_overdue(pending, zombies, job_timeout, record)
            dispatch()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _expire_overdue(
    pending: Dict[Future, _Tracked],
    zombies: Set[Future],
    job_timeout: float,
    record: Callable[[Union[JobResult, JobFailure]], None],
) -> None:
    """Record overdue jobs as timeout failures and stop tracking them.

    Dispatch is capped at the pool width, so ``submitted`` approximates
    execution start and queue wait never counts against the timeout.  A
    running future cannot be interrupted through ``concurrent.futures``;
    it is parked as a zombie that keeps occupying its slot until the
    (discarded) result arrives — and if every slot wedges, the caller
    rebuilds the pool.
    """
    now = monotonic()
    for future, tracked in list(pending.items()):
        if now - tracked.submitted <= job_timeout:
            continue
        del pending[future]
        if not future.cancel():
            zombies.add(future)
        record(
            _failure_from(
                tracked.job,
                TimeoutError(
                    f"job exceeded the {job_timeout:g}s timeout"
                ),
                tracked.attempts,
                tracked.started,
            )
        )
