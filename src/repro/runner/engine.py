"""Parallel, fault-tolerant sweep engine.

:func:`run_sweep` expands an :class:`~repro.runner.spec.ExperimentSpec`
into jobs and executes them either in-process (``workers=1``) or on a
``ProcessPoolExecutor``.  Design points:

- **Determinism** — serial and parallel paths run the *same* pure
  :func:`_execute_job`, so a parallel sweep is bit-identical to a serial
  one (every job recomputes from the same seeded inputs).
- **Graceful degradation** — a job that raises is recorded as a
  :class:`~repro.runner.results.JobFailure`; the sweep always returns a
  complete :class:`~repro.runner.results.SweepResult`.  A worker killed
  mid-job (``BrokenProcessPool``) triggers a pool rebuild and a bounded
  re-dispatch of the in-flight jobs.
- **Bounded retry** — transient errors (:class:`RoutingError`, ``OSError``
  and friends, broken pools) are retried up to ``max_retries`` extra
  attempts; deterministic failures are not retried.  A
  :class:`RoutingError` retry perturbs the placement seed — the flow is
  deterministic (and already escalates channel width internally), so an
  identical re-run would only fail identically.
- **Observability** — each finished cell streams one JSONL record
  (including Algorithm 1 phase timings derived from
  :mod:`repro.observe` spans) and fires the ``progress`` callback.  The
  JSONL file is truncated at the start of each run, so one file is one
  run.  When an observability session is active (CLI ``--trace``), the
  sweep additionally emits a ``sweep.run`` span, per-cell ``sweep.cell``
  lifecycle spans and ``job.terminal``/``job.retry`` events — including
  for timed-out and killed-worker cells, whose worker-side spans never
  close — and ships a :class:`~repro.observe.context.TraceContext` to
  every pool worker so worker spans re-parent under the sweep's trace.
- **Per-job timeout** — a parallel job overdue past ``job_timeout``
  seconds is recorded as a timeout failure.  At most ``workers`` jobs
  are dispatched to the pool at a time (the rest wait in an engine-side
  ready queue), so the timeout clock starts at execution start, not
  submission — queue wait behind a full pool never counts against it.
  A genuinely wedged worker cannot be force-killed through
  ``concurrent.futures``; its slot is parked until the late result
  arrives and is discarded, and if every slot wedges the pool is
  rebuilt.  (Ignored on the serial path.)

- **Persistence and resume** — with a :class:`~repro.store.ResultStore`
  attached, every converged cell is persisted under its content digest
  (flow cache key x config x ambient x corner x schema version); a
  digest hit in any later sweep serves the stored fixed point without
  re-running Algorithm 1.  ``resume_from`` reloads a prior run's JSONL:
  recorded successes are re-emitted as ``sweep.cell_skipped`` events
  (never ``sweep.cell`` execution spans) and only the remainder is
  dispatched.
- **Warm starts** — for configs with ``warm_start_policy="nearest"``
  and a store attached, each cell's fixed point is seeded with the
  converged per-tile profile of the nearest completed same-benchmark
  neighbour (re-based onto the cell's ambient), cutting iterations; the
  converged frequency agrees with a cold start within the ``delta_t``
  compensation tolerance (DESIGN.md §11), which also means a
  warm-started parallel sweep is *tolerance-identical* — not
  bit-identical — to a serial one, since completion order picks the
  neighbours.

The shared on-disk flow cache (:mod:`repro.cad.flow`) is safe under this
fan-out: per-entry file locks serialise place-and-route so concurrent
workers needing the same mapping share one computation.
"""

from __future__ import annotations

import json
import os
from collections import deque

import numpy as np
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple, Union

from repro import observe
from repro.arch.params import ArchParams
from repro.cad.flow import FlowResult, cache_counters, run_flow
from repro.cad.route import RoutingError
from repro.observe.clock import monotonic
from repro.observe.context import TraceContext
from repro.coffe.fabric import Fabric, build_fabric
from repro.core.guardband import (
    BatchCell,
    GuardbandError,
    GuardbandResult,
    thermal_aware_guardband,
    thermal_aware_guardband_batch,
)
from repro.core.margins import guardband_gain, worst_case_frequency
from repro.runner.results import JobFailure, JobResult, SweepResult
from repro.runner.spec import ExperimentSpec, SweepJob
from repro.store import ResultStore, store_digest

ProgressCallback = Callable[[Union[JobResult, JobFailure], int, int], None]

RETRYABLE_ERRORS: Tuple[type, ...] = (
    RoutingError,
    OSError,
    EOFError,
    BrokenProcessPool,
)
"""Error classes worth a bounded re-attempt: congestion that may clear
under a different placement seed (see :func:`_retry_job`),
filesystem/cache races, and pool breakage from a killed worker.
Everything else is deterministic and fails fast."""

DEFAULT_MAX_RETRIES = 1
"""Extra attempts after the first, per job."""

_FABRIC_MEMO: Dict[Tuple[float, ArchParams], Fabric] = {}
"""Per-process memo: corner characterization is identical for every job
sharing (corner, arch), and workers are long-lived."""


def _fabric_for(corner: float, arch: ArchParams) -> Fabric:
    key = (corner, arch)
    if key not in _FABRIC_MEMO:
        _FABRIC_MEMO[key] = build_fabric(corner, arch)
    return _FABRIC_MEMO[key]


def _warm_start_miss(job: SweepJob, reason: str) -> None:
    """An attached neighbour existed but could not seed the fixed point.

    Distinguished from "no neighbour was attached" (which is silent):
    these misses measure warm-start *efficacy* — a stored entry that was
    quarantined as unreadable, or whose profile no longer matches the
    layout — and surface in ``python -m repro.observe report`` via the
    ``store.warm_start_miss`` counter/event.
    """
    observe.counter("store.warm_start_miss").inc()
    observe.event("store.warm_start_miss", job_id=job.job_id, reason=reason)


def _warm_start_vector(
    store: Optional[ResultStore], flow: FlowResult, job: SweepJob
) -> Optional["np.ndarray"]:
    """Seed vector from the nearest stored neighbour, or ``None``.

    ``job.warm_start_cells`` holds completed same-benchmark grid
    coordinates (nearest first); the neighbour's converged profile is
    re-based onto this cell's ambient (the *rise* over ambient is what
    transfers between operating points).  Any unusable candidate —
    quarantined entry, layout mismatch from a retry's perturbed seed —
    is counted as a ``store.warm_start_miss`` (unusable is not the same
    as absent) and falls through to the next, ultimately to the cold
    ambient start.
    """
    if (
        store is None
        or job.config.warm_start_policy != "nearest"
        or not job.warm_start_cells
        or flow.cache_key is None
    ):
        return None
    for t_ambient, corner in job.warm_start_cells:
        digest = store_digest(flow.cache_key, job.config, t_ambient, corner)
        existed = digest in store
        neighbour = store.get(digest)
        if neighbour is None:
            if existed:
                # The entry was on disk but unreadable (now quarantined)
                # — without the counter this would be indistinguishable
                # from "no neighbour exists".
                _warm_start_miss(job, "quarantined")
            continue
        if neighbour.tile_temperatures.shape != (flow.layout.n_tiles,):
            _warm_start_miss(job, "layout_mismatch")
            continue
        return (
            neighbour.tile_temperatures
            - neighbour.t_ambient
            + job.t_ambient
        )
    return None


def _execute_job(job: SweepJob, store: Optional[str] = None) -> JobResult:
    """Run one grid cell end-to-end.  Pure: deterministic in ``job``
    (with a ``store``, up to the warm-start tolerance — see DESIGN.md §11).

    Module-level so the process pool can pickle it by reference; the
    serial path calls it directly, guaranteeing identical numerics.

    Always runs under :func:`repro.observe.enabled` — timing-only when
    nothing else opened a session (so ``phase_seconds`` is collected, as
    the old ``profiling.enabled()`` wrapper did), nested into the
    surrounding session when the CLI enabled tracing or a worker attached
    a :class:`TraceContext`.

    ``store`` is the result-store root (a path, so it crosses the pool
    boundary cheaply).  A store hit serves the converged
    :class:`GuardbandResult` without re-running Algorithm 1; a miss
    computes (warm-started from the nearest stored neighbour when the
    job's config asks for it) and persists the converged result.
    """
    start = monotonic()
    result_store = ResultStore(store) if store is not None else None
    with observe.enabled():
        job_span = observe.span(
            "sweep.job",
            job_id=job.job_id,
            benchmark=job.benchmark,
            t_ambient=job.t_ambient,
            corner=job.corner,
        )
        with job_span:
            cache_before = cache_counters()
            netlist = job.resolve_netlist()
            flow = run_flow(
                netlist, job.arch, seed=job.seed,
                timing_driven=job.timing_driven,
                thermal_weight=job.config.thermal_weight,
            )
            fabric = _fabric_for(job.corner, job.arch)
            worst_case_hz = worst_case_frequency(flow, fabric)
            store_event: Optional[str] = None
            result: Optional[GuardbandResult] = None
            digest: Optional[str] = None
            if result_store is not None and flow.cache_key is not None:
                digest = store_digest(
                    flow.cache_key, job.config, job.t_ambient, job.corner
                )
                result = result_store.get(digest)
                store_event = "hit" if result is not None else "miss"
            if result is None:
                warm = _warm_start_vector(result_store, flow, job)
                result = thermal_aware_guardband(
                    flow, fabric, job.t_ambient, config=job.config,
                    warm_start=warm,
                )
                if result_store is not None and digest is not None:
                    result_store.put(digest, result)
            cache_after = cache_counters()
            cache_events = {
                kind: cache_after[kind] - cache_before[kind]
                for kind in cache_after
                if cache_after[kind] > cache_before[kind]
            }
            job_span.set_attrs(
                frequency_hz=result.frequency_hz,
                iterations=result.iterations,
                warm_started=result.warm_started,
                **({"store": store_event} if store_event else {}),
            )
        # A store hit did no Algorithm 1 work in this process; claiming
        # the stored run's phase timings here would double-count them.
        phase_seconds = (
            {}
            if store_event == "hit"
            else observe.total_phase_seconds(
                iteration.phase_seconds for iteration in result.history
            )
        )
    return JobResult(
        job_id=job.job_id,
        benchmark=job.benchmark,
        t_ambient=job.t_ambient,
        corner=job.corner,
        frequency_hz=result.frequency_hz,
        worst_case_hz=worst_case_hz,
        gain=guardband_gain(result.frequency_hz, worst_case_hz),
        iterations=result.iterations,
        total_power_w=result.total_power_w,
        max_tile_celsius=float(result.tile_temperatures.max()),
        mean_tile_celsius=float(result.tile_temperatures.mean()),
        wall_seconds=monotonic() - start,
        phase_seconds=phase_seconds,
        cache_key=flow.cache_key,
        cache_events=cache_events,
        warm_started=result.warm_started,
        store_event=store_event,
        mode=result.mode,
        vdd_v=result.vdd_v,
        energy_saving=(
            result.energy.power_saving_fraction if result.energy else None
        ),
        energy_per_cycle_j=(
            result.energy.energy_per_cycle_j if result.energy else None
        ),
    )


def _batch_key(job: SweepJob) -> Tuple[object, ...]:
    """Everything a batch must share: one flow, one fabric, one config.

    Jobs agreeing on this key resolve to the same flow cache key (the
    netlist/arch/seed triple determines it) and differ only in ambient —
    exactly the axis :func:`thermal_aware_guardband_batch` vectorizes.
    """
    return (
        job.benchmark,
        job.netlist_spec,
        job.arch,
        job.seed,
        job.timing_driven,
        job.corner,
        job.config,
    )


def _batch_units(jobs: List[SweepJob]) -> List[List[SweepJob]]:
    """Group same-flow jobs into batched work units, grid order preserved.

    Each unit is dispatched (and retried, and timed out) as one work
    item; its cells still record individually — one JSONL line, one
    ``sweep.cell`` span and one store write per cell.
    """
    grouped: Dict[Tuple[object, ...], List[SweepJob]] = {}
    order: List[Tuple[object, ...]] = []
    for job in jobs:
        key = _batch_key(job)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(job)
    return [grouped[key] for key in order]


def _execute_batch(
    jobs: List[SweepJob], store: Optional[str] = None
) -> List[Union[JobResult, JobFailure]]:
    """Run one batched unit of same-flow cells end-to-end.

    The placed netlist, fabric and worst-case baseline are resolved
    once; cells already persisted in the result store are served as
    per-cell hits, and only the remainder enters the joint fixed point.
    Per-cell semantics match :func:`_execute_job`: one
    :class:`JobResult` (or, for a diverged cell, :class:`JobFailure`)
    per input job, in input order, each with its own store write.  Wall
    clock is attributed evenly across the unit's cells.
    """
    start = monotonic()
    result_store = ResultStore(store) if store is not None else None
    n_jobs = len(jobs)
    lead = jobs[0]
    with observe.enabled():
        batch_span = observe.span(
            "sweep.batch",
            benchmark=lead.benchmark,
            corner=lead.corner,
            n_cells=n_jobs,
        )
        with batch_span:
            cache_before = cache_counters()
            netlist = lead.resolve_netlist()
            flow = run_flow(
                netlist, lead.arch, seed=lead.seed,
                timing_driven=lead.timing_driven,
                thermal_weight=lead.config.thermal_weight,
            )
            fabric = _fabric_for(lead.corner, lead.arch)
            worst_case_hz = worst_case_frequency(flow, fabric)

            results: List[Optional[GuardbandResult]] = [None] * n_jobs
            errors: Dict[int, GuardbandError] = {}
            digests: Dict[int, str] = {}
            store_events: Dict[int, str] = {}
            if result_store is not None and flow.cache_key is not None:
                for i, job in enumerate(jobs):
                    digests[i] = store_digest(
                        flow.cache_key, job.config, job.t_ambient, job.corner
                    )
                    results[i] = result_store.get(digests[i])
                    store_events[i] = (
                        "hit" if results[i] is not None else "miss"
                    )
            pending = [i for i in range(n_jobs) if results[i] is None]
            if pending:
                cells = [
                    BatchCell(
                        t_ambient=jobs[i].t_ambient,
                        warm_start=_warm_start_vector(
                            result_store, flow, jobs[i]
                        ),
                    )
                    for i in pending
                ]
                outcomes = thermal_aware_guardband_batch(
                    flow, fabric, cells, config=lead.config
                )
                for i, outcome in zip(pending, outcomes):
                    if isinstance(outcome, GuardbandError):
                        errors[i] = outcome
                    else:
                        results[i] = outcome
                        if result_store is not None and i in digests:
                            result_store.put(digests[i], outcome)
            cache_after = cache_counters()
            cache_events = {
                kind: cache_after[kind] - cache_before[kind]
                for kind in cache_after
                if cache_after[kind] > cache_before[kind]
            }
            batch_span.set_attrs(
                n_computed=len(pending), n_failed=len(errors)
            )

    wall_share = (monotonic() - start) / n_jobs
    records: List[Union[JobResult, JobFailure]] = []
    for i, job in enumerate(jobs):
        store_event = store_events.get(i)
        error = errors.get(i)
        if error is not None:
            records.append(
                JobFailure(
                    job_id=job.job_id,
                    benchmark=job.benchmark,
                    t_ambient=job.t_ambient,
                    corner=job.corner,
                    error_type=type(error).__name__,
                    message=str(error) or type(error).__name__,
                    attempts=1,
                    wall_seconds=wall_share,
                    retryable=isinstance(error, RETRYABLE_ERRORS),
                    diagnostics=_failure_diagnostics(error),
                )
            )
            continue
        result = results[i]
        assert result is not None  # every index is a result or an error
        phase_seconds = (
            {}
            if store_event == "hit"
            else observe.total_phase_seconds(
                iteration.phase_seconds for iteration in result.history
            )
        )
        records.append(
            JobResult(
                job_id=job.job_id,
                benchmark=job.benchmark,
                t_ambient=job.t_ambient,
                corner=job.corner,
                frequency_hz=result.frequency_hz,
                worst_case_hz=worst_case_hz,
                gain=guardband_gain(result.frequency_hz, worst_case_hz),
                iterations=result.iterations,
                total_power_w=result.total_power_w,
                max_tile_celsius=float(result.tile_temperatures.max()),
                mean_tile_celsius=float(result.tile_temperatures.mean()),
                wall_seconds=wall_share,
                phase_seconds=phase_seconds,
                cache_key=flow.cache_key,
                cache_events=cache_events if i == 0 else {},
                warm_started=result.warm_started,
                store_event=store_event,
                mode=result.mode,
                vdd_v=result.vdd_v,
                energy_saving=(
                    result.energy.power_saving_fraction
                    if result.energy
                    else None
                ),
                energy_per_cycle_j=(
                    result.energy.energy_per_cycle_j
                    if result.energy
                    else None
                ),
            )
        )
    return records


def _execute_unit(
    unit: List[SweepJob], store: Optional[str] = None
) -> List[Union[JobResult, JobFailure]]:
    """Run one work unit: a single cell, or a batched same-flow group."""
    if len(unit) == 1:
        return [_execute_job(unit[0], store=store)]
    return _execute_batch(unit, store=store)


def _run_unit_in_worker(
    unit: List[SweepJob],
    context: Optional[TraceContext],
    store: Optional[str] = None,
) -> List[Union[JobResult, JobFailure]]:
    """Pool-worker entry point: join the dispatching sweep's trace.

    ``context`` is the engine's :func:`repro.observe.propagation_context`
    at dispatch time (``None`` when tracing is off).  The worker attaches
    for exactly this unit, appending its spans to the sweep's JSONL file
    and flushing its metric deltas on detach.
    """
    with observe.attach(context):
        return _execute_unit(unit, store=store)


class _JsonlWriter:
    """Per-run JSONL stream of per-job records, flushed per line.

    The path is truncated on open so one file always holds exactly one
    run — re-running a sweep with the same ``--jsonl`` path never mixes
    records from different runs.
    """

    def __init__(self, path: Optional[str]) -> None:
        self._handle = open(path, "w", encoding="utf-8") if path else None

    def write(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=False) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()


def _retry_job(job: SweepJob, error: BaseException) -> SweepJob:
    """The job to submit for the next attempt after a retryable error.

    ``run_flow`` is deterministic for a given (netlist, arch, seed) and
    already escalates channel width internally, so re-running an
    unroutable cell unchanged would only fail identically; a
    :class:`RoutingError` retry therefore perturbs the placement seed to
    explore a different mapping.  Other transient errors (filesystem
    races, pool breakage) re-run the job unchanged.
    """
    if isinstance(error, RoutingError):
        return replace(job, seed=job.seed + 1)
    return job


def _failure_diagnostics(error: BaseException) -> Dict[str, object]:
    """Structured forensics to record alongside a failure, when available.

    A diverged Algorithm 1 cell carries its partial fixed point on the
    :class:`GuardbandError`; surfacing the iteration count and the last
    ``||dT||_inf`` in the JSONL record makes divergence debuggable
    without re-running the cell.
    """
    if isinstance(error, GuardbandError) and error.history:
        return {
            "iterations": error.iterations,
            "last_max_delta_celsius": error.last_max_delta_celsius,
        }
    return {}


def _failure_from(
    job: SweepJob, error: BaseException, attempts: int, started: float
) -> JobFailure:
    return JobFailure(
        job_id=job.job_id,
        benchmark=job.benchmark,
        t_ambient=job.t_ambient,
        corner=job.corner,
        error_type=type(error).__name__,
        message=str(error) or type(error).__name__,
        attempts=attempts,
        wall_seconds=monotonic() - started,
        retryable=isinstance(error, RETRYABLE_ERRORS),
        diagnostics=_failure_diagnostics(error),
    )


def _record_retry(job: SweepJob, attempts: int, error: BaseException) -> None:
    """Trace a bounded re-attempt (no-op when observability is off)."""
    observe.counter("sweep.retries").inc()
    observe.event(
        "job.retry",
        job_id=job.job_id,
        attempts=attempts,
        error_type=type(error).__name__,
    )


@dataclass
class _Tracked:
    """Book-keeping for one in-flight parallel work unit."""

    unit: List[SweepJob]
    attempts: int
    started: float
    submitted: float


def run_sweep(
    spec: Union[ExperimentSpec, List[SweepJob]],
    workers: Optional[int] = 1,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_timeout: Optional[float] = None,
    jsonl_path: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    store: Union[ResultStore, str, None] = None,
    resume_from: Optional[str] = None,
    batch: bool = False,
) -> SweepResult:
    """Execute an experiment grid; never raises for a failing cell.

    ``workers=None`` uses the machine's core count; ``workers=1`` runs
    serially in-process (same numerics, no pool overhead).  Returns a
    :class:`SweepResult` whose ``results``/``failures`` partition the
    grid.

    ``store`` (a :class:`~repro.store.ResultStore` or its root path)
    persists every converged cell keyed by its content digest, so an
    identical cell in any later sweep is served without re-running
    Algorithm 1 — and, for configs with ``warm_start_policy="nearest"``,
    seeds each cell's fixed point from the nearest completed
    same-benchmark neighbour in the grid.

    ``resume_from`` points at a prior run's per-cell JSONL stream
    (typically the same path as ``jsonl_path``): cells it records as
    successful are reloaded and re-recorded — with ``sweep.cell_skipped``
    events and the ``sweep.cells.skipped`` counter, never a
    ``sweep.cell`` execution span — and only the remainder (failures and
    never-started cells) is dispatched.  ``resume_from`` is read in full
    before ``jsonl_path`` is truncated, so resuming a run dir in place
    is safe.

    ``batch=True`` groups cells sharing one placed flow (same benchmark,
    arch, seed and fabric corner under one config — an ambient sweep)
    into single batched work items solved as one joint fixed point
    (:func:`~repro.core.guardband.thermal_aware_guardband_batch`): the
    thermal factorization, STA delay tables and power model are built
    once per group instead of once per cell.  Per-cell records, store
    writes, ``sweep.cell`` spans and resume semantics are unchanged;
    frequencies agree with the looped path within the ``delta_t``
    compensation margin (DESIGN.md §12), and retries/``job_timeout``
    apply per work item (i.e. per batch group when batching).
    """
    jobs = spec.expand() if isinstance(spec, ExperimentSpec) else list(spec)
    grid_order = {job.job_id: i for i, job in enumerate(jobs)}
    if workers is None:
        workers = max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")

    store_path: Optional[str] = None
    if isinstance(store, ResultStore):
        store_path = str(store.root)
    elif store is not None:
        store_path = str(store)

    # Checkpoint reload — before the writer below truncates jsonl_path.
    resumed: List[JobResult] = []
    if resume_from is not None:
        prior = SweepResult.from_jsonl(resume_from)
        completed = {r.job_id: r for r in prior.results}
        remaining: List[SweepJob] = []
        for job in jobs:
            if job.job_id in completed:
                resumed.append(completed[job.job_id])
            else:
                remaining.append(job)
        total_jobs = len(jobs)
        jobs = remaining
    else:
        total_jobs = len(jobs)
    units = _batch_units(jobs) if batch else [[job] for job in jobs]
    workers = min(workers, max(1, len(units)))

    writer = _JsonlWriter(jsonl_path)
    sweep = SweepResult(workers=workers, jsonl_path=jsonl_path)
    started = monotonic()

    # Completed grid coordinates per benchmark, for warm-start seeding;
    # resumed cells count (their converged profiles are in the store).
    completed_cells: Dict[str, List[Tuple[float, float]]] = {}

    def note_completed(result: JobResult) -> None:
        completed_cells.setdefault(result.benchmark, []).append(
            (result.t_ambient, result.corner)
        )

    def prepare(job: SweepJob) -> SweepJob:
        """Attach the nearest completed neighbours at dispatch time."""
        if store_path is None or job.config.warm_start_policy != "nearest":
            return job
        cells = completed_cells.get(job.benchmark)
        if not cells:
            return job
        ranked = sorted(
            cells,
            key=lambda c: (
                abs(c[0] - job.t_ambient) + abs(c[1] - job.corner),
                c[0],
                c[1],
            ),
        )
        return replace(job, warm_start_cells=tuple(ranked[:3]))

    def record(outcome: Union[JobResult, JobFailure]) -> None:
        bucket = sweep.results if isinstance(outcome, JobResult) else sweep.failures
        bucket.append(outcome)
        writer.write(outcome.to_record())
        # Engine-side lifecycle trace: emitted for *every* terminal
        # outcome, so cells whose worker never finished (timeout, killed
        # worker) still appear in the trace tree.
        extra: Dict[str, object] = {}
        if isinstance(outcome, JobResult):
            status = "ok"
            extra["cache_hits"] = outcome.cache_events.get("hit", 0)
            observe.counter("sweep.jobs.ok").inc()
            note_completed(outcome)
        else:
            status = outcome.error_type
            extra["error_type"] = outcome.error_type
            observe.counter("sweep.jobs.failed").inc()
        observe.event(
            "job.terminal",
            job_id=outcome.job_id,
            status=status,
            attempts=outcome.attempts,
        )
        observe.emit_span(
            "sweep.cell",
            duration_s=outcome.wall_seconds,
            status="ok" if isinstance(outcome, JobResult) else "error",
            job_id=outcome.job_id,
            benchmark=outcome.benchmark,
            attempts=outcome.attempts,
            **extra,
        )
        if progress is not None:
            progress(outcome, sweep.n_jobs, total_jobs)

    def record_skipped(result: JobResult) -> None:
        """A reloaded checkpoint cell: re-recorded, never re-executed."""
        sweep.results.append(result)
        sweep.n_resumed += 1
        writer.write(result.to_record())
        observe.counter("sweep.cells.skipped").inc()
        observe.event(
            "sweep.cell_skipped", job_id=result.job_id, source="resume"
        )
        note_completed(result)
        if progress is not None:
            progress(result, sweep.n_jobs, total_jobs)

    try:
        run_span = observe.span(
            "sweep.run",
            n_jobs=total_jobs,
            workers=workers,
            n_resumed=len(resumed),
        )
        with run_span:
            for reloaded in resumed:
                record_skipped(reloaded)
            if workers == 1:
                _run_serial(units, max_retries, record, prepare, store_path)
            else:
                _run_parallel(
                    units, workers, max_retries, job_timeout, record,
                    prepare, store_path,
                )
            run_span.set_attrs(
                n_ok=len(sweep.results), n_failed=len(sweep.failures)
            )
    finally:
        sweep.wall_seconds = monotonic() - started
        writer.close()

    # Stable, grid-order reporting regardless of completion order.
    sweep.results.sort(key=lambda r: grid_order.get(r.job_id, len(grid_order)))
    sweep.failures.sort(key=lambda f: grid_order.get(f.job_id, len(grid_order)))
    return sweep


def _run_serial(
    units: List[List[SweepJob]],
    max_retries: int,
    record: Callable[[Union[JobResult, JobFailure]], None],
    prepare: Callable[[SweepJob], SweepJob] = lambda job: job,
    store: Optional[str] = None,
) -> None:
    for unit in units:
        unit_started = monotonic()
        attempt_unit = [prepare(job) for job in unit]
        attempts = 0
        while True:
            attempts += 1
            try:
                outcomes: List[Union[JobResult, JobFailure]] = [
                    replace(outcome, attempts=attempts)
                    for outcome in _execute_unit(attempt_unit, store=store)
                ]
                break
            except Exception as error:  # degrade, never abort the sweep
                if (
                    isinstance(error, RETRYABLE_ERRORS)
                    and attempts <= max_retries
                ):
                    for job in unit:
                        _record_retry(job, attempts, error)
                    attempt_unit = [
                        _retry_job(job, error) for job in attempt_unit
                    ]
                    continue
                outcomes = [
                    _failure_from(job, error, attempts, unit_started)
                    for job in unit
                ]
                break
        for outcome in outcomes:
            record(outcome)


def _run_parallel(
    units: List[List[SweepJob]],
    workers: int,
    max_retries: int,
    job_timeout: Optional[float],
    record: Callable[[Union[JobResult, JobFailure]], None],
    prepare: Callable[[SweepJob], SweepJob] = lambda job: job,
    store: Optional[str] = None,
) -> None:
    executor = ProcessPoolExecutor(max_workers=workers)
    # Captured once: every dispatch ships the same trace capsule, parented
    # under the engine's current span (``sweep.run``).  None when off.
    context = observe.propagation_context()
    # (unit, attempts, first-dispatch time or None) units not yet dispatched.
    ready: Deque[Tuple[List[SweepJob], int, Optional[float]]] = deque(
        (unit, 1, None) for unit in units
    )
    pending: Dict[Future, _Tracked] = {}
    zombies: Set[Future] = set()
    """Expired-but-still-running futures: each keeps occupying one worker
    slot until its (discarded) result arrives."""

    def rebuild_pool() -> None:
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        executor = ProcessPoolExecutor(max_workers=workers)
        zombies.clear()

    def dispatch() -> None:
        # Keep at most `workers` futures in flight (wedged zombie slots
        # count), so a submitted future starts executing immediately:
        # `submitted` approximates execution start — queue wait never
        # eats into `job_timeout` — and on pool breakage every tracked
        # future really had a worker slot.
        nonlocal executor
        while ready and len(pending) + len(zombies) < workers:
            unit, attempts, started = ready.popleft()
            # Warm-start neighbours are attached here, not at enqueue:
            # cells that completed while this one waited are candidates.
            # Retries keep the neighbours from their first dispatch
            # (attempts > 1), so a re-run stays reproducible.
            if attempts == 1:
                unit = [prepare(job) for job in unit]
            now = monotonic()
            try:
                future = executor.submit(
                    _run_unit_in_worker, unit, context, store
                )
            except BrokenProcessPool:
                # Pool died between the drain and this dispatch; rebuild.
                rebuild_pool()
                future = executor.submit(
                    _run_unit_in_worker, unit, context, store
                )
            pending[future] = _Tracked(
                unit=unit,
                attempts=attempts,
                started=started if started is not None else now,
                submitted=now,
            )

    dispatch()
    try:
        while pending or ready:
            if not pending:
                # Every slot is wedged on an expired job but grid cells
                # remain: abandon that pool and rebuild so the sweep
                # progresses.
                rebuild_pool()
                dispatch()
                continue
            done, _ = wait(
                set(pending) | zombies,
                timeout=0.25 if job_timeout is not None else None,
                return_when=FIRST_COMPLETED,
            )
            broken: List[_Tracked] = []
            for future in done:
                if future in zombies:
                    # Already recorded as a timeout; discard the late
                    # result and free the slot.
                    zombies.discard(future)
                    continue
                tracked = pending.pop(future)
                try:
                    results = future.result()
                except BrokenProcessPool:
                    broken.append(tracked)
                except Exception as error:
                    if (
                        isinstance(error, RETRYABLE_ERRORS)
                        and tracked.attempts <= max_retries
                    ):
                        for job in tracked.unit:
                            _record_retry(job, tracked.attempts, error)
                        ready.appendleft((
                            [
                                _retry_job(job, error)
                                for job in tracked.unit
                            ],
                            tracked.attempts + 1,
                            tracked.started,
                        ))
                    else:
                        for job in tracked.unit:
                            record(
                                _failure_from(
                                    job, error,
                                    tracked.attempts, tracked.started,
                                )
                            )
                else:
                    for result in results:
                        record(replace(result, attempts=tracked.attempts))
            if broken:
                # A dead worker poisons the whole pool: every in-flight
                # future fails with BrokenProcessPool.  In-flight is
                # capped at the worker count, so each of these was
                # dispatched to a worker slot and counting the attempt is
                # fair; cells still in `ready` are untouched and keep
                # their full budget.  Drain, rebuild the pool once, and
                # re-dispatch ahead of queued cells.
                broken.extend(pending.values())
                pending.clear()
                rebuild_pool()
                for tracked in broken:
                    if tracked.attempts <= max_retries:
                        for job in tracked.unit:
                            _record_retry(
                                job,
                                tracked.attempts,
                                BrokenProcessPool(
                                    "worker process died unexpectedly"
                                ),
                            )
                        ready.appendleft((
                            tracked.unit,
                            tracked.attempts + 1,
                            tracked.started,
                        ))
                    else:
                        for job in tracked.unit:
                            record(
                                _failure_from(
                                    job,
                                    BrokenProcessPool(
                                        "worker process died unexpectedly"
                                    ),
                                    tracked.attempts,
                                    tracked.started,
                                )
                            )
            if job_timeout is not None:
                _expire_overdue(pending, zombies, job_timeout, record)
            dispatch()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _expire_overdue(
    pending: Dict[Future, _Tracked],
    zombies: Set[Future],
    job_timeout: float,
    record: Callable[[Union[JobResult, JobFailure]], None],
) -> None:
    """Record overdue jobs as timeout failures and stop tracking them.

    Dispatch is capped at the pool width, so ``submitted`` approximates
    execution start and queue wait never counts against the timeout.  A
    running future cannot be interrupted through ``concurrent.futures``;
    it is parked as a zombie that keeps occupying its slot until the
    (discarded) result arrives — and if every slot wedges, the caller
    rebuilds the pool.
    """
    now = monotonic()
    for future, tracked in list(pending.items()):
        if now - tracked.submitted <= job_timeout:
            continue
        del pending[future]
        if not future.cancel():
            zombies.add(future)
        for job in tracked.unit:
            record(
                _failure_from(
                    job,
                    TimeoutError(
                        f"job exceeded the {job_timeout:g}s timeout"
                    ),
                    tracked.attempts,
                    tracked.started,
                )
            )
