"""Sweep outcome model: per-job records and the aggregate result.

Every record is flat (floats, strings, dicts of floats) so it pickles
cheaply across the process pool and serialises 1:1 to a JSONL line.  The
aggregate :class:`SweepResult` is what ``repro.reporting`` renders and
what the CLI's ``--json`` mode emits via :meth:`SweepResult.to_dict`.

:meth:`SweepResult.to_jsonl` / :meth:`SweepResult.from_jsonl` are the
one serialization path shared by the engine's streaming writer, sweep
resume (``run_sweep(resume_from=...)``) and offline reporting
(``python -m repro report``) — a record written by any of them reloads
through :func:`outcome_from_record`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

Cell = Tuple[str, float, float]
"""Grid coordinate: (benchmark, t_ambient, corner)."""


@dataclass(frozen=True)
class JobResult:
    """A successfully guardbanded grid cell."""

    job_id: str
    benchmark: str
    t_ambient: float
    corner: float
    frequency_hz: float
    """Thermal-aware guardbanded clock (Algorithm 1)."""
    worst_case_hz: float
    """Conventional Tworst baseline clock on the same device."""
    gain: float
    """Fractional improvement over the worst-case baseline."""
    iterations: int
    total_power_w: float
    max_tile_celsius: float
    mean_tile_celsius: float
    wall_seconds: float
    attempts: int = 1
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    """Aggregate Algorithm 1 phase timings ("sta"/"power"/"thermal")."""
    cache_key: Optional[str] = None
    """Flow-cache key of the underlying P&R, when caching was on."""
    cache_events: Dict[str, int] = field(default_factory=dict)
    """Flow-cache behaviour attributed to this job: counts per kind
    ("hit"/"miss"/"quarantine"), diffed from the per-process counters
    around the job's execution.  Zero-count kinds are omitted."""
    warm_started: bool = False
    """Whether Algorithm 1 was seeded from a neighbouring converged
    profile (result-store warm start) instead of the flat ambient."""
    store_event: Optional[str] = None
    """Result-store outcome for this cell: "hit" (converged result
    served without re-running Algorithm 1), "miss" (computed and
    persisted), or ``None`` when the sweep ran without a store."""
    mode: str = "frequency"
    """Objective the cell was run under ("frequency" or "energy")."""
    vdd_v: Optional[float] = None
    """Core supply the result closes timing at, volts.  Nominal for
    frequency-mode cells; the bisected closing supply in energy mode.
    ``None`` only for records written before the energy objective."""
    energy_saving: Optional[float] = None
    """Energy-mode fractional power (= energy-per-cycle, at
    iso-frequency) saving vs nominal supply; ``None`` in frequency
    mode."""
    energy_per_cycle_j: Optional[float] = None
    """Energy-mode total energy per clock cycle at the closing supply,
    joules; ``None`` in frequency mode."""

    @property
    def cell(self) -> Cell:
        return (self.benchmark, self.t_ambient, self.corner)

    def to_record(self) -> Dict[str, object]:
        return {"type": "result", **asdict(self)}


@dataclass(frozen=True)
class JobFailure:
    """A grid cell that exhausted its attempts; recorded, never fatal."""

    job_id: str
    benchmark: str
    t_ambient: float
    corner: float
    error_type: str
    message: str
    attempts: int
    wall_seconds: float
    retryable: bool = False
    """Whether the final error was of a retryable class (budget exhausted)."""
    diagnostics: Dict[str, object] = field(default_factory=dict)
    """Structured failure forensics, when the error carried any.  A
    diverged Algorithm 1 cell records ``iterations`` and
    ``last_max_delta_celsius`` from the partial fixed point
    (:class:`~repro.core.guardband.GuardbandError` diagnostics), so a
    non-converging cell is debuggable straight from the JSONL stream."""

    @property
    def cell(self) -> Cell:
        return (self.benchmark, self.t_ambient, self.corner)

    def to_record(self) -> Dict[str, object]:
        return {"type": "failure", **asdict(self)}


_RESULT_FIELDS = frozenset(f.name for f in fields(JobResult))
_FAILURE_FIELDS = frozenset(f.name for f in fields(JobFailure))


def outcome_from_record(
    record: Dict[str, object]
) -> Union[JobResult, JobFailure]:
    """Rebuild one streamed record (inverse of ``to_record``).

    Unknown keys are dropped and missing optional fields take their
    defaults, so JSONL written by older engine versions still reloads.
    """
    kind = record.get("type")
    if kind == "result":
        return JobResult(
            **{k: v for k, v in record.items() if k in _RESULT_FIELDS}  # type: ignore[arg-type]
        )
    if kind == "failure":
        return JobFailure(
            **{k: v for k, v in record.items() if k in _FAILURE_FIELDS}  # type: ignore[arg-type]
        )
    raise ValueError(f"record has unknown type {kind!r}")


@dataclass
class SweepResult:
    """Aggregate of one engine run over an experiment grid."""

    results: List[JobResult] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    jsonl_path: Optional[str] = None
    n_resumed: int = 0
    """Cells reloaded from a prior run's records instead of re-executed
    (``run_sweep(resume_from=...)``); counted within ``results``."""

    @property
    def n_jobs(self) -> int:
        return len(self.results) + len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures and bool(self.results)

    def result_for(
        self, benchmark: str, t_ambient: float, corner: float
    ) -> Optional[JobResult]:
        for result in self.results:
            if result.cell == (benchmark, t_ambient, corner):
                return result
        return None

    def gains(self) -> Dict[Cell, float]:
        """Guardbanding gain per grid cell (failed cells absent)."""
        return {r.cell: r.gain for r in self.results}

    def frequencies(self) -> Dict[Cell, float]:
        return {r.cell: r.frequency_hz for r in self.results}

    def mean_gain(
        self,
        t_ambient: Optional[float] = None,
        corner: Optional[float] = None,
    ) -> float:
        """Average gain over (a slice of) the grid, Figs. 6-7 style."""
        # Grid-coordinate matching: both sides round-trip unchanged from
        # the ExperimentSpec grid, so exact equality is the correct test.
        picked = [
            r.gain
            for r in self.results
            if (t_ambient is None or r.t_ambient == t_ambient)  # repro-lint: ignore[float-equality]
            and (corner is None or r.corner == corner)  # repro-lint: ignore[float-equality]
        ]
        if not picked:
            raise ValueError("no successful cells match the requested slice")
        return sum(picked) / len(picked)

    def cache_totals(self) -> Dict[str, int]:
        """Flow-cache hits/misses/quarantines summed over successful cells."""
        totals = {"hit": 0, "miss": 0, "quarantine": 0}
        for result in self.results:
            for kind, count in result.cache_events.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def phase_totals(self) -> Dict[str, float]:
        """Engine-wide Algorithm 1 phase seconds, summed over cells."""
        totals: Dict[str, float] = {}
        for result in self.results:
            for name, seconds in result.phase_seconds.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def store_totals(self) -> Dict[str, int]:
        """Result-store hits/misses summed over successful cells."""
        totals = {"hit": 0, "miss": 0}
        for result in self.results:
            if result.store_event is not None:
                totals[result.store_event] = (
                    totals.get(result.store_event, 0) + 1
                )
        return totals

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable summary (the CLI's ``--json`` payload)."""
        return {
            "n_jobs": self.n_jobs,
            "n_ok": len(self.results),
            "n_failed": len(self.failures),
            "n_resumed": self.n_resumed,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "jsonl_path": self.jsonl_path,
            "cache_totals": self.cache_totals(),
            "store_totals": self.store_totals(),
            "results": [asdict(r) for r in self.results],
            "failures": [asdict(f) for f in self.failures],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write one record per cell — the engine's streaming format."""
        with open(path, "w", encoding="utf-8") as handle:
            for result in self.results:
                handle.write(json.dumps(result.to_record()) + "\n")
            for failure in self.failures:
                handle.write(json.dumps(failure.to_record()) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "SweepResult":
        """Reload a run from its per-cell JSONL stream.

        Tolerant of interrupted runs: a torn trailing line (the writer
        was killed mid-write) is skipped, and when a ``job_id`` appears
        more than once — a resumed run re-records reloaded cells, and a
        cell that failed once may succeed later — the *last* record
        wins.
        """
        latest: Dict[str, Union[JobResult, JobFailure]] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    outcome = outcome_from_record(json.loads(line))
                except (json.JSONDecodeError, TypeError, ValueError):
                    continue
                latest[outcome.job_id] = outcome
        sweep = cls(jsonl_path=str(path))
        for outcome in latest.values():
            if isinstance(outcome, JobResult):
                sweep.results.append(outcome)
            else:
                sweep.failures.append(outcome)
        return sweep
