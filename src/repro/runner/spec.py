"""Experiment specification — the grid a sweep expands into.

An :class:`ExperimentSpec` describes the paper's evaluation shape
declaratively: *benchmarks x ambients x corners* under one (or
per-benchmark) :class:`~repro.core.guardband.GuardbandConfig`.  Figs. 6-7
are ``corners=(25,)`` grids over the VTR suite at one ambient; Fig. 8 is a
two-corner grid at 70 C; the datacenter example is a 1-benchmark,
2-corner cell.  :meth:`ExperimentSpec.expand` flattens the grid into
:class:`SweepJob` values — frozen, picklable, self-contained units the
engine can hand to any worker process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.arch.params import ArchParams
from repro.core.guardband import GuardbandConfig
from repro.netlists.generator import NetlistSpec
from repro.netlists.netlist import Netlist
from repro.netlists.vtr_suite import VTR_BENCHMARKS, benchmark_names

BenchmarkLike = Union[str, NetlistSpec]

_VTR_BY_NAME = {s.name: s for s in VTR_BENCHMARKS}


@dataclass(frozen=True)
class SweepJob:
    """One cell of the sweep grid: a benchmark at one operating point.

    Fully self-contained and picklable; a worker process needs nothing
    else to reproduce the cell deterministically.
    """

    benchmark: str
    """Benchmark name (VTR suite) — display and grouping key."""
    t_ambient: float
    """Ambient (junction base) temperature for Algorithm 1, Celsius."""
    corner: float
    """Fabric design corner the device is characterized at, Celsius."""
    config: GuardbandConfig
    arch: ArchParams
    seed: int = 7
    timing_driven: bool = False
    netlist_spec: Optional[NetlistSpec] = None
    """Explicit synthetic netlist; ``None`` resolves ``benchmark`` through
    the VTR suite."""
    warm_start_cells: Tuple[Tuple[float, float], ...] = ()
    """(t_ambient, corner) coordinates of completed same-benchmark cells
    the worker may seed Algorithm 1 from, nearest first.  Attached by the
    engine at dispatch time when the sweep runs with a result store and
    ``config.warm_start_policy == "nearest"``; not part of the cell's
    identity (``job_id`` ignores it)."""

    @property
    def job_id(self) -> str:
        return f"{self.benchmark}@T{self.t_ambient:g}@D{self.corner:g}"

    def resolve_netlist(self) -> Netlist:
        """Materialise the (deterministic, seeded) benchmark netlist."""
        # Imported lazily: workers resolve after fork/spawn.
        from repro.netlists.generator import generate_netlist
        from repro.netlists.vtr_suite import vtr_benchmark

        if self.netlist_spec is not None:
            return generate_netlist(self.netlist_spec)
        return vtr_benchmark(self.benchmark)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative sweep grid: benchmarks x ambients x corners.

    ``benchmarks`` entries are VTR benchmark names or explicit
    :class:`NetlistSpec` objects.  With ``config=None`` every benchmark
    uses its suite ``base_activity`` (matching the paper's per-design
    activities); an explicit config applies uniformly to every cell.
    """

    benchmarks: Tuple[BenchmarkLike, ...]
    ambients: Tuple[float, ...] = (25.0,)
    corners: Tuple[float, ...] = (25.0,)
    arch: ArchParams = field(default_factory=ArchParams)
    config: Optional[GuardbandConfig] = None
    seed: int = 7
    timing_driven: bool = False
    thermal_weight: float = 0.0
    """Thermal-aware placement blend applied to every cell's config (see
    :attr:`repro.core.guardband.GuardbandConfig.thermal_weight`).  A
    nonzero spec-level value overrides the per-cell configs so one knob
    turns the whole grid thermal-aware."""
    mode: str = "frequency"
    """Objective applied to every cell's config (see
    :attr:`repro.core.guardband.GuardbandConfig.mode`): ``"frequency"``
    maximises the guardbanded clock, ``"energy"`` scales the supply down
    at ``target_frequency_hz``.  Like ``thermal_weight``, a non-default
    spec-level value overrides the per-cell configs so one knob flips
    the whole grid's objective."""
    target_frequency_hz: Optional[float] = None
    """Iso-frequency clock for ``mode="energy"``, hertz; must stay
    ``None`` in frequency mode."""

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("ExperimentSpec needs at least one benchmark")
        if not (
            math.isfinite(self.thermal_weight) and self.thermal_weight >= 0.0
        ):
            raise ValueError(
                "thermal_weight must be finite and >= 0, "
                f"got {self.thermal_weight}"
            )
        if self.mode not in ("frequency", "energy"):
            raise ValueError(
                f'mode must be "frequency" or "energy", got {self.mode!r}'
            )
        if self.mode == "energy":
            if self.target_frequency_hz is None:
                raise ValueError(
                    'mode="energy" requires target_frequency_hz — the '
                    "iso-frequency clock (Hz) to close timing at while "
                    "scaling the supply down"
                )
            if not (
                math.isfinite(self.target_frequency_hz)
                and self.target_frequency_hz > 0.0
            ):
                raise ValueError(
                    "target_frequency_hz must be positive and finite, "
                    f"got {self.target_frequency_hz}"
                )
        elif self.target_frequency_hz is not None:
            raise ValueError(
                'target_frequency_hz is only meaningful with mode="energy" '
                "(the frequency objective derives the clock); got "
                f"target_frequency_hz={self.target_frequency_hz} with "
                f'mode="frequency"'
            )
        if not self.ambients or not self.corners:
            raise ValueError(
                "ExperimentSpec needs at least one ambient and one corner"
            )
        # NaN/inf would flow into store digests (NaN != NaN, so the
        # resulting cache entries could never be hit again) and into the
        # thermal solve; reject them at the declaration boundary.
        for name, values in (("ambients", self.ambients),
                             ("corners", self.corners)):
            for value in values:
                if not math.isfinite(value):
                    raise ValueError(
                        f"ExperimentSpec {name} must be finite numbers, "
                        f"got {value!r}"
                    )
        for bench in self.benchmarks:
            if isinstance(bench, str) and bench not in _VTR_BY_NAME:
                known = ", ".join(benchmark_names())
                raise ValueError(
                    f"unknown VTR benchmark {bench!r}; known: {known}"
                )

    @property
    def n_jobs(self) -> int:
        return len(self.benchmarks) * len(self.ambients) * len(self.corners)

    def _job_config(self, bench: BenchmarkLike) -> GuardbandConfig:
        if self.config is not None:
            config = self.config
        elif isinstance(bench, NetlistSpec):
            config = GuardbandConfig(base_activity=bench.base_activity)
        else:
            config = GuardbandConfig(
                base_activity=_VTR_BY_NAME[bench].base_activity
            )
        if self.thermal_weight != 0.0:
            config = config.with_changes(thermal_weight=self.thermal_weight)
        if self.mode != "frequency":
            config = config.with_changes(
                mode=self.mode,
                target_frequency_hz=self.target_frequency_hz,
            )
        return config

    def expand(self) -> List[SweepJob]:
        """Flatten the grid, benchmark-major so workers hitting the same
        design queue on one flow-cache lock instead of re-placing it."""
        jobs: List[SweepJob] = []
        for bench in self.benchmarks:
            name = bench.name if isinstance(bench, NetlistSpec) else bench
            spec = bench if isinstance(bench, NetlistSpec) else None
            config = self._job_config(bench)
            for corner in self.corners:
                for t_ambient in self.ambients:
                    jobs.append(
                        SweepJob(
                            benchmark=name,
                            t_ambient=float(t_ambient),
                            corner=float(corner),
                            config=config,
                            arch=self.arch,
                            seed=self.seed,
                            timing_driven=self.timing_driven,
                            netlist_spec=spec,
                        )
                    )
        return jobs
