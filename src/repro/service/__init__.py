"""repro.service — the distributed sweep service.

One scheduler (:class:`SweepScheduler`) turns client-submitted
:class:`~repro.runner.spec.ExperimentSpec` grids into store-digest work
items, serves already-persisted cells straight from
:class:`~repro.store.ResultStore` (zero Algorithm 1 executions on a
repeat query), dedups cells concurrently requested by multiple clients,
and dispatches the rest to the sweep engine's process pool.  A thin
asyncio HTTP front end (:class:`SweepServer`, ``python -m repro serve``)
exposes it over the versioned ``/v1`` wire API
(:mod:`repro.service.wire`); :class:`SweepClient` is the matching client
— HTTP against a server, or fully in-process with no server at all.
"""

from repro.service.client import ServiceError, SweepClient
from repro.service.events import EventBroker, ObserveBridge
from repro.service.scheduler import SweepScheduler
from repro.service.wire import (
    WIRE_KINDS,
    WIRE_SCHEMA_VERSION,
    WireError,
    from_wire,
    to_wire,
    wire_field_names,
)

__all__ = [
    "EventBroker",
    "ObserveBridge",
    "ServiceError",
    "SweepClient",
    "SweepScheduler",
    "WIRE_KINDS",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "from_wire",
    "to_wire",
    "wire_field_names",
]


def __getattr__(name: str) -> object:
    # SweepServer pulls in the HTTP stack; load it on first touch.
    if name == "SweepServer":
        from repro.service.http import SweepServer

        return SweepServer
    raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
