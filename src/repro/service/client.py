"""`SweepClient` — one client API over two transports.

``SweepClient(url="http://host:port")`` talks the ``/v1`` wire API of a
running ``python -m repro serve`` (stdlib ``urllib`` — no new
dependencies).  ``SweepClient(store="runs/store")`` needs no server at
all: it hosts a private :class:`~repro.service.scheduler.SweepScheduler`
on a background event-loop thread, so the submit/status/stream/result
surface — and the store-first, dedup-always semantics behind it — are
identical either way.  Code written against the client moves from a
notebook to a shared service by changing the constructor argument.

    with SweepClient(store="runs/store", workers=4) as client:
        job_id = client.submit(spec)
        for event in client.stream(job_id):
            print(event["name"])
        cells = client.result(job_id)["cells"]
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.observe.clock import monotonic
from repro.runner.spec import ExperimentSpec
from repro.service.wire import to_wire

_DONE = object()
_TERMINAL = ("done", "failed")


class ServiceError(RuntimeError):
    """A service-side rejection or failure, surfaced with its diagnostic."""


class _HttpTransport:
    """The ``/v1`` wire API over stdlib urllib."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.base = url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as rsp:
                return json.loads(rsp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                payload = json.loads(detail)
                detail = f"{payload.get('error')}: {payload.get('message')}"
            except json.JSONDecodeError:
                pass
            raise ServiceError(
                f"{method} {path} -> {error.code}: {detail}"
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach sweep service at {self.base}: {error.reason}"
            ) from None

    def submit(self, spec: ExperimentSpec) -> str:
        return str(self._request("POST", "/v1/jobs", to_wire(spec))["job_id"])

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def stream(self, job_id: str) -> Iterator[dict]:
        request = urllib.request.Request(
            f"{self.base}/v1/jobs/{job_id}/events"
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"GET /v1/jobs/{job_id}/events -> {error.code}"
            ) from None
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def close(self) -> None:
        pass


class _InProcessTransport:
    """A private scheduler on a background event-loop thread.

    The loop thread owns the scheduler, the event broker and the
    process's :mod:`repro.observe` session — matching the serve CLI's
    threading model, where all service-side observe emission happens on
    one thread.  Callers marshal in via ``run_coroutine_threadsafe`` and
    stream out through a plain queue.
    """

    def __init__(
        self,
        store: Union[str, Path],
        workers: int = 2,
        max_retries: Optional[int] = None,
        batch: bool = True,
        trace_path: Optional[str] = None,
    ) -> None:
        # Deferred: the scheduler pulls in the whole runner engine; keep
        # `import repro.service.client` itself light.
        from repro.runner.engine import DEFAULT_MAX_RETRIES
        from repro.service.scheduler import SweepScheduler
        from repro.store import open_store

        self._scheduler = SweepScheduler(
            open_store(store),
            workers=workers,
            max_retries=(
                DEFAULT_MAX_RETRIES if max_retries is None else max_retries
            ),
            batch=batch,
        )
        self._trace_path = trace_path
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-sweep-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise ServiceError(
                f"in-process sweep service failed to start: {self._failure}"
            )

    def _run(self) -> None:
        try:
            # Sink construction opens/truncates the trace file — do that
            # synchronous IO here, before the event loop exists, so no
            # blocking call ever runs on the loop thread.
            sink = self._build_sink()
            asyncio.run(self._main(sink))
        except BaseException as error:  # surface startup failures
            self._failure = error
            self._ready.set()

    def _build_sink(self) -> "Sink":
        from repro.observe.sinks import FanoutSink, JsonlSink, Sink
        from repro.service.events import ObserveBridge

        sinks: List[Sink] = []
        if self._trace_path is not None:
            sinks.append(JsonlSink(self._trace_path))
        sinks.append(ObserveBridge(self._scheduler.broker))
        return FanoutSink(sinks)

    async def _main(self, sink: "Sink") -> None:
        from repro import observe

        with observe.enabled(sink=sink):
            self._scheduler.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self._scheduler.close()

    def _loop_or_fail(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise ServiceError("in-process sweep service is not running")
        return self._loop

    def submit(self, spec: ExperimentSpec) -> str:
        future = asyncio.run_coroutine_threadsafe(
            self._scheduler.submit(spec), self._loop_or_fail()
        )
        return str(future.result())

    def _snapshot(self, job_id: str, want_cells: bool) -> dict:
        # Job state is mutated only on the loop thread; read it there.
        async def read() -> Optional[dict]:
            if want_cells:
                return self._scheduler.result(job_id)
            return self._scheduler.status(job_id)

        snapshot = asyncio.run_coroutine_threadsafe(
            read(), self._loop_or_fail()
        ).result()
        if snapshot is None:
            raise ServiceError(f"no job {job_id!r} on this service")
        return snapshot

    def status(self, job_id: str) -> dict:
        return self._snapshot(job_id, want_cells=False)

    def result(self, job_id: str) -> dict:
        return self._snapshot(job_id, want_cells=True)

    def stream(self, job_id: str) -> Iterator[dict]:
        if not self._scheduler.broker.knows(job_id):
            raise ServiceError(f"no job {job_id!r} on this service")
        records: "queue.Queue[object]" = queue.Queue()

        async def pump() -> None:
            try:
                async for record in self._scheduler.broker.stream(job_id):
                    records.put(record)
            finally:
                records.put(_DONE)

        asyncio.run_coroutine_threadsafe(pump(), self._loop_or_fail())
        while True:
            record = records.get()
            if record is _DONE:
                return
            yield record  # type: ignore[misc]

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            stop = self._stop
            self._loop.call_soon_threadsafe(stop.set)
            self._thread.join(timeout=30.0)


class SweepClient:
    """Submit sweeps, watch progress, fetch results — HTTP or in-process.

    Exactly one of ``url`` (a ``repro serve`` endpoint) or ``store`` (a
    result-store directory to host an in-process service on) must be
    given.  ``workers``/``max_retries``/``batch``/``trace_path``
    configure the in-process scheduler and are rejected with ``url``
    (the server chose them at startup).
    """

    def __init__(
        self,
        url: Optional[str] = None,
        store: Union[str, Path, None] = None,
        workers: int = 2,
        max_retries: Optional[int] = None,
        batch: bool = True,
        trace_path: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        if (url is None) == (store is None):
            raise ValueError("pass exactly one of url= or store=")
        if url is not None:
            if trace_path is not None:
                raise ValueError(
                    "trace_path configures the in-process service; against "
                    "a server, pass --trace to `repro serve` instead"
                )
            self._transport: Union[_HttpTransport, _InProcessTransport] = (
                _HttpTransport(url, timeout=timeout)
            )
        else:
            assert store is not None
            self._transport = _InProcessTransport(
                store, workers=workers, max_retries=max_retries,
                batch=batch, trace_path=trace_path,
            )

    def submit(self, spec: ExperimentSpec) -> str:
        """Submit one grid; returns the service job id immediately."""
        return self._transport.submit(spec)

    def status(self, job_id: str) -> Dict[str, object]:
        """Progress counters and status (terminal: "done"/"failed")."""
        return self._transport.status(job_id)

    def result(self, job_id: str) -> Dict[str, object]:
        """Status plus every terminal cell record accumulated so far."""
        return self._transport.result(job_id)

    def stream(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Iterate the job's event stream: history first, then live
        until the job finishes."""
        return self._transport.stream(job_id)

    def wait(
        self, job_id: str, timeout: Optional[float] = None,
        poll_seconds: float = 0.1,
    ) -> Dict[str, object]:
        """Block until the job is terminal; returns the final result."""
        deadline = None if timeout is None else monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in _TERMINAL:
                return self.result(job_id)
            if deadline is not None and monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll_seconds)

    def close(self) -> None:
        """Shut down an in-process service (no-op for HTTP clients)."""
        self._transport.close()

    def __enter__(self) -> "SweepClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
