"""Per-job progress streams, bridged from :mod:`repro.observe`.

The scheduler publishes one record per cell lifecycle transition
(accepted / completed / failed / job-done) into an :class:`EventBroker`;
HTTP subscribers and in-process clients read them back as an ordered
stream per service job.  Two paths feed the broker:

- the scheduler publishes its own ``service.*`` records directly (so
  streaming works even with observability disabled);
- :class:`ObserveBridge` is a :class:`repro.observe.Sink` the serve loop
  installs (fanned out alongside the JSONL trace sink): every observe
  record whose attributes carry a ``jobs`` tag — ``sweep.cell`` spans,
  ``sweep.cell_skipped`` and ``store.*`` events the scheduler emits — is
  forwarded to exactly those jobs' subscribers.  One happening reaches a
  subscriber once: the scheduler never emits the same record on both
  paths.

The broker archives every record per job, so a subscriber that attaches
after (or during) a job still sees the full ordered history before the
live tail; a ``None`` sentinel terminates each stream once the job is
finished and its history replayed.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Set, Tuple

from repro.observe.sinks import Sink

_MAX_ARCHIVE_PER_JOB = 10_000
"""Safety valve: a pathological job cannot grow its archive unboundedly;
overflow is summarised in one marker record instead."""


class EventBroker:
    """Fan records out to per-job subscriber queues, with history replay.

    Single-loop discipline: every method except :meth:`write` (the
    observe-sink entry point, which trampolines through
    ``call_soon_threadsafe``) must run on the loop the broker is bound
    to.
    """

    def __init__(self) -> None:
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._archive: Dict[str, List[dict]] = {}
        self._finished: Set[str] = set()
        self._queues: Dict[str, List[asyncio.Queue]] = {}

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    # -- publishing -------------------------------------------------------

    def open_job(self, job_id: str) -> None:
        self._archive.setdefault(job_id, [])

    def publish(self, jobs: Tuple[str, ...], record: dict) -> None:
        """Deliver ``record`` to every subscriber of each job, in order."""
        for job_id in jobs:
            if job_id not in self._archive:
                continue
            archive = self._archive[job_id]
            if len(archive) == _MAX_ARCHIVE_PER_JOB:
                archive.append(
                    {"type": "event", "name": "service.stream_truncated",
                     "attrs": {"jobs": [job_id]}}
                )
            if len(archive) <= _MAX_ARCHIVE_PER_JOB:
                archive.append(record)
            for queue in self._queues.get(job_id, ()):
                queue.put_nowait(record)

    def finish_job(self, job_id: str) -> None:
        """No further records for ``job_id``; close live streams."""
        self._finished.add(job_id)
        for queue in self._queues.pop(job_id, ()):
            queue.put_nowait(None)

    # -- subscribing ------------------------------------------------------

    def knows(self, job_id: str) -> bool:
        return job_id in self._archive

    async def stream(self, job_id: str):
        """Async-iterate the job's records: full history, then the live
        tail, ending when the job finishes."""
        history = list(self._archive.get(job_id, ()))
        queue: Optional[asyncio.Queue] = None
        if job_id not in self._finished:
            queue = asyncio.Queue()
            self._queues.setdefault(job_id, []).append(queue)
        for record in history:
            yield record
        if queue is None:
            return
        try:
            while True:
                record = await queue.get()
                if record is None:
                    return
                yield record
        finally:
            subscribers = self._queues.get(job_id)
            if subscribers and queue in subscribers:
                subscribers.remove(queue)


class ObserveBridge(Sink):
    """Observe sink forwarding job-tagged records into the broker.

    Install via :class:`repro.observe.FanoutSink` next to the JSONL
    trace sink.  Records without a ``jobs`` attribute (engine internals,
    worker spans) stay trace-only; ones the scheduler tags reach the
    jobs' live streams.  ``write`` may be called from any thread — it
    trampolines onto the broker's loop.
    """

    def __init__(self, broker: EventBroker) -> None:
        self.broker = broker

    def write(self, record: Dict[str, object]) -> None:
        attrs = record.get("attrs")
        if not isinstance(attrs, dict):
            return
        jobs = attrs.get("jobs")
        if not isinstance(jobs, (list, tuple)) or not jobs:
            return
        loop = self.broker._loop
        targets = tuple(str(j) for j in jobs)
        try:
            running: Optional[asyncio.AbstractEventLoop] = (
                asyncio.get_running_loop()
            )
        except RuntimeError:
            running = None
        if loop is None or running is loop or not loop.is_running():
            # On the broker's own loop (the scheduler emitting mid-step),
            # publish synchronously: deferring through the call queue
            # would land the record *after* a finish_job issued later in
            # the same step, past the stream's closing sentinel.
            self.broker.publish(targets, dict(record))
            return
        loop.call_soon_threadsafe(self.broker.publish, targets, dict(record))

    def close(self) -> None:  # records are the broker's to keep
        pass
