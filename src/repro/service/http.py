"""Asyncio HTTP front end for the sweep scheduler.

Stdlib-only (``asyncio`` streams + hand-rolled HTTP/1.1 framing — no new
dependencies), versioned under ``/v1``:

- ``GET  /v1/health`` — liveness, wire schema version, store root.
- ``POST /v1/jobs`` — submit a wire-envelope
  :class:`~repro.runner.spec.ExperimentSpec`
  (:func:`repro.service.wire.to_wire`); returns ``202`` with the job id.
  A malformed envelope is a ``400`` carrying the
  :class:`~repro.service.wire.WireError` diagnostic, never a traceback.
- ``GET  /v1/jobs/<id>`` — progress counters and terminal status.
- ``GET  /v1/jobs/<id>/result`` — status plus every terminal cell
  record accumulated so far (complete when ``status`` is terminal).
- ``GET  /v1/jobs/<id>/events`` — NDJSON stream: the job's full event
  history, then the live tail until the job finishes
  (``Connection: close`` marks the end — one socket per stream).

Every response is JSON; errors are ``{"error": ..., "message": ...}``
objects with the matching 4xx/5xx status.  One connection serves one
request (``Connection: close``), which keeps the framing trivial and is
plenty for a lab-scale sweep service.
"""

from __future__ import annotations

import asyncio
import json
import traceback
from typing import Dict, Optional, Tuple

from repro import observe
from repro.runner.spec import ExperimentSpec
from repro.service.scheduler import SweepScheduler
from repro.service.wire import WIRE_SCHEMA_VERSION, WireError, from_wire

_MAX_BODY_BYTES = 8 * 1024 * 1024
_TOO_LARGE = b"__body_exceeds_max_bytes__"
"""Sentinel body: the request declared more than ``_MAX_BODY_BYTES``."""
_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response(
    status: int, payload: Dict[str, object], extra_headers: str = ""
) -> bytes:
    body = json.dumps(payload, sort_keys=False).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n{extra_headers}\r\n"
    )
    return head.encode("ascii") + body


def _error(status: int, error: str, message: str) -> bytes:
    return _response(status, {"error": error, "message": message})


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request: (method, path, body); ``None`` on EOF/garbage."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length > _MAX_BODY_BYTES:
        return method, path, _TOO_LARGE
    body = (
        await reader.readexactly(content_length) if content_length else b""
    )
    return method, path, body


class SweepServer:
    """One scheduler behind one listening socket."""

    def __init__(
        self, scheduler: SweepScheduler, host: str = "127.0.0.1",
        port: int = 8023,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when 0 was requested."""
        assert self._server is not None and self._server.sockets
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.close()

    # -- request handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            if body is _TOO_LARGE:
                writer.write(_error(
                    413, "PayloadTooLarge",
                    f"request body exceeds {_MAX_BODY_BYTES} bytes",
                ))
                return
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # one request must never kill the server
            # The full traceback goes to the operator's observe stream;
            # the client gets a structured, detail-free 500 (exception
            # text can leak paths, digests or config values).
            observe.event(
                "service.internal_error",
                error_type=type(error).__name__,
                traceback=traceback.format_exc(),
            )
            try:
                writer.write(_error(
                    500, "InternalError",
                    "unexpected server error; see the service trace",
                ))
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _route(
        self, method: str, path: str, body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/health" and method == "GET":
            writer.write(_response(200, {
                "ok": True,
                "wire_version": WIRE_SCHEMA_VERSION,
                "store": self.scheduler.store_path,
                "n_jobs": len(self.scheduler.jobs),
            }))
            return
        if path == "/v1/jobs" and method == "POST":
            await self._submit(body, writer)
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if method != "GET":
                writer.write(_error(
                    405, "MethodNotAllowed", f"{method} not allowed here"
                ))
                return
            if rest.endswith("/events"):
                await self._stream(rest[: -len("/events")], writer)
                return
            if rest.endswith("/result"):
                self._result(rest[: -len("/result")], writer)
                return
            self._status(rest, writer)
            return
        writer.write(_error(
            404, "NotFound",
            f"no route for {method} {path}; the API lives under /v1",
        ))

    async def _submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            writer.write(_error(
                400, "InvalidJSON", f"request body is not JSON: {error}"
            ))
            return
        try:
            spec = from_wire(doc)
        except WireError as error:
            writer.write(_error(400, "WireError", str(error)))
            return
        if not isinstance(spec, ExperimentSpec):
            writer.write(_error(
                400, "WrongKind",
                f"POST /v1/jobs takes an ExperimentSpec envelope, "
                f"got {type(spec).__name__}",
            ))
            return
        job_id = await self.scheduler.submit(spec)
        writer.write(_response(202, {
            "job_id": job_id,
            "status_url": f"/v1/jobs/{job_id}",
            "events_url": f"/v1/jobs/{job_id}/events",
            "result_url": f"/v1/jobs/{job_id}/result",
        }))

    def _status(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        status = self.scheduler.status(job_id)
        if status is None:
            writer.write(_error(
                404, "UnknownJob", f"no job {job_id!r} on this server"
            ))
            return
        writer.write(_response(200, status))

    def _result(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        result = self.scheduler.result(job_id)
        if result is None:
            writer.write(_error(
                404, "UnknownJob", f"no job {job_id!r} on this server"
            ))
            return
        writer.write(_response(200, result))

    async def _stream(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        if not self.scheduler.broker.knows(job_id):
            writer.write(_error(
                404, "UnknownJob", f"no job {job_id!r} on this server"
            ))
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        async for record in self.scheduler.broker.stream(job_id):
            writer.write(
                json.dumps(record, sort_keys=False, default=str)
                .encode("utf-8") + b"\n"
            )
            await writer.drain()
