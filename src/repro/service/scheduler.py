"""Asyncio sweep scheduler: dedup, store-first serving, pool dispatch.

The scheduler is the service's brain.  Clients submit
:class:`~repro.runner.spec.ExperimentSpec` grids; each grid cell is
identified by its **store digest** — the same content address
(:func:`repro.store.store_digest` over flow cache key x config x ambient
x corner) the sweep engine persists converged results under.  The digest
is computable *without* running place-and-route
(:func:`repro.cad.flow.flow_cache_key_for` hashes the netlist/arch/seed
identity directly), which is what makes scheduling decisions cheap:

- **store first** — a cell whose digest is already persisted is served
  straight from :class:`~repro.store.ResultStore` at cache-hit latency:
  one ``store.hit`` counter/event, one ``sweep.cell_skipped`` event
  (mirroring the engine's resume semantics), and *zero* ``sweep.cell``
  execution spans — the trace-level contract a repeat submission is
  audited against.
- **in-flight dedup** — a cell another client is already computing is
  *joined*, not recomputed: the late job subscribes to the running
  :class:`_Cell` and receives the same terminal record.  Two clients
  submitting overlapping grids concurrently compute each overlapping
  cell exactly once.
- **pool dispatch** — remaining cells are grouped into same-flow units
  (:func:`repro.runner.engine._batch_units`, PR 6's batch grouping) and
  executed on a ``ProcessPoolExecutor`` via the engine's own
  :func:`~repro.runner.engine._run_unit_in_worker`, so worker-side
  numerics, store writes and trace re-parenting are exactly the sweep
  engine's.

Fault tolerance mirrors the engine: retryable errors
(:data:`~repro.runner.engine.RETRYABLE_ERRORS`) get a bounded re-attempt
(:func:`~repro.runner.engine._retry_job` perturbs the placement seed for
routing congestion); a dead worker (``BrokenProcessPool``) rebuilds the
pool once per incident; anything that exhausts its budget marks the
cell — and every service job waiting on it — **failed**, never hung.

Threading model: scheduling decisions, observe emissions and broker
publishes all run on one asyncio event loop thread, so
:mod:`repro.observe`'s single-threaded session discipline holds.  The
one piece of blocking IO on the submission path — the store probe — is
batched through ``loop.run_in_executor`` using the instrumentation-free
:meth:`ResultStore.load`, and its ``store.hit``/``store.miss`` events
are replayed on the loop thread afterwards (the ``async-blocking`` lint
rule holds this invariant).  Pool workers attach their own observe
sessions through the propagated
:class:`~repro.observe.context.TraceContext`, exactly as the engine's
workers do.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from repro import observe
from repro.cad.flow import flow_cache_key_for
from repro.core.guardband import GuardbandResult
from repro.observe.clock import monotonic
from repro.runner.engine import (
    DEFAULT_MAX_RETRIES,
    RETRYABLE_ERRORS,
    _batch_units,
    _failure_from,
    _record_retry,
    _retry_job,
    _run_unit_in_worker,
)
from repro.runner.results import JobFailure, JobResult
from repro.runner.spec import ExperimentSpec, SweepJob
from repro.service.events import EventBroker
from repro.store import ResultStore, store_digest

JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

_FlowIdentity = Tuple[object, ...]


def _flow_identity(job: SweepJob) -> _FlowIdentity:
    """Everything that determines the cell's flow cache key."""
    return (job.benchmark, job.netlist_spec, job.arch, job.seed,
            job.timing_driven, job.config.thermal_weight)


def _hit_record(job: SweepJob, result: GuardbandResult) -> Dict[str, object]:
    """Cell record for a store-served hit.

    A stored :class:`GuardbandResult` does not carry the worst-case
    baseline (that is a property of the placed flow, not of the fixed
    point), so ``worst_case_hz``/``gain`` are absent from store-served
    records; fetch them from a computed record or re-derive from the
    flow when needed.
    """
    return {
        "job_id": job.job_id,
        "benchmark": job.benchmark,
        "t_ambient": job.t_ambient,
        "corner": job.corner,
        "frequency_hz": result.frequency_hz,
        "iterations": result.iterations,
        "total_power_w": result.total_power_w,
        "max_tile_celsius": float(result.tile_temperatures.max()),
        "mean_tile_celsius": float(result.tile_temperatures.mean()),
        "warm_started": result.warm_started,
        "source": "store",
        "ok": True,
    }


def _computed_record(
    outcome: Union[JobResult, JobFailure]
) -> Dict[str, object]:
    record = outcome.to_record()
    record["source"] = "computed"
    record["ok"] = isinstance(outcome, JobResult)
    return record


@dataclass
class _Cell:
    """One in-flight grid cell, shared by every job that wants it."""

    digest: str
    job: SweepJob
    """Representative sweep job — identical cells agree on everything
    the digest covers, so any submitter's expansion will do."""
    subscribers: Set[str] = field(default_factory=set)
    """Service job ids waiting on this cell."""
    record: Optional[Dict[str, object]] = None
    started: float = 0.0


@dataclass
class _Job:
    """One client submission: a spec and the cells it resolved to."""

    job_id: str
    spec: ExperimentSpec
    n_cells: int
    status: str = JOB_RUNNING
    n_done: int = 0
    n_failed: int = 0
    n_store_hits: int = 0
    n_deduped: int = 0
    records: List[Dict[str, object]] = field(default_factory=list)
    submitted: float = 0.0
    finished: Optional[float] = None

    def to_status(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "n_cells": self.n_cells,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_store_hits": self.n_store_hits,
            "n_deduped": self.n_deduped,
        }


class SweepScheduler:
    """Digest-deduplicating sweep scheduler over one result store.

    Construct on (or bind to — see :meth:`start`) the serving event
    loop.  ``store`` must be directory-backed: pool workers open their
    own handle onto the shared root, exactly as the sweep engine's
    workers do.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        max_retries: int = DEFAULT_MAX_RETRIES,
        batch: bool = True,
        broker: Optional[EventBroker] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.store = store
        self.store_path = str(store.root)  # raises for non-directory backends
        self.workers = workers
        self.max_retries = max_retries
        self.batch = batch
        self.broker = broker if broker is not None else EventBroker()
        self.jobs: Dict[str, _Job] = {}
        self._inflight: Dict[str, _Cell] = {}
        self._flow_keys: Dict[_FlowIdentity, str] = {}
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._next_job = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Bind to the running loop and warm the worker pool."""
        self._loop = asyncio.get_running_loop()
        self.broker.bind(self._loop)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)

    async def close(self) -> None:
        """Cancel outstanding dispatches and release the pool."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    # -- digests ----------------------------------------------------------

    def digest_for(self, job: SweepJob) -> str:
        """The cell's store digest, without running place-and-route.

        The flow cache key is a pure hash of the resolved netlist,
        architecture and seed (:func:`flow_cache_key_for` folds
        ``timing_driven`` in exactly as ``run_flow`` does), memoized per
        flow identity — expanding a thousand-cell grid costs one netlist
        resolution per distinct design, not per cell.
        """
        identity = _flow_identity(job)
        flow_key = self._flow_keys.get(identity)
        if flow_key is None:
            netlist = job.resolve_netlist()
            flow_key = flow_cache_key_for(
                netlist, job.arch, job.seed, job.timing_driven,
                job.config.thermal_weight,
            )
            self._flow_keys[identity] = flow_key
        return store_digest(flow_key, job.config, job.t_ambient, job.corner)

    # -- submission -------------------------------------------------------

    async def submit(self, spec: ExperimentSpec) -> str:
        """Accept one grid; returns the service job id immediately.

        Every cell is resolved to exactly one of three fates before this
        returns: served from the store, joined onto an in-flight
        computation, or dispatched to the pool.  Progress then streams
        through the broker until the job reaches a terminal status.
        """
        if self._loop is None:
            self.start()
        self._next_job += 1
        job_id = f"job-{self._next_job:04d}"
        sweep_jobs = spec.expand()
        job = _Job(
            job_id=job_id,
            spec=spec,
            n_cells=len(sweep_jobs),
            submitted=monotonic(),
        )
        self.jobs[job_id] = job
        self.broker.open_job(job_id)
        self._publish(
            (job_id,), "service.job_accepted",
            job_id=job_id, n_cells=len(sweep_jobs),
        )

        to_probe: List[Tuple[SweepJob, str]] = []
        for sweep_job in sweep_jobs:
            digest = self.digest_for(sweep_job)
            cell = self._inflight.get(digest)
            if cell is not None:
                # Another client's identical cell is mid-computation:
                # join it instead of paying for a second Algorithm 1 run.
                cell.subscribers.add(job_id)
                job.n_deduped += 1
                self._publish(
                    (job_id,), "service.cell_deduplicated",
                    job_id=job_id, cell=sweep_job.job_id, digest=digest,
                )
                continue
            # Register *before* the store probe leaves the loop: a
            # submit racing us during the await below must join this
            # cell, not double-compute it.  Store hits pop the cell
            # again (and pay out to any joiner) in _serve_from_store.
            self._inflight[digest] = _Cell(
                digest=digest,
                job=sweep_job,
                subscribers={job_id},
                started=monotonic(),
            )
            to_probe.append((sweep_job, digest))

        to_run = await self._serve_from_store(job, to_probe)

        units = _batch_units(to_run) if self.batch else [[j] for j in to_run]
        for unit in units:
            task = asyncio.ensure_future(self._run_unit(unit))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        self._maybe_finish(job)
        return job_id

    # -- store-first serving ----------------------------------------------

    async def _serve_from_store(
        self, job: "_Job", cells: List[Tuple[SweepJob, str]]
    ) -> List[SweepJob]:
        """Serve already-persisted cells; returns those still to compute.

        ``ResultStore`` reads are locked pickle IO and must never run on
        the event loop (the ``async-blocking`` lint invariant): one
        thread-executor round trip probes every candidate digest via the
        instrumentation-free :meth:`ResultStore.load`, then the
        ``store.hit``/``store.miss`` events are replayed on the loop
        thread, preserving :mod:`repro.observe`'s single-threaded
        session discipline.  Cells were registered in ``_inflight``
        before the await, so a hit pays out to every subscriber that
        joined while the probe was in flight.
        """
        if not cells:
            return []
        assert self._loop is not None
        digests = [digest for _, digest in cells]
        try:
            loaded = await self._loop.run_in_executor(
                None, self._probe_store, digests
            )
        except Exception as error:
            # A failed probe round must not wedge the grid: treat every
            # cell as a miss and let the compute path (which converts
            # its own failures into JobFailure records) sort it out.
            observe.event(
                "service.store_probe_failed",
                error_type=type(error).__name__,
                n_cells=len(cells),
            )
            loaded = [(None, "")] * len(cells)
        to_run: List[SweepJob] = []
        for (sweep_job, digest), (stored, kind) in zip(cells, loaded):
            if kind:
                self.store.record_access(kind, digest)
            if stored is None:
                to_run.append(sweep_job)
                continue
            cell = self._inflight.pop(digest, None)
            subscribers = sorted(cell.subscribers) if cell else [job.job_id]
            job.n_store_hits += 1
            observe.counter("sweep.cells.skipped").inc()
            observe.event(
                "sweep.cell_skipped",
                job_id=sweep_job.job_id,
                source="store",
                jobs=subscribers,
            )
            record = _hit_record(sweep_job, stored)
            for subscriber in subscribers:
                sub_job = self.jobs.get(subscriber)
                if sub_job is not None:
                    self._deliver(sub_job, record)
        return to_run

    def _probe_store(
        self, digests: List[str]
    ) -> List[Tuple[Optional[GuardbandResult], str]]:
        """Blocking store reads, batched; runs on an executor thread."""
        return [self.store.load(digest) for digest in digests]

    # -- execution --------------------------------------------------------

    async def _run_unit(self, unit: List[SweepJob]) -> None:
        """Drive one work unit to per-cell terminal records."""
        assert self._loop is not None and self._pool is not None
        context = observe.propagation_context()
        attempt_unit = unit
        attempts = 0
        started = monotonic()
        while True:
            attempts += 1
            try:
                outcomes = await self._loop.run_in_executor(
                    self._pool, _run_unit_in_worker,
                    attempt_unit, context, self.store_path,
                )
                outcomes = [
                    replace(outcome, attempts=attempts)
                    for outcome in outcomes
                ]
                break
            except asyncio.CancelledError:
                raise
            except BrokenProcessPool as error:
                # A dead worker poisons the whole pool; rebuild it so
                # other in-flight units (which will fail the same way
                # and retry here) find a healthy one.
                self._rebuild_pool()
                if attempts <= self.max_retries:
                    for job in attempt_unit:
                        _record_retry(job, attempts, error)
                    continue
                outcomes = [
                    _failure_from(job, error, attempts, started)
                    for job in unit
                ]
                break
            except Exception as error:
                if (
                    isinstance(error, RETRYABLE_ERRORS)
                    and attempts <= self.max_retries
                ):
                    for job in attempt_unit:
                        _record_retry(job, attempts, error)
                    attempt_unit = [
                        _retry_job(job, error) for job in attempt_unit
                    ]
                    continue
                outcomes = [
                    _failure_from(job, error, attempts, started)
                    for job in unit
                ]
                break
        for original, outcome in zip(unit, outcomes):
            self._complete_cell(original, outcome)

    def _complete_cell(
        self, sweep_job: SweepJob, outcome: Union[JobResult, JobFailure]
    ) -> None:
        """Record one terminal cell and fan it out to its subscribers."""
        digest = self.digest_for(sweep_job)
        cell = self._inflight.pop(digest, None)
        subscribers: Tuple[str, ...] = (
            tuple(sorted(cell.subscribers)) if cell is not None else ()
        )
        ok = isinstance(outcome, JobResult)
        observe.counter("sweep.jobs.ok" if ok else "sweep.jobs.failed").inc()
        # The service-side ``sweep.cell`` execution span: one per
        # *computed* cell (store hits and dedup joins never emit one),
        # tagged with every subscribed service job so the bridge streams
        # it to each.  ``python -m repro.observe report`` counts exactly
        # these spans as executed cells.
        observe.emit_span(
            "sweep.cell",
            duration_s=outcome.wall_seconds,
            status="ok" if ok else "error",
            job_id=outcome.job_id,
            benchmark=outcome.benchmark,
            attempts=outcome.attempts,
            jobs=list(subscribers),
            **(
                {}
                if ok
                else {"error_type": outcome.error_type}  # type: ignore[union-attr]
            ),
        )
        record = _computed_record(outcome)
        for job_id in subscribers:
            job = self.jobs.get(job_id)
            if job is None:
                continue
            if not ok:
                job.n_failed += 1
            self._deliver(job, record)

    # -- bookkeeping ------------------------------------------------------

    def _deliver(self, job: _Job, record: Dict[str, object]) -> None:
        job.records.append(record)
        job.n_done += 1
        self._maybe_finish(job)

    def _maybe_finish(self, job: _Job) -> None:
        if job.status != JOB_RUNNING or job.n_done < job.n_cells:
            return
        job.status = JOB_FAILED if job.n_failed else JOB_DONE
        job.finished = monotonic()
        self._publish(
            (job.job_id,), "service.job_finished",
            job_id=job.job_id,
            status=job.status,
            n_done=job.n_done,
            n_failed=job.n_failed,
            n_store_hits=job.n_store_hits,
            n_deduped=job.n_deduped,
            wall_seconds=job.finished - job.submitted,
        )
        self.broker.finish_job(job.job_id)

    def _publish(
        self, jobs: Tuple[str, ...], name: str, **attrs: object
    ) -> None:
        """Service-level lifecycle record: straight to the broker (so
        job streams work even with observability disabled) and, when a
        session is active, into the trace as an untagged event (no
        ``jobs`` attr — the bridge must not deliver it a second time).
        """
        self.broker.publish(
            jobs, {"type": "event", "name": name, "attrs": dict(attrs)}
        )
        observe.event(name, **attrs)

    # -- queries ----------------------------------------------------------

    def status(self, job_id: str) -> Optional[Dict[str, object]]:
        job = self.jobs.get(job_id)
        return None if job is None else job.to_status()

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        """Current snapshot: status plus every terminal cell record."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        payload = job.to_status()
        payload["cells"] = list(job.records)
        return payload
