"""Versioned wire schema for the sweep service.

Every payload that crosses the service boundary — an
:class:`~repro.runner.spec.ExperimentSpec` submitted by a client, the
:class:`~repro.arch.params.ArchParams` / :class:`~repro.core.guardband.
GuardbandConfig` / :class:`~repro.netlists.generator.NetlistSpec` values
nested inside it — travels as a self-describing JSON envelope::

    {"kind": "ExperimentSpec", "wire_version": 1, "payload": {...}}

:func:`to_wire` encodes, :func:`from_wire` decodes, and the round trip
is exact: ``from_wire(to_wire(x)) == x`` for every supported type
(tuples come back as tuples, nested specs as frozen dataclasses, and
``__post_init__`` validation re-runs on decode, so a decoded value is
as trustworthy as a locally constructed one).

Versioning policy:

- :data:`WIRE_SCHEMA_VERSION` names the *field-set semantics* of every
  wire class at once.  Adding, removing or renaming a field of any wire
  class requires a bump — enforced by the ``cache-key`` lint rule
  against the committed ``wire_manifest.json``, exactly as the store
  digest is policed via ``store_manifest.json``.
- Decoders reject an unknown version outright (a v2 client talking to a
  v1 server gets an actionable error, never a silently dropped field),
  and reject unknown payload fields by name — a typo'd or
  future-version field fails loudly instead of reverting to a default.

Unsupported-on-the-wire configuration is also rejected explicitly: a
``GuardbandConfig`` carrying a non-default :class:`ThermalPackage` is
encodable, but exotic objects smuggled into payload slots are not.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.arch.params import ArchParams
from repro.core.guardband import GuardbandConfig
from repro.netlists.generator import NetlistSpec
from repro.runner.spec import ExperimentSpec
from repro.thermal.package import ThermalPackage

WIRE_SCHEMA_VERSION = 3
"""Bump whenever the field set (or meaning) of any wire class changes.

The version travels in every envelope; decoders reject anything else.
Enforced against the committed ``repro/analysis/wire_manifest.json`` by
the ``cache-key`` lint rule, mirroring the store-digest discipline.

Version 2: ``thermal_weight`` joined both ``GuardbandConfig`` and
``ExperimentSpec`` (thermal-aware placement).  A v1 receiver would
silently drop the knob and place wirelength-only — exactly the
reinterpretation the version gate exists to refuse.

Version 3: ``mode`` / ``target_frequency_hz`` joined both
``GuardbandConfig`` and ``ExperimentSpec`` (energy objective).  A v2
receiver would drop the objective and run the frequency loop at nominal
supply — a silent change of what the sweep *means*, so the gate must
refuse it.
"""


class WireError(ValueError):
    """A wire document could not be decoded (or a value encoded).

    The message is the contract: it names the offending kind, version or
    field(s) and what the receiver actually supports, so a failing
    client can be fixed from the error alone.
    """


_Scalar = (bool, int, float, str, type(None))


def _encode_scalar_payload(obj: Any) -> Dict[str, Any]:
    """Field dict of a flat dataclass whose fields are all JSON scalars."""
    payload: Dict[str, Any] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
            payload[f.name] = value
        elif isinstance(value, float):
            payload[f.name] = float(value)
        else:
            raise WireError(
                f"{type(obj).__name__}.{f.name} value {value!r} is not "
                "wire-encodable (expected a JSON scalar)"
            )
    return payload


def _check_fields(
    kind: str, payload: Dict[str, Any], cls: Type[Any]
) -> None:
    """Reject payload keys that are not fields of ``cls`` — by name."""
    if not isinstance(payload, dict):
        raise WireError(
            f"{kind} payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise WireError(
            f"{kind} (wire version {WIRE_SCHEMA_VERSION}) does not define "
            f"field(s) {', '.join(repr(n) for n in unknown)}; known fields: "
            f"{', '.join(sorted(known))}.  A newer sender must not assume "
            "this receiver silently ignores fields — bump handling "
            "explicitly or upgrade the receiver."
        )


def _construct(kind: str, cls: Type[Any], payload: Dict[str, Any]) -> Any:
    """Build the dataclass; validation errors become actionable WireErrors."""
    try:
        return cls(**payload)
    except TypeError as error:
        raise WireError(f"{kind} payload is incomplete: {error}") from error
    except ValueError as error:
        raise WireError(f"{kind} payload is invalid: {error}") from error


# --- per-class codecs ----------------------------------------------------


def _encode_arch(arch: ArchParams) -> Dict[str, Any]:
    return _encode_scalar_payload(arch)


def _decode_arch(payload: Dict[str, Any]) -> ArchParams:
    _check_fields("ArchParams", payload, ArchParams)
    return _construct("ArchParams", ArchParams, payload)


def _encode_netlist_spec(spec: NetlistSpec) -> Dict[str, Any]:
    return _encode_scalar_payload(spec)


def _decode_netlist_spec(payload: Dict[str, Any]) -> NetlistSpec:
    _check_fields("NetlistSpec", payload, NetlistSpec)
    return _construct("NetlistSpec", NetlistSpec, payload)


def _encode_package(package: ThermalPackage) -> Dict[str, Any]:
    return _encode_scalar_payload(package)


def _decode_package(payload: Dict[str, Any]) -> ThermalPackage:
    _check_fields("ThermalPackage", payload, ThermalPackage)
    return _construct("ThermalPackage", ThermalPackage, payload)


def _encode_config(config: GuardbandConfig) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if f.name == "package":
            payload[f.name] = None if value is None else to_wire(value)
        elif isinstance(value, _Scalar):
            payload[f.name] = value
        else:
            raise WireError(
                f"GuardbandConfig.{f.name} value {value!r} is not "
                "wire-encodable"
            )
    return payload


def _decode_config(payload: Dict[str, Any]) -> GuardbandConfig:
    _check_fields("GuardbandConfig", payload, GuardbandConfig)
    decoded = dict(payload)
    if decoded.get("package") is not None:
        package = from_wire(decoded["package"])
        if not isinstance(package, ThermalPackage):
            raise WireError(
                "GuardbandConfig.package must be a ThermalPackage "
                f"envelope, got kind {type(package).__name__!r}"
            )
        decoded["package"] = package
    return _construct("GuardbandConfig", GuardbandConfig, decoded)


def _encode_experiment(spec: ExperimentSpec) -> Dict[str, Any]:
    benchmarks: List[Any] = []
    for bench in spec.benchmarks:
        if isinstance(bench, str):
            benchmarks.append(bench)
        elif isinstance(bench, NetlistSpec):
            benchmarks.append(to_wire(bench))
        else:
            raise WireError(
                f"ExperimentSpec benchmark {bench!r} is neither a VTR name "
                "nor a NetlistSpec"
            )
    return {
        "benchmarks": benchmarks,
        "ambients": [float(t) for t in spec.ambients],
        "corners": [float(c) for c in spec.corners],
        "arch": to_wire(spec.arch),
        "config": None if spec.config is None else to_wire(spec.config),
        "seed": spec.seed,
        "timing_driven": spec.timing_driven,
        "thermal_weight": float(spec.thermal_weight),
        "mode": spec.mode,
        "target_frequency_hz": (
            None
            if spec.target_frequency_hz is None
            else float(spec.target_frequency_hz)
        ),
    }


def _decode_experiment(payload: Dict[str, Any]) -> ExperimentSpec:
    _check_fields("ExperimentSpec", payload, ExperimentSpec)
    decoded = dict(payload)
    if "benchmarks" in decoded:
        raw = decoded["benchmarks"]
        if not isinstance(raw, (list, tuple)):
            raise WireError(
                "ExperimentSpec.benchmarks must be a list of VTR names "
                "and/or NetlistSpec envelopes"
            )
        benches: List[Any] = []
        for bench in raw:
            if isinstance(bench, str):
                benches.append(bench)
            elif isinstance(bench, dict):
                nested = from_wire(bench)
                if not isinstance(nested, NetlistSpec):
                    raise WireError(
                        "ExperimentSpec.benchmarks entries must decode to "
                        f"NetlistSpec, got {type(nested).__name__}"
                    )
                benches.append(nested)
            else:
                raise WireError(
                    f"ExperimentSpec.benchmarks entry {bench!r} is neither "
                    "a name nor an envelope"
                )
        decoded["benchmarks"] = tuple(benches)
    for axis in ("ambients", "corners"):
        if axis in decoded:
            values = decoded[axis]
            if not isinstance(values, (list, tuple)):
                raise WireError(
                    f"ExperimentSpec.{axis} must be a list of numbers"
                )
            try:
                decoded[axis] = tuple(float(v) for v in values)
            except (TypeError, ValueError) as error:
                raise WireError(
                    f"ExperimentSpec.{axis} must be numbers: {error}"
                ) from error
    if "arch" in decoded:
        arch = from_wire(decoded["arch"])
        if not isinstance(arch, ArchParams):
            raise WireError(
                "ExperimentSpec.arch must be an ArchParams envelope, got "
                f"{type(arch).__name__}"
            )
        decoded["arch"] = arch
    if decoded.get("config") is not None:
        config = from_wire(decoded["config"])
        if not isinstance(config, GuardbandConfig):
            raise WireError(
                "ExperimentSpec.config must be a GuardbandConfig envelope, "
                f"got {type(config).__name__}"
            )
        decoded["config"] = config
    return _construct("ExperimentSpec", ExperimentSpec, decoded)


_ENCODERS: Dict[type, Tuple[str, Callable[[Any], Dict[str, Any]]]] = {
    ArchParams: ("ArchParams", _encode_arch),
    NetlistSpec: ("NetlistSpec", _encode_netlist_spec),
    ThermalPackage: ("ThermalPackage", _encode_package),
    GuardbandConfig: ("GuardbandConfig", _encode_config),
    ExperimentSpec: ("ExperimentSpec", _encode_experiment),
}

_DECODERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "ArchParams": _decode_arch,
    "NetlistSpec": _decode_netlist_spec,
    "ThermalPackage": _decode_package,
    "GuardbandConfig": _decode_config,
    "ExperimentSpec": _decode_experiment,
}

WIRE_KINDS: Tuple[str, ...] = tuple(sorted(_DECODERS))
"""Every envelope kind this build can decode."""


def to_wire(obj: Any) -> Dict[str, Any]:
    """Encode a supported value as a versioned JSON-serialisable envelope."""
    entry = _ENCODERS.get(type(obj))
    if entry is None:
        supported = ", ".join(sorted(e[0] for e in _ENCODERS.values()))
        raise WireError(
            f"{type(obj).__name__} is not a wire type; supported: "
            f"{supported}"
        )
    kind, encode = entry
    return {
        "kind": kind,
        "wire_version": WIRE_SCHEMA_VERSION,
        "payload": encode(obj),
    }


def from_wire(doc: Any) -> Any:
    """Decode a versioned envelope produced by :func:`to_wire`.

    Raises :class:`WireError` — never a bare ``KeyError``/``TypeError``
    — for malformed documents, unsupported versions, unknown kinds and
    unknown payload fields.
    """
    if not isinstance(doc, dict):
        raise WireError(
            f"wire document must be a JSON object, got {type(doc).__name__}"
        )
    missing = [key for key in ("kind", "wire_version", "payload")
               if key not in doc]
    if missing:
        raise WireError(
            "wire document is missing required key(s) "
            f"{', '.join(repr(k) for k in missing)}; expected an envelope "
            '{"kind": ..., "wire_version": ..., "payload": {...}}'
        )
    version = doc["wire_version"]
    if version != WIRE_SCHEMA_VERSION:
        raise WireError(
            f"unsupported wire schema version {version!r}; this build "
            f"speaks version {WIRE_SCHEMA_VERSION}.  Upgrade the older "
            "side — wire payloads are never silently reinterpreted "
            "across versions."
        )
    kind = doc["kind"]
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise WireError(
            f"unknown wire kind {kind!r}; this build decodes: "
            f"{', '.join(WIRE_KINDS)}"
        )
    return decoder(doc["payload"])


def wire_field_names(kind: str) -> Tuple[str, ...]:
    """Sorted field names of one wire kind (for the lint manifest)."""
    classes: Dict[str, type] = {name: cls for cls, (name, _) in _ENCODERS.items()}
    cls = classes.get(kind)
    if cls is None or not is_dataclass(cls):
        raise KeyError(kind)
    return tuple(sorted(f.name for f in fields(cls)))
