"""A small MNA circuit simulator — the HSPICE stand-in.

Supports DC operating-point analysis (Newton-Raphson), transient analysis
(trapezoidal companion models) and the measurement helpers the
characterization flow needs (propagation delay, static leakage, Monte-Carlo
threshold variation).

The MOSFET model is the smooth alpha-power law defined in
:mod:`repro.spice.devices` over the parameters of
:mod:`repro.technology.ptm22`.
"""

from repro.spice.devices import (
    drain_current,
    effective_resistance,
    gate_capacitance,
    drain_capacitance,
    off_current,
)
from repro.spice.netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    PiecewiseLinearSource,
    Resistor,
    VoltageSource,
)
from repro.spice.dc import DCResult, solve_dc
from repro.spice.transient import TransientResult, simulate_transient
from repro.spice.measure import (
    crossing_time,
    propagation_delay,
    static_supply_current,
)
from repro.spice.montecarlo import sram_weakest_cell_leakage
from repro.spice.sweep import (
    SweepResult,
    dc_sweep,
    delay_vs_temperature,
    temperature_sweep,
)

__all__ = [
    "Capacitor",
    "Circuit",
    "CurrentSource",
    "DCResult",
    "Mosfet",
    "PiecewiseLinearSource",
    "Resistor",
    "TransientResult",
    "VoltageSource",
    "crossing_time",
    "drain_capacitance",
    "drain_current",
    "effective_resistance",
    "gate_capacitance",
    "off_current",
    "propagation_delay",
    "SweepResult",
    "dc_sweep",
    "delay_vs_temperature",
    "simulate_transient",
    "solve_dc",
    "sram_weakest_cell_leakage",
    "static_supply_current",
    "temperature_sweep",
]
