"""Newton-Raphson DC operating-point solver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.spice.netlist import Circuit

MAX_ITERATIONS = 400
VOLTAGE_TOLERANCE = 1e-9
RESIDUAL_TOLERANCE = 1e-12
MAX_STEP_VOLTS = 0.4
"""Per-iteration Newton step clamp, for global convergence."""


class ConvergenceError(RuntimeError):
    """Raised when the Newton iteration fails to converge."""


@dataclass
class DCResult:
    """Solved DC operating point."""

    circuit: Circuit
    x: np.ndarray

    def voltage(self, node_name: str) -> float:
        """Node voltage in volts."""
        index = self.circuit.node_index(node_name)
        if index == 0:
            return 0.0
        return float(self.x[index - 1])

    def source_current(self, branch: int = 0) -> float:
        """Branch current of the given voltage source (amps, out of + pin)."""
        if branch < 0 or branch >= len(self.circuit.vsources):
            raise IndexError(f"no voltage source with branch index {branch}")
        return float(self.x[self.circuit.num_nodes - 1 + branch])


def solve_dc(
    circuit: Circuit,
    initial_guess: Optional[Dict[str, float]] = None,
    max_iterations: int = MAX_ITERATIONS,
) -> DCResult:
    """Solve the DC operating point of ``circuit``.

    ``initial_guess`` maps node names to starting voltages; unlisted nodes
    start at 0 V.  Uses damped Newton with a per-step voltage clamp.
    """
    x = np.zeros(circuit.num_unknowns)
    if initial_guess:
        for name, volts in initial_guess.items():
            index = circuit.node_index(name)
            if index != 0:
                x[index - 1] = volts

    n_voltage_unknowns = circuit.num_nodes - 1
    for _ in range(max_iterations):
        jac, res = circuit.assemble(x, time=None)
        try:
            dx = np.linalg.solve(jac, -res)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular Jacobian in circuit {circuit.title!r}"
            ) from exc
        # Clamp voltage updates only; source branch currents move freely.
        v_step = dx[:n_voltage_unknowns]
        worst = float(np.max(np.abs(v_step))) if len(v_step) else 0.0
        if worst > MAX_STEP_VOLTS:
            dx = dx * (MAX_STEP_VOLTS / worst)
        x = x + dx
        if worst < VOLTAGE_TOLERANCE and float(np.max(np.abs(res))) < 1e-6:
            # Converged on step size; verify residual at the new point.
            _, res_new = circuit.assemble(x, time=None)
            if float(np.max(np.abs(res_new))) < max(RESIDUAL_TOLERANCE, 1e-12):
                return DCResult(circuit, x)
            if float(np.max(np.abs(res_new))) < 1e-9:
                return DCResult(circuit, x)
    # Accept a slightly looser residual rather than failing outright.
    _, res_final = circuit.assemble(x, time=None)
    if float(np.max(np.abs(res_final))) < 1e-7:
        return DCResult(circuit, x)
    raise ConvergenceError(
        f"DC analysis of {circuit.title!r} did not converge after "
        f"{max_iterations} iterations (residual {float(np.max(np.abs(res_final))):.3e})"
    )
