"""Smooth alpha-power-law MOSFET evaluation.

The model (Sakurai-Newton alpha-power law with an EKV-style smooth
subthreshold transition) provides, for a :class:`~repro.technology.ptm22.DeviceParams`:

- ``drain_current(params, vgs, vds, width, t_kelvin)`` and its partial
  derivatives (for the Newton DC solver);
- ``off_current`` — subthreshold leakage at ``Vgs = 0``;
- ``effective_resistance`` — the switching-resistance abstraction used by the
  Elmore-based sizing flow in :mod:`repro.coffe`;
- gate/drain capacitance helpers.

Voltages are referenced the NMOS way; PMOS devices are evaluated through the
same equations with negated terminal voltages (handled by the caller /
netlist element).  ``width`` is in multiples of the minimum width.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.technology.ptm22 import DeviceParams
from repro.technology.temperature import (
    T_REFERENCE_K,
    arrhenius_scale,
    mobility_factor,
    thermal_voltage,
    threshold_voltage,
)

_SOFTPLUS_CUTOFF = 30.0


def _softplus(x: float) -> float:
    """Numerically stable ``ln(1 + e^x)``."""
    if x > _SOFTPLUS_CUTOFF:
        return x
    if x < -_SOFTPLUS_CUTOFF:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _sigmoid(x: float) -> float:
    if x > _SOFTPLUS_CUTOFF:
        return 1.0
    if x < -_SOFTPLUS_CUTOFF:
        return math.exp(x)
    return 1.0 / (1.0 + math.exp(-x))


def effective_overdrive(params: DeviceParams, vgs: float, t_kelvin: float) -> float:
    """Smooth overdrive ``n*vt * ln(1 + exp((Vgs - Vth)/(n*vt)))``.

    Tends to ``Vgs - Vth`` in strong inversion and to the subthreshold
    exponential below threshold, giving a single continuous I-V expression.
    """
    vth = threshold_voltage(params.vth0, t_kelvin, params.kvt)
    nvt = params.subthreshold_n * thermal_voltage(t_kelvin)
    return nvt * _softplus((vgs - vth) / nvt)


def drain_current(
    params: DeviceParams,
    vgs: float,
    vds: float,
    width: float,
    t_kelvin: float,
) -> float:
    """Channel current for ``vds >= 0`` (NMOS convention), in amperes.

    For ``vds < 0`` callers must exploit channel symmetry (swap source and
    drain); the netlist MOSFET element does this.
    """
    if vds < 0.0:
        raise ValueError("drain_current requires vds >= 0; swap terminals instead")
    i_on = _saturation_current(params, vgs, width, t_kelvin)
    sat = 1.0 - math.exp(-vds / params.vdsat)
    return i_on * sat * (1.0 + params.lam * vds)


def _saturation_current(
    params: DeviceParams, vgs: float, width: float, t_kelvin: float
) -> float:
    k_t = params.k_drive * mobility_factor(t_kelvin, params.mu_exp)
    vgt = effective_overdrive(params, vgs, t_kelvin)
    return k_t * width * vgt**params.alpha


def drain_current_and_derivatives(
    params: DeviceParams,
    vgs: float,
    vds: float,
    width: float,
    t_kelvin: float,
) -> Tuple[float, float, float]:
    """Return ``(Id, dId/dVgs, dId/dVds)`` for ``vds >= 0``.

    Analytic derivatives keep the Newton DC solver quadratic near the
    solution.
    """
    if vds < 0.0:
        raise ValueError("requires vds >= 0; swap terminals instead")
    vth = threshold_voltage(params.vth0, t_kelvin, params.kvt)
    nvt = params.subthreshold_n * thermal_voltage(t_kelvin)
    x = (vgs - vth) / nvt
    vgt = nvt * _softplus(x)
    k_t = params.k_drive * mobility_factor(t_kelvin, params.mu_exp)
    i_on = k_t * width * vgt**params.alpha

    exp_term = math.exp(-vds / params.vdsat)
    sat = 1.0 - exp_term
    clm = 1.0 + params.lam * vds
    i_d = i_on * sat * clm

    # dId/dVgs through the overdrive chain rule.
    dvgt_dvgs = _sigmoid(x)
    if vgt > 0.0:
        di_on_dvgs = i_on * params.alpha / vgt * dvgt_dvgs
    else:
        di_on_dvgs = 0.0
    gm = di_on_dvgs * sat * clm

    gds = i_on * (exp_term / params.vdsat * clm + sat * params.lam)
    return i_d, gm, gds


def off_current(
    params: DeviceParams, vdd: float, width: float, t_kelvin: float
) -> float:
    """Subthreshold (off-state) channel leakage at ``Vgs = 0, Vds = vdd``."""
    return drain_current(params, 0.0, vdd, width, t_kelvin)


def leakage_current(
    params: DeviceParams, vdd: float, width: float, t_kelvin: float
) -> float:
    """Total static leakage: subthreshold plus gate/junction, amperes.

    The gate/junction component is anchored to the subthreshold current at
    the 25 C reference (``gate_leak_fraction`` of the total there) and scales
    with a shallow Arrhenius law — see
    :class:`~repro.technology.ptm22.DeviceParams`.  Power models should use
    this; ``off_current`` is the channel-only component (e.g. for bitline
    droop, where only channel leakage discharges the bitline).
    """
    i_sub = off_current(params, vdd, width, t_kelvin)
    f = params.gate_leak_fraction
    if f <= 0.0:
        return i_sub
    if not (0.0 < f < 1.0):
        raise ValueError(f"gate_leak_fraction must be in [0, 1), got {f}")
    i_sub_ref = off_current(params, vdd, width, T_REFERENCE_K)
    i_gate_ref = f / (1.0 - f) * i_sub_ref
    i_gate = i_gate_ref * arrhenius_scale(t_kelvin, params.gate_leak_ea_ev)
    return i_sub + i_gate


def effective_resistance(
    params: DeviceParams, vdd: float, width: float, t_kelvin: float
) -> float:
    """Switching effective resistance of the device, in ohms.

    The classic RC abstraction ``Reff = 0.75 * Vdd / Id_sat(Vgs = Vdd)``:
    the average resistance presented while (dis)charging a load between the
    rails.  The Elmore sizing flow in :mod:`repro.coffe` builds every
    subcircuit delay from this quantity, so the full temperature behaviour of
    the fabric (Figs. 1-3 of the paper) flows from here.
    """
    if width <= 0.0:
        raise ValueError(f"width must be positive, got {width}")
    i_sat = drain_current(params, vdd, vdd, width, t_kelvin)
    return 0.75 * vdd / i_sat


def pass_gate_resistance(
    params: DeviceParams,
    vdd: float,
    width: float,
    t_kelvin: float,
    body_factor: float = 1.25,
) -> float:
    """Effective resistance of an NMOS pass transistor in a mux tree, ohms.

    The gate is held at ``vdd`` by the configuration SRAM while the channel
    conducts; the back-gate (body) effect of the floating source raises the
    effective threshold by ``body_factor`` relative to a grounded-source
    device, lowering the overdrive and slightly changing the temperature
    sensitivity relative to :func:`effective_resistance`.
    """
    if width <= 0.0:
        raise ValueError(f"width must be positive, got {width}")
    raised = params.scaled(vth0=params.vth0 * body_factor)
    i_sat = drain_current(raised, vdd, vdd, width, t_kelvin)
    return 0.75 * vdd / i_sat


def gate_capacitance(params: DeviceParams, width: float) -> float:
    """Gate capacitance of a device of the given width, farads."""
    return params.c_gate * width


def drain_capacitance(params: DeviceParams, width: float) -> float:
    """Drain junction capacitance of a device of the given width, farads."""
    return params.c_drain * width
