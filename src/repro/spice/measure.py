"""Waveform and operating-point measurements (HSPICE ``.measure`` stand-in)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.spice.dc import solve_dc
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientResult


def crossing_time(
    times: np.ndarray,
    waveform: np.ndarray,
    level: float,
    direction: str = "rise",
    start_after: float = 0.0,
) -> Optional[float]:
    """First time the waveform crosses ``level`` in the given direction.

    Linearly interpolates between samples; returns ``None`` if there is no
    crossing after ``start_after``.
    """
    if direction not in ("rise", "fall"):
        raise ValueError(f"direction must be 'rise' or 'fall', got {direction!r}")
    for i in range(1, len(times)):
        if times[i] <= start_after:
            continue
        v0, v1 = waveform[i - 1], waveform[i]
        if direction == "rise" and v0 < level <= v1:
            frac = (level - v0) / (v1 - v0)
            return float(times[i - 1] + frac * (times[i] - times[i - 1]))
        if direction == "fall" and v0 > level >= v1:
            frac = (v0 - level) / (v0 - v1)
            return float(times[i - 1] + frac * (times[i] - times[i - 1]))
    return None


def propagation_delay(
    result: TransientResult,
    input_node: str,
    output_node: str,
    vdd: float,
    input_edge: str = "rise",
    output_edge: Optional[str] = None,
) -> float:
    """50 %-to-50 % propagation delay from input to output, seconds.

    ``output_edge`` defaults to the opposite of ``input_edge`` (a single
    inverting stage); pass it explicitly for non-inverting paths.
    """
    if output_edge is None:
        output_edge = "fall" if input_edge == "rise" else "rise"
    mid = vdd / 2.0
    t_in = crossing_time(result.times, result.waveform(input_node), mid, input_edge)
    if t_in is None:
        raise ValueError(f"input {input_node!r} never crosses {mid:g} V")
    t_out = crossing_time(
        result.times, result.waveform(output_node), mid, output_edge, start_after=t_in
    )
    if t_out is None:
        raise ValueError(f"output {output_node!r} never crosses {mid:g} V")
    return t_out - t_in


def static_supply_current(circuit: Circuit, supply_branch: int = 0) -> float:
    """Static (leakage) current drawn from a supply, amps.

    Solves the DC operating point and returns the magnitude of the current
    delivered by the voltage source with the given branch index.
    """
    dc = solve_dc(circuit)
    # The MNA branch current flows out of the + terminal through the circuit;
    # a sourcing supply therefore shows a negative branch current.
    return abs(dc.source_current(supply_branch))
