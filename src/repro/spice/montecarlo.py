"""Monte-Carlo threshold-voltage variation analysis.

COFFE's BRAM optimization needs the leakage current of the *weakest* SRAM
cell at the target temperature (paper Sec. IV-A, following Yazdanshenas et
al.).  We reproduce that by sampling per-transistor Vth from a normal
distribution and evaluating the standby leakage of each sampled 6T cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.devices import leakage_current, off_current
from repro.technology.ptm22 import DeviceParams

SRAM_VTH_SIGMA = 0.025
"""Default Vth standard deviation for minimum-size SRAM devices, volts."""


@dataclass
class SramLeakageSample:
    """Leakage statistics over a Monte-Carlo population of SRAM cells."""

    mean_amps: float
    weakest_amps: float
    """Leakage of the leakiest (weakest) sampled cell."""
    n_cells: int
    t_kelvin: float


def sram_cell_leakage(
    nmos: DeviceParams,
    pmos: DeviceParams,
    vdd: float,
    t_kelvin: float,
    vth_shift_n: float = 0.0,
    vth_shift_p: float = 0.0,
    width_n: float = 1.0,
    width_p: float = 1.0,
    include_gate: bool = False,
) -> float:
    """Standby leakage of one 6T SRAM cell, amperes.

    In standby (wordline low, cell holding a value) three devices are off and
    leak: one pull-down NMOS, one pull-up PMOS and one access NMOS; the
    complementary devices are on and drop no leakage of their own.

    ``include_gate=False`` (default) returns the channel (subthreshold)
    component only — the quantity that erodes bitline swing and drives sense
    margins.  ``include_gate=True`` adds gate/junction leakage, for power
    accounting.
    """
    current = leakage_current if include_gate else off_current
    n_dev = nmos.scaled(vth0=max(nmos.vth0 + vth_shift_n, 1e-3))
    p_dev = pmos.scaled(vth0=max(pmos.vth0 + vth_shift_p, 1e-3))
    i_pull_down = current(n_dev, vdd, width_n, t_kelvin)
    i_pull_up = current(p_dev, vdd, width_p, t_kelvin)
    i_access = current(n_dev, vdd, width_n, t_kelvin)
    return i_pull_down + i_pull_up + i_access


def sram_weakest_cell_leakage(
    nmos: DeviceParams,
    pmos: DeviceParams,
    vdd: float,
    t_kelvin: float,
    n_cells: int = 2000,
    vth_sigma: float = SRAM_VTH_SIGMA,
    seed: int = 2019,
) -> SramLeakageSample:
    """Monte-Carlo leakage of an ``n_cells`` SRAM array at ``t_kelvin``.

    Returns the mean and the weakest-cell (maximum) leakage; the weakest-cell
    value feeds BRAM sizing in :mod:`repro.coffe.bram`.

    ``seed`` is a required integer: the sample feeds BRAM transistor
    sizing, so the whole characterization must be reproducible — an
    OS-seeded draw here would make two runs of the same flow size
    different fabrics.
    """
    if n_cells <= 0:
        raise ValueError(f"n_cells must be positive, got {n_cells}")
    if seed is None or not isinstance(seed, (int, np.integer)):
        raise TypeError(
            f"seed must be an explicit integer (got {seed!r}); the "
            "Monte-Carlo population must be reproducible per flow run"
        )
    rng = np.random.default_rng(seed)
    shifts_n = rng.normal(0.0, vth_sigma, size=n_cells)
    shifts_p = rng.normal(0.0, vth_sigma, size=n_cells)
    leakages = np.array(
        [
            sram_cell_leakage(nmos, pmos, vdd, t_kelvin, dn, dp)
            for dn, dp in zip(shifts_n, shifts_p)
        ]
    )
    return SramLeakageSample(
        mean_amps=float(leakages.mean()),
        weakest_amps=float(leakages.max()),
        n_cells=n_cells,
        t_kelvin=t_kelvin,
    )
