"""Circuit netlist representation for the MNA simulator.

A :class:`Circuit` owns a set of named nodes (``"0"`` / ``"gnd"`` is ground)
and a list of elements.  Elements know how to *stamp* themselves into the
modified-nodal-analysis Jacobian/residual used by the DC and transient
solvers.

The unknown vector ``x`` is laid out as ``[v_1 .. v_{N-1}, i_V1 .. i_Vk]``:
node voltages for every non-ground node followed by one branch current per
voltage source.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.spice.devices import drain_current_and_derivatives
from repro.technology.ptm22 import DeviceParams

GMIN = 1e-12
"""Minimum conductance from every node to ground, for conditioning."""


class Element:
    """Base class for netlist elements.

    Subclasses implement :meth:`stamp`, adding their contribution to the
    Jacobian matrix ``jac`` and residual vector ``res`` given the current
    solution estimate.  ``res`` holds KCL residuals (sum of currents *leaving*
    each node) followed by voltage-source constraint residuals.
    """

    def stamp(
        self,
        jac: np.ndarray,
        res: np.ndarray,
        x: np.ndarray,
        circuit: "Circuit",
        time: Optional[float],
    ) -> None:
        raise NotImplementedError


def _voltage(x: np.ndarray, node: int) -> float:
    """Voltage of a node index in the unknown vector (ground is 0 V)."""
    if node == 0:
        return 0.0
    return float(x[node - 1])


@dataclass
class Resistor(Element):
    """Linear resistor between two nodes."""

    node_a: int
    node_b: int
    ohms: float

    def __post_init__(self) -> None:
        if self.ohms <= 0.0:
            raise ValueError(f"resistance must be positive, got {self.ohms}")

    def stamp(self, jac, res, x, circuit, time) -> None:
        g = 1.0 / self.ohms
        va = _voltage(x, self.node_a)
        vb = _voltage(x, self.node_b)
        i = g * (va - vb)
        for node, sign in ((self.node_a, 1.0), (self.node_b, -1.0)):
            if node == 0:
                continue
            row = node - 1
            res[row] += sign * i
            if self.node_a != 0:
                jac[row, self.node_a - 1] += sign * g
            if self.node_b != 0:
                jac[row, self.node_b - 1] -= sign * g


@dataclass
class Capacitor(Element):
    """Linear capacitor; open circuit in DC, companion model in transient."""

    node_a: int
    node_b: int
    farads: float
    # Transient state, managed by the transient solver.
    _v_prev: float = field(default=0.0, repr=False)
    _i_prev: float = field(default=0.0, repr=False)
    _geq: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.farads < 0.0:
            raise ValueError(f"capacitance must be non-negative, got {self.farads}")

    def begin_step(self, timestep: float, method: str) -> None:
        """Prepare the companion model for the next transient step."""
        if method == "trap":
            self._geq = 2.0 * self.farads / timestep
        elif method == "be":
            self._geq = self.farads / timestep
        else:
            raise ValueError(f"unknown integration method {method!r}")
        self._method = method

    def end_step(self, x: np.ndarray) -> None:
        """Record branch voltage/current after a converged transient step."""
        v = _voltage(x, self.node_a) - _voltage(x, self.node_b)
        if getattr(self, "_method", "trap") == "trap":
            i = self._geq * (v - self._v_prev) - self._i_prev
        else:
            i = self._geq * (v - self._v_prev)
        self._v_prev = v
        self._i_prev = i

    def set_initial_voltage(self, volts: float) -> None:
        self._v_prev = volts
        self._i_prev = 0.0

    def stamp(self, jac, res, x, circuit, time) -> None:
        if time is None:
            return  # open in DC
        v = _voltage(x, self.node_a) - _voltage(x, self.node_b)
        if getattr(self, "_method", "trap") == "trap":
            i = self._geq * (v - self._v_prev) - self._i_prev
        else:
            i = self._geq * (v - self._v_prev)
        for node, sign in ((self.node_a, 1.0), (self.node_b, -1.0)):
            if node == 0:
                continue
            row = node - 1
            res[row] += sign * i
            if self.node_a != 0:
                jac[row, self.node_a - 1] += sign * self._geq
            if self.node_b != 0:
                jac[row, self.node_b - 1] -= sign * self._geq


@dataclass
class CurrentSource(Element):
    """Ideal current source pushing ``amps`` from node_a to node_b."""

    node_a: int
    node_b: int
    amps: float

    def stamp(self, jac, res, x, circuit, time) -> None:
        if self.node_a != 0:
            res[self.node_a - 1] += self.amps
        if self.node_b != 0:
            res[self.node_b - 1] -= self.amps


@dataclass
class VoltageSource(Element):
    """Ideal voltage source; constant or time-dependent via a callable."""

    node_pos: int
    node_neg: int
    volts: Union[float, Callable[[float], float]]
    branch_index: int = -1
    """Index of this source's branch-current unknown; set by the Circuit."""

    def value(self, time: Optional[float]) -> float:
        if callable(self.volts):
            return float(self.volts(0.0 if time is None else time))
        return float(self.volts)

    def stamp(self, jac, res, x, circuit, time) -> None:
        n_nodes = circuit.num_nodes - 1
        branch_row = n_nodes + self.branch_index
        i_branch = float(x[branch_row])
        # Branch current flows out of the positive terminal through the
        # external circuit: it *leaves* node_pos and *enters* node_neg.
        if self.node_pos != 0:
            res[self.node_pos - 1] += i_branch
            jac[self.node_pos - 1, branch_row] += 1.0
        if self.node_neg != 0:
            res[self.node_neg - 1] -= i_branch
            jac[self.node_neg - 1, branch_row] -= 1.0
        v = _voltage(x, self.node_pos) - _voltage(x, self.node_neg)
        res[branch_row] += v - self.value(time)
        if self.node_pos != 0:
            jac[branch_row, self.node_pos - 1] += 1.0
        if self.node_neg != 0:
            jac[branch_row, self.node_neg - 1] -= 1.0


class PiecewiseLinearSource:
    """Callable piecewise-linear waveform for a :class:`VoltageSource`.

    ``points`` is a sequence of ``(time, volts)`` pairs sorted by time; the
    waveform holds the first/last value outside the given range.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if not points:
            raise ValueError("PWL source needs at least one point")
        times = [p[0] for p in points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self._times = times
        self._values = [p[1] for p in points]

    def __call__(self, time: float) -> float:
        times, values = self._times, self._values
        if time <= times[0]:
            return values[0]
        if time >= times[-1]:
            return values[-1]
        idx = bisect.bisect_right(times, time)
        t0, t1 = times[idx - 1], times[idx]
        v0, v1 = values[idx - 1], values[idx]
        frac = (time - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)


def step_waveform(
    t_step: float, v_low: float, v_high: float, t_rise: float
) -> PiecewiseLinearSource:
    """A low-to-high ramp starting at ``t_step`` with the given rise time."""
    return PiecewiseLinearSource(
        [(0.0, v_low), (t_step, v_low), (t_step + t_rise, v_high)]
    )


@dataclass
class Mosfet(Element):
    """MOSFET instance; NMOS or PMOS per its :class:`DeviceParams` flavour."""

    params: DeviceParams
    drain: int
    gate: int
    source: int
    width: float
    t_kelvin: float

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ValueError(f"width must be positive, got {self.width}")
        if self.t_kelvin <= 0.0:
            raise ValueError(f"temperature must be positive, got {self.t_kelvin}")

    def channel_current(
        self, x: np.ndarray
    ) -> Tuple[float, float, float, float]:
        """Return ``(i_ds, di/dVd, di/dVg, di/dVs)``.

        ``i_ds`` is the current flowing from the drain terminal to the source
        terminal through the channel (negative for a conducting PMOS).
        """
        vd = _voltage(x, self.drain)
        vg = _voltage(x, self.gate)
        vs = _voltage(x, self.source)
        mirror = self.params.polarity == "p"
        if mirror:
            vd, vg, vs = -vd, -vg, -vs
        if vd >= vs:
            i, gm, gds = drain_current_and_derivatives(
                self.params, vg - vs, vd - vs, self.width, self.t_kelvin
            )
            did = (gds, gm, -(gm + gds))
        else:
            # Channel symmetry: the lower-potential terminal acts as source.
            i, gm, gds = drain_current_and_derivatives(
                self.params, vg - vd, vs - vd, self.width, self.t_kelvin
            )
            i = -i
            did = (gm + gds, -gm, -gds)
        if mirror:
            # i(v) = -f(-v)  =>  di/dv = f'(-v): derivatives unchanged.
            i = -i
        return (i,) + did

    def stamp(self, jac, res, x, circuit, time) -> None:
        i_ds, d_vd, d_vg, d_vs = self.channel_current(x)
        terminals = ((self.drain, d_vd), (self.gate, d_vg), (self.source, d_vs))
        for node, sign in ((self.drain, 1.0), (self.source, -1.0)):
            if node == 0:
                continue
            row = node - 1
            res[row] += sign * i_ds
            for term, deriv in terminals:
                if term != 0:
                    jac[row, term - 1] += sign * deriv


class Circuit:
    """A flat circuit: named nodes plus a list of elements."""

    def __init__(self, title: str = ""):
        self.title = title
        self._nodes: Dict[str, int] = {"0": 0, "gnd": 0}
        self._names: List[str] = ["0"]
        self.elements: List[Element] = []
        self.vsources: List[VoltageSource] = []

    @property
    def num_nodes(self) -> int:
        """Number of nodes including ground."""
        return len(self._names)

    @property
    def num_unknowns(self) -> int:
        return self.num_nodes - 1 + len(self.vsources)

    def node(self, name: str) -> int:
        """Return the index for a node name, creating it if new."""
        if name not in self._nodes:
            self._nodes[name] = len(self._names)
            self._names.append(name)
        return self._nodes[name]

    def node_name(self, index: int) -> str:
        return self._names[index]

    def node_index(self, name: str) -> int:
        """Return the index of an existing node, or raise ``KeyError``."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r} in circuit {self.title!r}")
        return self._nodes[name]

    # -- convenience constructors -------------------------------------------

    def resistor(self, a: str, b: str, ohms: float) -> Resistor:
        elem = Resistor(self.node(a), self.node(b), ohms)
        self.elements.append(elem)
        return elem

    def capacitor(self, a: str, b: str, farads: float) -> Capacitor:
        elem = Capacitor(self.node(a), self.node(b), farads)
        self.elements.append(elem)
        return elem

    def current_source(self, a: str, b: str, amps: float) -> CurrentSource:
        elem = CurrentSource(self.node(a), self.node(b), amps)
        self.elements.append(elem)
        return elem

    def voltage_source(
        self, pos: str, neg: str, volts: Union[float, Callable[[float], float]]
    ) -> VoltageSource:
        elem = VoltageSource(self.node(pos), self.node(neg), volts)
        elem.branch_index = len(self.vsources)
        self.vsources.append(elem)
        self.elements.append(elem)
        return elem

    def mosfet(
        self,
        params: DeviceParams,
        drain: str,
        gate: str,
        source: str,
        width: float,
        t_kelvin: float,
    ) -> Mosfet:
        elem = Mosfet(
            params, self.node(drain), self.node(gate), self.node(source), width, t_kelvin
        )
        self.elements.append(elem)
        return elem

    def capacitors(self) -> List[Capacitor]:
        return [e for e in self.elements if isinstance(e, Capacitor)]

    def assemble(
        self, x: np.ndarray, time: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Build the Jacobian and residual at estimate ``x``.

        Returns ``(jac, res)`` such that the Newton update solves
        ``jac @ dx = -res``.
        """
        n = self.num_unknowns
        jac = np.zeros((n, n))
        res = np.zeros(n)
        # gmin conditioning on every node.
        for node in range(1, self.num_nodes):
            jac[node - 1, node - 1] += GMIN
            res[node - 1] += GMIN * float(x[node - 1])
        for elem in self.elements:
            elem.stamp(jac, res, x, self, time)
        return jac, res
