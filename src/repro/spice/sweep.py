"""Parameter sweeps over circuits (HSPICE ``.dc``/``.temp`` stand-ins).

The characterization flow (paper Fig. 5a) is built on sweeps: DC transfer
curves, leakage-vs-temperature, delay-vs-temperature.  These helpers drive
the MNA solvers over a parameter grid and collect the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.spice.dc import solve_dc
from repro.spice.measure import propagation_delay
from repro.spice.netlist import Circuit, VoltageSource
from repro.spice.transient import simulate_transient


@dataclass
class SweepResult:
    """Parameter grid plus one measurement array per probe."""

    parameter: str
    values: np.ndarray
    measurements: Dict[str, np.ndarray]

    def of(self, probe: str) -> np.ndarray:
        try:
            return self.measurements[probe]
        except KeyError:
            raise KeyError(
                f"unknown probe {probe!r}; known: {sorted(self.measurements)}"
            ) from None


def dc_sweep(
    circuit: Circuit,
    source: VoltageSource,
    values: Sequence[float],
    probe_nodes: Sequence[str],
    initial_guess: Optional[Dict[str, float]] = None,
) -> SweepResult:
    """Sweep a voltage source and record node voltages at each DC point.

    The previous solution warm-starts each point, the way SPICE steps a
    ``.dc`` sweep, so sharp transfer-curve transitions converge reliably.
    """
    if len(values) == 0:
        raise ValueError("need at least one sweep value")
    grid = np.asarray(values, dtype=float)
    traces: Dict[str, List[float]] = {node: [] for node in probe_nodes}
    guess = dict(initial_guess or {})
    for value in grid:
        source.volts = float(value)
        result = solve_dc(circuit, initial_guess=guess)
        for node in probe_nodes:
            traces[node].append(result.voltage(node))
        guess = {
            circuit.node_name(i): float(result.x[i - 1])
            for i in range(1, circuit.num_nodes)
        }
    return SweepResult(
        parameter="volts",
        values=grid,
        measurements={k: np.asarray(v) for k, v in traces.items()},
    )


def temperature_sweep(
    build_circuit: Callable[[float], Circuit],
    temps_kelvin: Sequence[float],
    measure: Callable[[Circuit], float],
    probe: str = "value",
) -> SweepResult:
    """Rebuild + measure a circuit across temperatures (``.temp`` sweep).

    ``build_circuit`` receives the temperature in kelvin and returns a
    fresh circuit (device temperature is an element property in this
    simulator); ``measure`` extracts one number from it.
    """
    if len(temps_kelvin) == 0:
        raise ValueError("need at least one temperature")
    grid = np.asarray(temps_kelvin, dtype=float)
    values = np.array([measure(build_circuit(float(t))) for t in grid])
    return SweepResult(parameter="t_kelvin", values=grid,
                       measurements={probe: values})


def delay_vs_temperature(
    build_circuit: Callable[[float], Circuit],
    temps_kelvin: Sequence[float],
    input_node: str,
    output_node: str,
    vdd: float,
    t_stop: float,
    timestep: float,
    input_edge: str = "rise",
    output_edge: Optional[str] = None,
) -> SweepResult:
    """Transient propagation delay across a temperature grid.

    The full-simulation counterpart of the Elmore models in
    :mod:`repro.coffe.subcircuits` — used to validate them in the tests.
    """

    def measure(circuit: Circuit) -> float:
        result = simulate_transient(
            circuit, t_stop, timestep, record_nodes=[input_node, output_node]
        )
        return propagation_delay(
            result, input_node, output_node, vdd, input_edge, output_edge
        )

    return temperature_sweep(build_circuit, temps_kelvin, measure, probe="delay_s")
