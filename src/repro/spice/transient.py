"""Fixed-step transient analysis with trapezoidal (or backward-Euler)
capacitor companion models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.spice.dc import ConvergenceError, solve_dc
from repro.spice.netlist import Circuit

_NEWTON_MAX = 120
_STEP_CLAMP = 0.5


@dataclass
class TransientResult:
    """Waveforms from a transient run: ``times`` plus per-node voltages."""

    circuit: Circuit
    times: np.ndarray
    voltages: Dict[str, np.ndarray]

    def waveform(self, node_name: str) -> np.ndarray:
        try:
            return self.voltages[node_name]
        except KeyError:
            raise KeyError(
                f"node {node_name!r} was not recorded; recorded nodes: "
                f"{sorted(self.voltages)}"
            ) from None


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    timestep: float,
    record_nodes: Optional[List[str]] = None,
    method: str = "trap",
    dc_initial_guess: Optional[Dict[str, float]] = None,
) -> TransientResult:
    """Simulate ``circuit`` from a DC initial point to ``t_stop``.

    The initial condition is the DC operating point with every time-varying
    source evaluated at ``t = 0``.  ``record_nodes`` defaults to every node.
    """
    if timestep <= 0.0 or t_stop <= timestep:
        raise ValueError("need 0 < timestep < t_stop")
    if record_nodes is None:
        record_nodes = [circuit.node_name(i) for i in range(1, circuit.num_nodes)]

    dc = solve_dc(circuit, initial_guess=dc_initial_guess)
    x = dc.x.copy()
    capacitors = circuit.capacitors()
    for cap in capacitors:
        va = 0.0 if cap.node_a == 0 else float(x[cap.node_a - 1])
        vb = 0.0 if cap.node_b == 0 else float(x[cap.node_b - 1])
        cap.set_initial_voltage(va - vb)

    n_steps = int(round(t_stop / timestep))
    times = np.linspace(0.0, n_steps * timestep, n_steps + 1)
    traces = {name: np.zeros(n_steps + 1) for name in record_nodes}
    node_rows = {name: circuit.node_index(name) for name in record_nodes}
    for name, idx in node_rows.items():
        traces[name][0] = 0.0 if idx == 0 else float(x[idx - 1])

    n_voltage_unknowns = circuit.num_nodes - 1
    for step in range(1, n_steps + 1):
        t_now = times[step]
        for cap in capacitors:
            cap.begin_step(timestep, method)
        # Newton at this timepoint, warm-started from the previous solution.
        converged = False
        for _ in range(_NEWTON_MAX):
            jac, res = circuit.assemble(x, time=t_now)
            try:
                dx = np.linalg.solve(jac, -res)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular Jacobian at t={t_now:g}s in {circuit.title!r}"
                ) from exc
            v_step = dx[:n_voltage_unknowns]
            worst = float(np.max(np.abs(v_step))) if len(v_step) else 0.0
            if worst > _STEP_CLAMP:
                dx = dx * (_STEP_CLAMP / worst)
            x = x + dx
            if worst < 1e-9:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"transient Newton did not converge at t={t_now:g}s "
                f"in {circuit.title!r}"
            )
        for cap in capacitors:
            cap.end_step(x)
        for name, idx in node_rows.items():
            traces[name][step] = 0.0 if idx == 0 else float(x[idx - 1])

    return TransientResult(circuit, times, traces)
