"""repro.store — persistent, content-addressed guardband result store.

Converged Algorithm 1 fixed points are keyed by
:func:`~repro.store.store.store_digest` (flow cache key x
:class:`~repro.core.guardband.GuardbandConfig` x ambient x corner x
schema version) and persisted with the same atomic-write + advisory-lock
+ quarantine discipline as the flow cache.  The sweep engine uses the
store for cross-run reuse, checkpoint/resume and warm-started fixed
points::

    from repro.api import ExperimentSpec, open_store, run_sweep

    store = open_store("runs/night/store")
    sweep = run_sweep(spec, workers=4, store=store,
                      jsonl_path="runs/night/sweep.jsonl")
    # later, after an interruption:
    sweep = run_sweep(spec, workers=4, store=store,
                      jsonl_path="runs/night/sweep.jsonl",
                      resume_from="runs/night/sweep.jsonl")
"""

from repro.store.backend import (
    DirectoryBackend,
    MemoryBackend,
    StoreBackend,
)
from repro.store.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    open_store,
    store_counters,
    store_digest,
)

__all__ = [
    "DirectoryBackend",
    "MemoryBackend",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "StoreBackend",
    "open_store",
    "store_counters",
    "store_digest",
]
