"""Pluggable persistence backends for the result store.

:class:`~repro.store.store.ResultStore` owns the *semantics* of the
store — pickling, type checks, hit/miss/quarantine counters — and
delegates byte-level persistence to a :class:`StoreBackend`.  The
protocol is deliberately small (opaque payload bytes keyed by digest)
so a backend never needs to know what a
:class:`~repro.core.guardband.GuardbandResult` is, and swapping the
on-disk directory for an object store is a constructor argument, not a
rewrite.

:class:`DirectoryBackend` is the production backend and keeps the full
concurrent-writer discipline the directory store has always had:

- writes go to a tmp file then ``os.replace`` into place, so readers
  only ever observe complete payloads;
- a per-entry ``fcntl`` advisory lock serialises concurrent writers of
  the same digest (degrading to a no-op where ``fcntl`` is unavailable
  — atomic rename still prevents torn files);
- anything the caller deems unreadable is quarantined to
  ``<digest>.pkl.corrupt`` for post-mortem, never retried in place.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Union

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

try:
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


@runtime_checkable
class StoreBackend(Protocol):
    """Byte-level persistence keyed by content digest.

    Implementations must be cheap to construct and safe under
    concurrent multi-process use; the contract mirrors what
    :class:`ResultStore` needs and nothing more:

    - :meth:`read` returns the stored payload or ``None`` when the
      digest is absent; it may raise ``OSError`` for an entry that
      exists but cannot be read (the store quarantines it);
    - :meth:`write` persists atomically — a concurrent reader observes
      either the old payload or the new one, never a torn mix;
    - :meth:`quarantine` moves an unreadable entry aside so it is a
      miss from now on but stays available for post-mortem;
    - :meth:`exists` / :meth:`digests` answer membership without
      deserialising anything.
    """

    def read(self, digest: str) -> Optional[bytes]:
        """The stored payload, or ``None`` when ``digest`` is absent."""
        ...

    def write(self, digest: str, payload: bytes) -> None:
        """Persist ``payload`` under ``digest`` atomically."""
        ...

    def exists(self, digest: str) -> bool:
        ...

    def quarantine(self, digest: str) -> None:
        """Move the entry aside (post-mortem copy); a miss afterwards."""
        ...

    def digests(self) -> List[str]:
        """Every digest currently stored (sorted, excludes quarantined)."""
        ...


@contextmanager
def _entry_lock(path: Path) -> Iterator[None]:
    """Exclusive advisory lock serialising writers of one store entry."""
    if fcntl is None:
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


class DirectoryBackend:
    """The fcntl-locked, atomic-rename directory backend (the default).

    One file per digest under ``root``; the layout (``<digest>.pkl``
    plus ``.corrupt`` quarantine neighbours) is identical to what
    :class:`ResultStore` wrote before the backend split, so existing
    store directories keep working unchanged.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.pkl"

    def read(self, digest: str) -> Optional[bytes]:
        path = self.path_for(digest)
        if not path.exists():
            return None
        with open(path, "rb") as handle:
            return handle.read()

    def write(self, digest: str, payload: bytes) -> None:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _entry_lock(path):
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            try:
                with open(tmp, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)

    def exists(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def quarantine(self, digest: str) -> None:
        path = self.path_for(digest)
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    def digests(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name[: -len(".pkl")]
            for p in self.root.iterdir()
            if p.name.endswith(".pkl") and not p.name.startswith(".")
        )

    def __repr__(self) -> str:
        return f"DirectoryBackend({str(self.root)!r})"


class MemoryBackend:
    """In-process dict backend — tests and ephemeral single-process use.

    Implements the full :class:`StoreBackend` protocol (including
    quarantine book-keeping) without touching the filesystem; it is
    *not* shared across processes, so the sweep engine's pool workers
    cannot see it — pass a :class:`DirectoryBackend` root for fan-out.
    """

    def __init__(self) -> None:
        self._entries: dict = {}
        self.quarantined: List[str] = []

    def read(self, digest: str) -> Optional[bytes]:
        return self._entries.get(digest)

    def write(self, digest: str, payload: bytes) -> None:
        self._entries[digest] = payload

    def exists(self, digest: str) -> bool:
        return digest in self._entries

    def quarantine(self, digest: str) -> None:
        self._entries.pop(digest, None)
        self.quarantined.append(digest)

    def digests(self) -> List[str]:
        return sorted(self._entries)

    def __repr__(self) -> str:
        return f"MemoryBackend(n={len(self._entries)})"
