"""Content-addressed, on-disk guardband result store.

Algorithm 1's fixed point is deterministic in its inputs: the
placed-and-routed design (identified by the flow cache key), the
:class:`~repro.core.guardband.GuardbandConfig`, the ambient temperature
and the fabric corner.  :func:`store_digest` folds exactly those — plus
:data:`STORE_SCHEMA_VERSION` — into one SHA-256 digest, and
:class:`ResultStore` persists each converged
:class:`~repro.core.guardband.GuardbandResult` under it.

The on-disk discipline matches the flow cache (:mod:`repro.cad.flow`):

- writes go to a tmp file then ``os.replace`` into place, so readers only
  ever observe complete pickles;
- a per-entry ``fcntl`` advisory lock serialises concurrent writers of
  the same digest (degrading to a no-op where ``fcntl`` is unavailable —
  atomic rename still prevents torn files);
- anything unreadable is quarantined to ``<digest>.pkl.corrupt`` for
  post-mortem and treated as a miss, never retried in place.

Store behaviour is mirrored into :mod:`repro.observe` (``store.hit`` /
``store.miss`` / ``store.put`` / ``store.quarantine`` counters and
events) and into an always-on process-lifetime tally
(:func:`store_counters`) the sweep engine can diff per job.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from contextlib import contextmanager
from dataclasses import fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro import observe
from repro.core.guardband import GuardbandConfig, GuardbandResult

STORE_SCHEMA_VERSION = 1
"""Bump when the digest inputs or the stored payload change meaning.

The schema version is folded into every digest, so old-schema entries
simply stop matching (no in-place migration).  A ``GuardbandConfig``
field-set change MUST come with a bump — enforced by the ``cache-key``
lint rule against the committed store manifest
(``repro/analysis/store_manifest.json``).
"""

_STORE_COUNTS = {"hit": 0, "miss": 0, "put": 0, "quarantine": 0}
"""Process-lifetime store behaviour; always on, mirrored into
``store.*`` observe counters when a session is active."""


def store_counters() -> Dict[str, int]:
    """Snapshot of this process's store hit/miss/put/quarantine counts."""
    return dict(_STORE_COUNTS)


def _count(kind: str, **attrs: object) -> None:
    _STORE_COUNTS[kind] += 1
    observe.counter(f"store.{kind}").inc()
    observe.event(f"store.{kind}", **attrs)


def store_digest(
    flow_cache_key: str,
    config: GuardbandConfig,
    t_ambient: float,
    corner: float,
) -> str:
    """The content address of one converged guardband fixed point.

    SHA-256 over ``(schema version, flow cache key, every GuardbandConfig
    field, ambient, corner)`` — deterministic across processes and
    interpreter restarts.  The flow cache key already encodes netlist,
    architecture digest, seed and ``FLOW_CACHE_VERSION``, so a P&R change
    invalidates store entries transitively.
    """
    if not flow_cache_key:
        raise ValueError("store_digest needs a non-empty flow cache key")
    payload = repr(
        (
            STORE_SCHEMA_VERSION,
            flow_cache_key,
            tuple((f.name, getattr(config, f.name)) for f in fields(config)),
            float(t_ambient),
            float(corner),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@contextmanager
def _entry_lock(path: Path) -> Iterator[None]:
    """Exclusive advisory lock serialising writers of one store entry."""
    if fcntl is None:
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


class ResultStore:
    """Keyed persistence for converged :class:`GuardbandResult` values.

    Cheap to construct (holds only the root path), so worker processes
    open their own handle onto a shared directory.  All methods are safe
    under concurrent multi-process use.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[GuardbandResult]:
        """The stored result, or ``None`` on miss (corrupt ⇒ quarantine)."""
        path = self.path_for(digest)
        if not path.exists():
            _count("miss", digest=digest)
            return None
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
            if not isinstance(result, GuardbandResult):
                raise TypeError(
                    f"expected GuardbandResult, got {type(result)!r}"
                )
        except Exception:
            self._quarantine(path)
            return None
        _count("hit", digest=digest)
        return result

    def put(self, digest: str, result: GuardbandResult) -> None:
        """Persist ``result`` under ``digest`` (atomic tmp + rename)."""
        if not isinstance(result, GuardbandResult):
            raise TypeError(
                f"ResultStore stores GuardbandResult, got {type(result)!r}"
            )
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _entry_lock(path):
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            try:
                with open(tmp, "wb") as handle:
                    pickle.dump(result, handle)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
        _count("put", digest=digest)

    def _quarantine(self, path: Path) -> None:
        _count("quarantine", path=path.name)
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def digests(self) -> List[str]:
        """Every digest currently stored (sorted, excludes quarantined)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name[: -len(".pkl")]
            for p in self.root.iterdir()
            if p.name.endswith(".pkl") and not p.name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.digests())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"


def open_store(root: Union[str, Path]) -> ResultStore:
    """Open (creating if needed) the result store rooted at ``root``."""
    store = ResultStore(root)
    store.root.mkdir(parents=True, exist_ok=True)
    return store
