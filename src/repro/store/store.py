"""Content-addressed guardband result store.

Algorithm 1's fixed point is deterministic in its inputs: the
placed-and-routed design (identified by the flow cache key), the
:class:`~repro.core.guardband.GuardbandConfig`, the ambient temperature
and the fabric corner.  :func:`store_digest` folds exactly those — plus
:data:`STORE_SCHEMA_VERSION` — into one SHA-256 digest, and
:class:`ResultStore` persists each converged
:class:`~repro.core.guardband.GuardbandResult` under it.

Persistence is pluggable (:mod:`repro.store.backend`): the store owns
pickling, type checks and the hit/miss/put/quarantine discipline, and
delegates byte-level storage to a :class:`StoreBackend` — the
fcntl-locked :class:`DirectoryBackend` by default (same on-disk layout
the store has always had, so existing directories keep working), an
object store tomorrow.  Unreadable or wrong-type entries are quarantined
through the backend and treated as misses, never retried in place.

Store behaviour is mirrored into :mod:`repro.observe` (``store.hit`` /
``store.miss`` / ``store.put`` / ``store.quarantine`` counters and
events) and into an always-on process-lifetime tally
(:func:`store_counters`) the sweep engine can diff per job.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import observe
from repro.core.guardband import GuardbandConfig, GuardbandResult
from repro.store.backend import DirectoryBackend, StoreBackend

STORE_SCHEMA_VERSION = 3
"""Bump when the digest inputs or the stored payload change meaning.

The schema version is folded into every digest, so old-schema entries
simply stop matching (no in-place migration).  A ``GuardbandConfig``
field-set change MUST come with a bump — enforced by the ``cache-key``
lint rule against the committed store manifest
(``repro/analysis/store_manifest.json``).

Version 2: ``GuardbandConfig`` grew ``thermal_weight`` (thermal-aware
placement); the digest field set changed, so v1 entries must stop
matching rather than alias results placed under a different objective.

Version 3: ``GuardbandConfig`` grew ``mode`` / ``target_frequency_hz``
(energy objective) and ``GuardbandResult`` grew ``mode`` / ``vdd_v`` /
``energy``.  The digest field set changed *and* the pickled payload
shape changed, so v2 entries must stop matching rather than serve a
frequency-mode result for an energy-mode request (or unpickle a result
missing the new fields).
"""

_STORE_COUNTS = {"hit": 0, "miss": 0, "put": 0, "quarantine": 0}
"""Process-lifetime store behaviour; always on, mirrored into
``store.*`` observe counters when a session is active."""


def store_counters() -> Dict[str, int]:
    """Snapshot of this process's store hit/miss/put/quarantine counts."""
    return dict(_STORE_COUNTS)


def _count(kind: str, **attrs: object) -> None:
    _STORE_COUNTS[kind] += 1
    observe.counter(f"store.{kind}").inc()
    observe.event(f"store.{kind}", **attrs)


def store_digest(
    flow_cache_key: str,
    config: GuardbandConfig,
    t_ambient: float,
    corner: float,
) -> str:
    """The content address of one converged guardband fixed point.

    SHA-256 over ``(schema version, flow cache key, every GuardbandConfig
    field, ambient, corner)`` — deterministic across processes and
    interpreter restarts.  The flow cache key already encodes netlist,
    architecture digest, seed and ``FLOW_CACHE_VERSION``, so a P&R change
    invalidates store entries transitively.
    """
    if not flow_cache_key:
        raise ValueError("store_digest needs a non-empty flow cache key")
    payload = repr(
        (
            STORE_SCHEMA_VERSION,
            flow_cache_key,
            tuple((f.name, getattr(config, f.name)) for f in fields(config)),
            float(t_ambient),
            float(corner),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultStore:
    """Keyed persistence for converged :class:`GuardbandResult` values.

    Cheap to construct (holds only the backend handle), so worker
    processes open their own handle onto a shared directory.  All
    methods are safe under concurrent multi-process use when the
    backend is (the default :class:`DirectoryBackend` is).

    ``ResultStore(root)`` opens the directory backend at ``root``;
    ``ResultStore(backend=...)`` plugs any :class:`StoreBackend`.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        *,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        if (root is None) == (backend is None):
            raise ValueError("pass exactly one of root= or backend=")
        self.backend: StoreBackend = (
            backend if backend is not None else DirectoryBackend(root)  # type: ignore[arg-type]
        )

    @property
    def root(self) -> Path:
        """The directory root, for directory-backed stores."""
        backend = self.backend
        if not isinstance(backend, DirectoryBackend):
            raise AttributeError(
                f"{type(backend).__name__} has no directory root"
            )
        return backend.root

    def path_for(self, digest: str) -> Path:
        """On-disk path of one entry, for directory-backed stores."""
        backend = self.backend
        if not isinstance(backend, DirectoryBackend):
            raise AttributeError(
                f"{type(backend).__name__} stores no per-entry paths"
            )
        return backend.path_for(digest)

    def get(self, digest: str) -> Optional[GuardbandResult]:
        """The stored result, or ``None`` on miss (corrupt ⇒ quarantine)."""
        result, kind = self.load(digest)
        self.record_access(kind, digest)
        return result

    def load(self, digest: str) -> Tuple[Optional[GuardbandResult], str]:
        """Read + validate, without emitting instrumentation.

        Returns ``(result, kind)`` with ``kind`` one of ``"hit"`` /
        ``"miss"`` / ``"quarantine"``.  Corrupt payloads are quarantined
        (backend IO) here, but no observe events or store tallies are
        touched — callers that run the read off the session's owning
        thread (the scheduler's executor-side store probe) report the
        outcome back on that thread via :meth:`record_access`.
        :meth:`get` is the fused convenience form.
        """
        try:
            payload = self.backend.read(digest)
        except Exception:
            self.backend.quarantine(digest)
            return None, "quarantine"
        if payload is None:
            return None, "miss"
        try:
            result = pickle.loads(payload)
            if not isinstance(result, GuardbandResult):
                raise TypeError(
                    f"expected GuardbandResult, got {type(result)!r}"
                )
        except Exception:
            self.backend.quarantine(digest)
            return None, "quarantine"
        return result, "hit"

    def record_access(self, kind: str, digest: str) -> None:
        """Tally one :meth:`load` outcome (store counters + events)."""
        _count(kind, digest=digest)

    def put(self, digest: str, result: GuardbandResult) -> None:
        """Persist ``result`` under ``digest`` (atomicity per backend)."""
        if not isinstance(result, GuardbandResult):
            raise TypeError(
                f"ResultStore stores GuardbandResult, got {type(result)!r}"
            )
        self.backend.write(digest, pickle.dumps(result))
        _count("put", digest=digest)

    def __contains__(self, digest: str) -> bool:
        return self.backend.exists(digest)

    def digests(self) -> List[str]:
        """Every digest currently stored (sorted, excludes quarantined)."""
        return self.backend.digests()

    def __len__(self) -> int:
        return len(self.digests())

    def __repr__(self) -> str:
        return f"ResultStore({self.backend!r})"


def open_store(root: Union[str, Path]) -> ResultStore:
    """Open (creating if needed) the directory store rooted at ``root``."""
    store = ResultStore(root)
    store.root.mkdir(parents=True, exist_ok=True)
    return store
