"""22 nm predictive-technology-style device parameters and temperature laws.

This package is the stand-in for the PTM 22 nm SPICE models the paper feeds
to HSPICE.  It exposes two flavours of transistor:

- :data:`HP_NMOS` / :data:`HP_PMOS` — high-performance (low-Vth) devices used
  for the FPGA soft fabric and DSP block.
- :data:`LP_NMOS` / :data:`LP_PMOS` — low-power (high-Vth) devices used for
  the BRAM core, as the paper does.

All temperatures at this layer are in Kelvin; the rest of the library works
in Celsius and converts at the boundary (:func:`celsius_to_kelvin`).
"""

from repro.technology.ptm22 import (
    HP_NMOS,
    HP_PMOS,
    LP_NMOS,
    LP_PMOS,
    VDD_NOMINAL,
    VDD_LOW_POWER,
    DeviceParams,
    device_by_name,
)
from repro.technology.temperature import (
    T_REFERENCE_K,
    celsius_to_kelvin,
    kelvin_to_celsius,
    mobility_factor,
    thermal_voltage,
    threshold_voltage,
)

__all__ = [
    "DeviceParams",
    "HP_NMOS",
    "HP_PMOS",
    "LP_NMOS",
    "LP_PMOS",
    "T_REFERENCE_K",
    "VDD_LOW_POWER",
    "VDD_NOMINAL",
    "celsius_to_kelvin",
    "device_by_name",
    "kelvin_to_celsius",
    "mobility_factor",
    "thermal_voltage",
    "threshold_voltage",
]
