"""22 nm predictive-technology-style device parameters.

The paper feeds PTM 22 nm high-performance models to HSPICE for the soft
fabric and the PTM low-power (high-Vth) flavour for the BRAM core.  We keep
the same split.  Parameter values are chosen so that the characterization
flow (:mod:`repro.coffe.characterize`) lands on the paper's Table II fits at
the 25 Celsius corner; the temperature behaviour then follows from the
physical laws in :mod:`repro.technology.temperature`.

Widths are expressed in multiples of the minimum width ``W_MIN``; drawn
channel length is fixed at the technology's minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

VDD_NOMINAL = 0.8
"""Nominal supply of the soft fabric, volts (paper Table I)."""

VDD_LOW_POWER = 0.95
"""Boosted supply of the low-power BRAM core, volts (paper Table I)."""

W_MIN_M = 22e-9
"""Minimum transistor width in metres; widths elsewhere are multiples of it."""


@dataclass(frozen=True)
class DeviceParams:
    """Alpha-power-law MOSFET parameters for one device flavour.

    The drain current model (evaluated in :mod:`repro.spice.devices`) is

    ``Id = k(T) * W * Vgt_eff^alpha * (1 - exp(-Vds/Vdsat)) * (1 + lam*Vds)``

    with the smooth EKV-style overdrive
    ``Vgt_eff = n*vt * ln(1 + exp((Vgs - Vth(T)) / (n*vt)))`` which supplies
    the subthreshold exponential automatically.
    """

    name: str
    polarity: str
    """'n' or 'p'."""
    vth0: float
    """Threshold-voltage magnitude at 25 Celsius, volts."""
    kvt: float
    """Vth temperature coefficient, volts per kelvin (Vth drops as T rises)."""
    k_drive: float
    """Transconductance at 25 C, amps per (unit width * volt^alpha)."""
    alpha: float
    """Alpha-power saturation exponent."""
    mu_exp: float
    """Mobility degradation exponent: k(T) = k_drive * (T/T0)^-mu_exp."""
    subthreshold_n: float
    """Subthreshold slope factor n (I ~ exp(Vgs/(n*vt)))."""
    lam: float
    """Channel-length modulation, 1/volt."""
    vdsat: float
    """Saturation smoothing voltage, volts."""
    c_gate: float
    """Gate capacitance per unit width, farads."""
    c_drain: float
    """Drain junction capacitance per unit width, farads."""
    gate_leak_fraction: float = 0.93
    """Share of total static leakage at 25 C that is gate/junction leakage.

    Deep-nano planar devices leak through the thin gate oxide and the
    junctions as well as the subthreshold channel; those components have a
    far weaker temperature dependence (Arrhenius with a small activation
    energy) than the subthreshold exponential.  The blend reproduces the
    shallow ``~e^{0.014 T}`` leakage fits of paper Table II.
    """
    gate_leak_ea_ev: float = 0.10
    """Arrhenius activation energy of the gate/junction component, eV."""

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vth0 <= 0.0 or self.k_drive <= 0.0:
            raise ValueError("vth0 and k_drive must be positive")
        if self.alpha < 1.0 or self.alpha > 2.0:
            raise ValueError(f"alpha-power exponent out of range: {self.alpha}")

    def scaled(self, **changes: float) -> "DeviceParams":
        """Return a copy with the given fields replaced (e.g. Monte Carlo Vth)."""
        return replace(self, **changes)


# High-performance (low-Vth) devices: FPGA soft fabric and DSP block.
# k_drive and capacitances are calibrated so a COFFE-sized fabric reproduces
# the Table II delay fits at the 25 C corner; mu_exp/kvt set the
# temperature sensitivity the paper measures (Fig. 1).
HP_NMOS = DeviceParams(
    name="hp_nmos",
    polarity="n",
    vth0=0.32,
    kvt=0.30e-3,
    k_drive=5.2e-4,
    alpha=1.25,
    mu_exp=2.05,
    subthreshold_n=1.45,
    lam=0.10,
    vdsat=0.25,
    c_gate=0.90e-16,
    c_drain=0.55e-16,
)

HP_PMOS = DeviceParams(
    name="hp_pmos",
    polarity="p",
    vth0=0.30,
    kvt=0.28e-3,
    k_drive=2.6e-4,
    alpha=1.30,
    mu_exp=1.95,
    subthreshold_n=1.45,
    lam=0.11,
    vdsat=0.28,
    c_gate=0.95e-16,
    c_drain=0.60e-16,
)

# Low-power (high-Vth) devices: BRAM core (paper Sec. IV-A).  The high Vth
# makes subthreshold leakage negligible, so the total is dominated by the
# near-flat gate/junction component — matching the almost-quadratic
# ``6.2 + (T/70)^2`` BRAM leakage fit of paper Table II.
LP_NMOS = DeviceParams(
    name="lp_nmos",
    polarity="n",
    vth0=0.45,
    kvt=0.32e-3,
    k_drive=3.4e-4,
    alpha=1.30,
    mu_exp=2.10,
    subthreshold_n=1.50,
    lam=0.08,
    vdsat=0.25,
    c_gate=0.95e-16,
    c_drain=0.60e-16,
    gate_leak_fraction=0.985,
    gate_leak_ea_ev=0.03,
)

LP_PMOS = DeviceParams(
    name="lp_pmos",
    polarity="p",
    vth0=0.43,
    kvt=0.30e-3,
    k_drive=1.7e-4,
    alpha=1.35,
    mu_exp=2.20,
    subthreshold_n=1.50,
    lam=0.09,
    vdsat=0.28,
    c_gate=1.0e-16,
    c_drain=0.65e-16,
    gate_leak_fraction=0.985,
    gate_leak_ea_ev=0.03,
)

_DEVICES = {d.name: d for d in (HP_NMOS, HP_PMOS, LP_NMOS, LP_PMOS)}


def device_by_name(name: str) -> DeviceParams:
    """Look up one of the built-in device flavours by name."""
    try:
        return _DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(_DEVICES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
