"""Temperature scaling laws shared by every device model.

Three physical effects drive everything the paper measures:

- carrier **mobility** degrades with temperature, ``mu(T) = mu0 (T/T0)^-m``
  with ``m ~ 1.5`` — transistors get weaker, delays grow near-linearly over
  the 0..100 Celsius range (paper Fig. 1, Table II delay columns);
- the **threshold voltage** drops with temperature,
  ``Vth(T) = Vth0 - kvt (T - T0)`` — partially compensating drive loss and
  exponentially boosting subthreshold leakage (Table II Plkg columns);
- the **thermal voltage** ``kT/q`` grows, widening the subthreshold slope.
"""

from __future__ import annotations

import math

BOLTZMANN_OVER_Q = 8.617333262e-5
"""Boltzmann constant over elementary charge, in volts per kelvin."""

T_REFERENCE_K = 298.15
"""Reference (characterization base) temperature: 25 Celsius, in kelvin."""

ZERO_CELSIUS_K = 273.15


def celsius_to_kelvin(t_celsius: float) -> float:
    """Convert a Celsius temperature to kelvin."""
    return t_celsius + ZERO_CELSIUS_K


def kelvin_to_celsius(t_kelvin: float) -> float:
    """Convert a kelvin temperature to Celsius."""
    return t_kelvin - ZERO_CELSIUS_K


def thermal_voltage(t_kelvin: float) -> float:
    """Thermal voltage ``kT/q`` in volts at the given temperature."""
    if t_kelvin <= 0.0:
        raise ValueError(f"temperature must be positive, got {t_kelvin} K")
    return BOLTZMANN_OVER_Q * t_kelvin


def mobility_factor(t_kelvin: float, exponent: float = 1.5) -> float:
    """Mobility degradation factor ``(T/T0)^-exponent`` relative to 25 C.

    Multiplies the reference transconductance; below 1 above 25 Celsius.
    """
    if t_kelvin <= 0.0:
        raise ValueError(f"temperature must be positive, got {t_kelvin} K")
    return (t_kelvin / T_REFERENCE_K) ** (-exponent)


def threshold_voltage(vth0: float, t_kelvin: float, kvt: float) -> float:
    """Threshold voltage at temperature, ``Vth0 - kvt (T - T0)``.

    ``vth0`` is the magnitude at 25 Celsius and ``kvt`` the (positive)
    temperature coefficient in volts per kelvin; the returned magnitude
    shrinks as the die heats up.
    """
    return vth0 - kvt * (t_kelvin - T_REFERENCE_K)


def arrhenius_scale(t_kelvin: float, activation_ev: float) -> float:
    """Arrhenius-style scale ``exp(Ea/k * (1/T0 - 1/T))`` relative to 25 C.

    Used for junction/gate leakage components that are thermally activated.
    """
    if t_kelvin <= 0.0:
        raise ValueError(f"temperature must be positive, got {t_kelvin} K")
    inv_ref = 1.0 / T_REFERENCE_K
    inv_t = 1.0 / t_kelvin
    return math.exp(activation_ev / BOLTZMANN_OVER_Q * (inv_ref - inv_t))
