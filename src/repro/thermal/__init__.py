"""Steady-state grid thermal simulation (HotSpot 6.0 stand-in)."""

from repro.thermal.package import ThermalPackage
from repro.thermal.hotspot import ThermalSolver, xpe_cross_validation
from repro.thermal.transient import TransientResult, TransientThermalSolver

__all__ = [
    "ThermalPackage",
    "ThermalSolver",
    "TransientResult",
    "TransientThermalSolver",
    "xpe_cross_validation",
]
