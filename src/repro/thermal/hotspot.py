"""Steady-state grid thermal solver (HotSpot stand-in).

One thermal node per FPGA tile (paper footnote 2: "an FPGA tile comprises a
logic cluster (or other hard-cores) and its neighboring routing
resources").  Energy balance per tile::

    sum_j g_lat (T_j - T_i) + g_vert (T_amb - T_i) + P_i = 0

assembled as a sparse SPD system, LU-factorized **once** at construction
and back-substituted on every call.  Algorithm 1 (line 7) calls
:meth:`ThermalSolver.solve` once per iteration with the updated per-tile
power vector, so the factorization is the difference between an
``O(n^1.5)`` sparse solve per iteration and two triangular solves — the
same trick HotSpot uses for its steady-state grid model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.sparse import csr_matrix, lil_matrix
from scipy.sparse.linalg import splu, spsolve

from repro import observe
from repro.arch.layout import FabricLayout
from repro.thermal.package import ThermalPackage


class ThermalSolver:
    """Pre-factored steady-state solver for one layout/package pair."""

    def __init__(
        self,
        layout: FabricLayout,
        package: Optional[ThermalPackage] = None,
    ):
        self.layout = layout
        self.package = package or ThermalPackage()
        n = layout.n_tiles
        g_lat = self.package.g_lateral_w_per_k
        g_vert = self.package.g_vertical_w_per_k

        with observe.span("thermal.factorize", n_tiles=n):
            matrix = lil_matrix((n, n))
            for tile in layout.tiles():
                i = layout.tile_index(tile.x, tile.y)
                diag = g_vert
                for nx, ny in layout.neighbors(tile.x, tile.y):
                    j = layout.tile_index(nx, ny)
                    matrix[i, j] = -g_lat
                    diag += g_lat
                matrix[i, i] = diag
            self._conductance = csr_matrix(matrix)
            # One-time LU factorization; solve() is two triangular solves.
            self._factor = splu(self._conductance.tocsc())

    def _check_power(self, power_w) -> np.ndarray:
        power_w = np.asarray(power_w, dtype=float)
        n = self.layout.n_tiles
        if power_w.ndim == 2:
            # Batched form: one power vector per row (cell).  The stored
            # LU factor back-substitutes a matrix RHS directly, so the
            # solver accepts the (n_cells, n_tiles) layout natively.
            if power_w.shape[1] != n:
                raise ValueError(
                    f"batched power shape {power_w.shape} != (n_cells, {n})"
                )
            bad_rows = np.flatnonzero(np.any(power_w < 0.0, axis=1))
            if bad_rows.size:
                raise ValueError(
                    f"negative tile power in batch rows {bad_rows.tolist()}"
                )
            return power_w
        if power_w.shape != (n,):
            raise ValueError(
                f"power vector shape {power_w.shape} != ({n},)"
            )
        if np.any(power_w < 0.0):
            raise ValueError("negative tile power")
        return power_w

    def _check_ambient(self, t_ambient, n_cells: int) -> np.ndarray:
        """Per-row ambient vector for a batched solve (scalar broadcasts)."""
        amb = np.asarray(t_ambient, dtype=float)
        if amb.ndim == 0:
            return np.full(n_cells, float(amb))
        if amb.shape != (n_cells,):
            raise ValueError(
                f"ambient shape {amb.shape} does not match the "
                f"{n_cells}-row power batch"
            )
        return amb

    def solve(self, power_w: np.ndarray, t_ambient) -> np.ndarray:
        """Steady-state tile temperatures (Celsius) for a power vector (W).

        ``power_w`` is either one ``(n_tiles,)`` vector or a batched
        ``(n_cells, n_tiles)`` array — the pre-computed LU factor
        back-substitutes all cells in one matrix solve, with each output
        row the exact solution of that row's system.  For the batched
        form ``t_ambient`` may be a scalar (shared) or an ``(n_cells,)``
        vector (one ambient per cell).
        """
        observe.counter("thermal.solves").inc()
        power_w = self._check_power(power_w)
        g_vert = self.package.g_vertical_w_per_k
        if power_w.ndim == 2:
            amb = self._check_ambient(t_ambient, power_w.shape[0])
            rhs = power_w + g_vert * amb[:, None]
            # splu solves column-major RHS batches: (n_tiles, n_cells).
            return np.asarray(self._factor.solve(rhs.T)).T
        rhs = power_w + g_vert * float(t_ambient)
        return np.asarray(self._factor.solve(rhs))

    def solve_unfactored(self, power_w: np.ndarray, t_ambient: float) -> np.ndarray:
        """Seed reference path: full ``spsolve`` from scratch every call.

        Kept for the equivalence tests and the hot-loop benchmark's
        baseline (see :mod:`repro.core.reference`).  Single-vector only —
        the batched layout exists for the factored fast path.
        """
        power_w = self._check_power(power_w)
        if power_w.ndim != 1:
            raise ValueError(
                "solve_unfactored handles a single (n_tiles,) power vector"
            )
        rhs = power_w + self.package.g_vertical_w_per_k * t_ambient
        return np.asarray(spsolve(self._conductance, rhs))

    def average_rise(self, power_w: np.ndarray, t_ambient: float) -> float:
        """Mean die temperature rise above ambient, Celsius."""
        return float(self.solve(power_w, t_ambient).mean() - t_ambient)


def xpe_cross_validation(
    design_power_w: float,
    base_power_w: float,
    coefficient: float = 0.7,
) -> float:
    """Xilinx-Power-Estimator-style sanity check (paper Sec. IV-A).

    The paper cross-validates its thermal simulations against the XPE
    spreadsheet's sensitivity: ``dT ~= 0.7 * p_design / p_base``.  Returns
    the predicted average temperature rise in Celsius.
    """
    if base_power_w <= 0.0:
        raise ValueError("base (leakage) power must be positive")
    return coefficient * design_power_w / base_power_w
