"""Thermal package parameters.

The grid model couples each tile vertically to the ambient (through the
die, heat spreader, sink and interface layers, lumped into one conductance)
and laterally to its grid neighbours (silicon conduction).

Defaults are calibrated to the operating points the paper reports:

- for the (scaled) VTR designs at `Tamb = 25 C`, the die settles ~2 C above
  ambient ("due to relatively low switching rate, the temperature converged
  after ~2 C increase", Sec. IV-B);
- high-activity hard-block regions can sit several degrees above the rest of
  the die (on-chip variation "can reach above 20 C" on large devices,
  Sec. II — proportionally smaller on our 1:100-scaled designs).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ThermalPackage:
    """Lumped package description for the grid solver."""

    g_vertical_w_per_k: float = 3.0e-5
    """Tile-to-ambient conductance (die + spreader + sink share), W/K."""

    g_lateral_w_per_k: float = 2.0e-4
    """Tile-to-neighbour lateral conductance through the silicon, W/K."""

    def __post_init__(self) -> None:
        if self.g_vertical_w_per_k <= 0.0 or self.g_lateral_w_per_k < 0.0:
            raise ValueError("conductances must be positive")

    @property
    def rth_tile_k_per_w(self) -> float:
        """Vertical thermal resistance of one isolated tile, K/W."""
        return 1.0 / self.g_vertical_w_per_k
