"""Transient thermal simulation (the dynamic counterpart of the grid model).

The steady-state solver answers Algorithm 1's question; the transient model
answers *how fast* the die approaches that fixed point after a workload or
power step — relevant when judging how often a deployed system would need
to re-evaluate its thermal profile (the paper performs the analysis
offline, once per application, which this model justifies: thermal time
constants are orders of magnitude above clock periods).

Per-tile heat capacity ``c_tile`` plus the steady-state conductance matrix
``G`` give ``C dT/dt = P - G (T - T_amb·e)``; integrated with backward
Euler (unconditionally stable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.sparse import identity
from scipy.sparse.linalg import factorized

from repro.arch.layout import FabricLayout
from repro.thermal.hotspot import ThermalSolver
from repro.thermal.package import ThermalPackage

TILE_HEAT_CAPACITY_J_PER_K = 2.0e-6
"""Lumped heat capacity of one tile (silicon + nearby package share), J/K."""


@dataclass
class TransientResult:
    """Temperature trajectories of a transient run."""

    times_s: np.ndarray
    temperatures: np.ndarray
    """Shape (n_steps + 1, n_tiles), Celsius."""

    def tile_trace(self, tile_index: int) -> np.ndarray:
        return self.temperatures[:, tile_index]

    def final(self) -> np.ndarray:
        return self.temperatures[-1]

    def settling_time_s(
        self, steady: np.ndarray, tolerance_celsius: float = 0.5
    ) -> float:
        """First time every tile is within tolerance of steady state."""
        within = np.all(
            np.abs(self.temperatures - steady[None, :]) <= tolerance_celsius,
            axis=1,
        )
        # Require it to *stay* within tolerance from that point on.
        for i in range(len(within)):
            if within[i:].all():
                return float(self.times_s[i])
        return float("inf")


class TransientThermalSolver:
    """Backward-Euler integrator over the grid thermal network."""

    def __init__(
        self,
        layout: FabricLayout,
        package: Optional[ThermalPackage] = None,
        tile_heat_capacity_j_per_k: float = TILE_HEAT_CAPACITY_J_PER_K,
    ):
        if tile_heat_capacity_j_per_k <= 0.0:
            raise ValueError("heat capacity must be positive")
        self.layout = layout
        self.steady = ThermalSolver(layout, package)
        self.package = self.steady.package
        self.c_tile = tile_heat_capacity_j_per_k

    @property
    def time_constant_s(self) -> float:
        """Dominant (vertical) thermal time constant of one tile."""
        return self.c_tile / self.package.g_vertical_w_per_k

    def simulate(
        self,
        power_w: np.ndarray,
        t_ambient: float,
        duration_s: float,
        timestep_s: Optional[float] = None,
        t_initial: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Integrate from ``t_initial`` (default: ambient) under fixed power."""
        n = self.layout.n_tiles
        power_w = np.asarray(power_w, dtype=float)
        if power_w.shape != (n,):
            raise ValueError(f"power vector shape {power_w.shape} != ({n},)")
        if duration_s <= 0.0:
            raise ValueError("duration must be positive")
        if timestep_s is None:
            timestep_s = self.time_constant_s / 20.0
        if timestep_s <= 0.0 or timestep_s > duration_s:
            raise ValueError("need 0 < timestep <= duration")

        temps = (
            np.full(n, float(t_ambient))
            if t_initial is None
            else np.asarray(t_initial, dtype=float).copy()
        )
        if temps.shape != (n,):
            raise ValueError("t_initial has the wrong shape")

        conductance = self.steady._conductance
        system = identity(n, format="csr") * (self.c_tile / timestep_s) + conductance
        solve = factorized(system.tocsc())
        source = power_w + self.package.g_vertical_w_per_k * t_ambient

        n_steps = int(round(duration_s / timestep_s))
        times = np.linspace(0.0, n_steps * timestep_s, n_steps + 1)
        trajectory = np.empty((n_steps + 1, n))
        trajectory[0] = temps
        for step in range(1, n_steps + 1):
            rhs = (self.c_tile / timestep_s) * temps + source
            temps = solve(rhs)
            trajectory[step] = temps
        return TransientResult(times, trajectory)
