"""Shared fixtures: one architecture, fabric and small routed design."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.cad.flow import FlowResult, run_flow
from repro.coffe.fabric import Fabric, build_fabric
from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.netlist import Netlist


@pytest.fixture(scope="session")
def arch() -> ArchParams:
    return ArchParams()


@pytest.fixture(scope="session")
def fabric25(arch: ArchParams) -> Fabric:
    """The paper's base device: sized and characterized at 25 C."""
    return build_fabric(25.0, arch)


@pytest.fixture(scope="session")
def fabric70(arch: ArchParams) -> Fabric:
    return build_fabric(70.0, arch)


@pytest.fixture(scope="session")
def tiny_spec() -> NetlistSpec:
    return NetlistSpec(
        "tiny", n_luts=24, n_brams=1, n_dsps=1, depth=5, seed=42,
        base_activity=0.2,
    )


@pytest.fixture(scope="session")
def tiny_netlist(tiny_spec: NetlistSpec) -> Netlist:
    return generate_netlist(tiny_spec)


@pytest.fixture(scope="session")
def tiny_flow(tiny_netlist: Netlist, arch: ArchParams) -> FlowResult:
    """A small placed-and-routed design shared across CAD/core tests."""
    return run_flow(tiny_netlist, arch, seed=11)


@pytest.fixture()
def uniform_25(tiny_flow: FlowResult) -> np.ndarray:
    return np.full(tiny_flow.n_tiles, 25.0)
