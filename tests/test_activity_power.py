"""Tests for activity estimation and the per-tile power model."""

import numpy as np
import pytest

from repro.activity.ace import estimate_activity
from repro.arch.layout import TileType
from repro.power.model import PowerModel, RESOURCES, tile_inventory
from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.netlist import BlockType


@pytest.fixture(scope="module")
def activity(tiny_netlist):
    return estimate_activity(tiny_netlist, base_activity=0.2)


@pytest.fixture(scope="module")
def power(tiny_flow, fabric25, activity):
    return PowerModel(tiny_flow, fabric25, activity)


class TestActivity:
    def test_all_activities_in_unit_interval(self, activity):
        assert np.all(activity.alpha >= 0.0)
        assert np.all(activity.alpha <= 1.0)

    def test_primary_inputs_at_base(self, activity, tiny_netlist):
        for pi in tiny_netlist.blocks_of_type(BlockType.INPUT):
            for net_id in pi.output_nets:
                assert activity.of_net(net_id) == pytest.approx(0.2, rel=1e-3)

    def test_logic_attenuates(self, activity, tiny_netlist):
        # Deep LUT outputs should switch less than the primary inputs.
        lut_alphas = [
            activity.of_net(net_id)
            for lut in tiny_netlist.blocks_of_type(BlockType.LUT)
            for net_id in lut.output_nets
        ]
        assert np.mean(lut_alphas) < 0.2

    def test_higher_base_more_activity(self, tiny_netlist):
        low = estimate_activity(tiny_netlist, 0.05).mean()
        high = estimate_activity(tiny_netlist, 0.4).mean()
        assert high > low

    def test_converges(self, activity):
        assert activity.iterations < 60

    def test_rejects_bad_base(self, tiny_netlist):
        with pytest.raises(ValueError):
            estimate_activity(tiny_netlist, 0.0)

    def test_handles_registered_loops(self):
        nl = generate_netlist(
            NetlistSpec("loopy", n_luts=30, depth=4, ff_ratio=0.9, seed=8)
        )
        estimate = estimate_activity(nl, 0.3)
        assert np.all(np.isfinite(estimate.alpha))


class TestTileInventory:
    def test_clb_inventory_matches_paper_tile_area(self, arch, fabric25):
        # Paper Sec. IV-A: a soft-fabric tile is ~1196 um^2.  Our inventory
        # times Table II areas should land near it.
        inventory = tile_inventory(arch, TileType.CLB)
        area = sum(
            count * fabric25.area_um2(name) for name, count in inventory.items()
        )
        assert area == pytest.approx(1196.0, rel=0.15)

    def test_hard_tiles_have_their_block(self, arch):
        assert tile_inventory(arch, TileType.BRAM)["bram"] == 1.0
        assert tile_inventory(arch, TileType.DSP)["dsp"] == 1.0

    def test_empty_tile_empty(self, arch):
        assert tile_inventory(arch, TileType.EMPTY) == {}

    def test_only_known_resources(self, arch):
        for type_ in TileType:
            assert set(tile_inventory(arch, type_)) <= set(RESOURCES)


class TestPowerModel:
    def test_leakage_positive_everywhere_active(self, power, tiny_flow):
        leak = power.leakage_power(np.full(tiny_flow.n_tiles, 25.0))
        layout = tiny_flow.layout
        for tile in layout.tiles():
            index = layout.tile_index(tile.x, tile.y)
            if tile.type != TileType.EMPTY:
                assert leak[index] > 0.0

    def test_leakage_grows_with_temperature(self, power, tiny_flow):
        cold = power.leakage_power(np.full(tiny_flow.n_tiles, 0.0)).sum()
        hot = power.leakage_power(np.full(tiny_flow.n_tiles, 100.0)).sum()
        assert hot > 2.0 * cold

    def test_dynamic_scales_with_frequency(self, power):
        p1 = power.dynamic_power(100e6).sum()
        p2 = power.dynamic_power(200e6).sum()
        assert p2 == pytest.approx(2.0 * p1, rel=1e-9)

    def test_dynamic_zero_at_zero_frequency(self, power):
        assert power.dynamic_power(0.0).sum() == 0.0

    def test_dynamic_rejects_negative_frequency(self, power):
        with pytest.raises(ValueError):
            power.dynamic_power(-1.0)

    def test_dynamic_concentrated_on_used_tiles(self, power, tiny_flow):
        dyn = power.dynamic_power(200e6)
        assert (dyn > 0).sum() < tiny_flow.n_tiles  # some tiles are idle

    def test_evaluate_combines(self, power, tiny_flow):
        t = np.full(tiny_flow.n_tiles, 40.0)
        breakdown = power.evaluate(150e6, t)
        assert breakdown.total_watts == pytest.approx(
            breakdown.dynamic_w.sum() + breakdown.leakage_w.sum()
        )

    def test_per_tile_vector_shapes(self, power, tiny_flow):
        t = np.full(tiny_flow.n_tiles, 40.0)
        breakdown = power.evaluate(150e6, t)
        assert breakdown.dynamic_w.shape == (tiny_flow.n_tiles,)
        assert breakdown.leakage_w.shape == (tiny_flow.n_tiles,)

    def test_wrong_temperature_length_rejected(self, power):
        with pytest.raises(ValueError):
            power.leakage_power(np.full(2, 25.0))
